"""Legacy setup shim.

``pyproject.toml`` is the source of truth; this file only exists so
that environments without PEP 517 editable-install support (e.g.
offline machines missing the ``wheel`` package) can still run
``python setup.py develop``.
"""

from setuptools import setup

setup()
