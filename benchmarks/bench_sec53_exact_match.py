"""Section 5.3: exact-match retrieval precision / recall / F-measure.

Paper: 93.8% precision, 92.7% recall, 93.2% F-measure over the 650
survey questions; "most of the test questions yield 100% for precision
and recall, whereas a few yield 0%".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation.experiments import exact_match_experiment
from repro.evaluation.reporting import format_percent, format_table

PAPER = {"precision": 0.938, "recall": 0.927, "f": 0.932}


@pytest.fixture(scope="module")
def section53(full_system):
    # 8 domains x 81 questions = 648 ~ the paper's 650
    return exact_match_experiment(
        full_system, questions_per_domain=81, noise_rate=0.15
    )


def test_sec53_exact_match(benchmark, full_system, section53):
    rows = [
        ["precision", format_percent(PAPER["precision"]),
         format_percent(section53.precision)],
        ["recall", format_percent(PAPER["recall"]),
         format_percent(section53.recall)],
        ["F-measure", format_percent(PAPER["f"]),
         format_percent(section53.f_measure)],
    ]
    emit(
        format_table(
            ["metric", "paper", "measured"],
            rows,
            title="Section 5.3 — exact-match retrieval over 648 questions",
        )
    )
    # shape: same band as the paper
    assert section53.precision >= 0.85
    assert section53.recall >= 0.85
    # all-or-nothing observation: most questions score 1.0 or 0.0
    extreme = sum(
        1
        for _, prf in section53.per_question
        if prf.precision in (0.0, 1.0) and prf.recall in (0.0, 1.0)
    )
    assert extreme / len(section53.per_question) >= 0.8

    benchmark(
        full_system.cqads.answer,
        "blue honda accord less than 15000 dollars",
        "cars",
    )
