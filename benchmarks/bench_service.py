"""Async service tier under duplicate-heavy and overload traffic.

The service tier (PR 6, :mod:`repro.serve`) fronts the synchronous
answer engine with admission control: per-tenant token buckets,
single-flight coalescing of identical in-flight requests, a bounded
admission queue with typed shed errors, and per-request deadlines.
This bench measures its two headline claims on open-loop workloads
(arrivals fire on a fixed schedule regardless of completions — the
regime where queues actually build):

1. **Coalescing** — bursts of identical questions, the shape produced
   by trending queries and fan-out retries.  The same arrival schedule
   runs with coalescing on and off (no answer cache on either side, so
   ``executed`` counts pure engine invocations); the tier must cut
   engine invocations by >= 2x.  In practice the reduction approaches
   the burst size: one flight serves each burst.
2. **Overload** — distinct questions offered well above engine
   capacity through a small queue (workers=2, queue=4), arriving in
   flash-crowd clumps larger than workers + queue.  Excess load must
   shed *immediately* with typed errors (``QueueFullError``) while
   the p99 latency of the *admitted* requests stays bounded by
   construction: an admitted request waits behind at most
   ``max_queue`` others, it never sits in an unbounded backlog.

The snapshot lands in ``BENCH_service.json``.

Acceptance: >= 2x engine-invocation reduction from coalescing; the
overload run sheds with typed errors while admitted p99 stays under
the structural bound.

Quick mode (CI smoke): ``BENCH_SERVICE_QUICK=1`` shrinks the build and
the schedules and asserts the tripwires only — coalesced hits > 0 (a
broken single-flight path measures exactly 0), typed sheds > 0 and a
generous admitted-p99 ceiling — leaving the committed JSON untouched.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_service.py -s
  or: PYTHONPATH=src python benchmarks/bench_service.py [--quick]
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import pathlib
import sys

import pytest

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # direct `python benchmarks/bench_service.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit
from repro.api import AnswerRequest, AnswerService
from repro.datagen.questions import make_generator
from repro.errors import ServiceError, ServiceOverloadError
from repro.evaluation.reporting import format_table
from repro.serve import AsyncAnswerService
from repro.system import build_system

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_service.json"

QUICK = bool(os.environ.get("BENCH_SERVICE_QUICK"))
ADS = 400 if QUICK else 2000
WORKERS = 2
#: Coalescing arm: bursts of identical questions on a fixed schedule.
BURSTS = 20 if QUICK else 60
BURST_SIZE = 6 if QUICK else 8
BURST_GAP_S = 0.005
DISTINCT_QUESTIONS = 10
#: Overload arm: distinct questions offered far above capacity, in
#: flash-crowd clumps — every clump lands more simultaneous arrivals
#: than workers + queue can hold, so shedding is forced by arithmetic,
#: not by how slow the engine happens to be on this machine.
OVERLOAD_REQUESTS = 150 if QUICK else 600
OVERLOAD_QUEUE = 4
OVERLOAD_CLUMP = WORKERS + OVERLOAD_QUEUE + 4
OVERLOAD_CLUMP_GAP_S = 0.005
MIN_INVOCATION_REDUCTION = 2.0
#: Structural latency bound for admitted requests: an admitted request
#: runs behind at most ``OVERLOAD_QUEUE`` queued flights across
#: ``WORKERS`` workers.  1.5s is many multiples of that worst case at
#: these scales — a *bounded-queue* tripwire, not a speed gate, with
#: headroom for noisy shared CI runners.
MAX_ADMITTED_P99_S = 1.5


@pytest.fixture(scope="module")
def service_system():
    return build_system(
        ["cars"],
        ads_per_domain=ADS,
        sessions_per_domain=300,
        corpus_documents=200,
    )


def _question_pool(system, count: int) -> list[str]:
    generator = make_generator(system.domain("cars").dataset, seed=97)
    return [generator.generate().text for _ in range(count)]


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100])."""
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


async def _drive_open_loop(service: AsyncAnswerService, arrivals):
    """Fire (offset, request) pairs on schedule; never close the loop.

    Returns ``(latencies, shed)``: per-request seconds for the
    admitted requests and an error-type-name histogram for the shed
    ones.  Any non-service error propagates (the bench should fail
    loudly on a pipeline bug, not count it as shedding).
    """
    loop = asyncio.get_running_loop()
    start = loop.time() + 0.05

    async def fire(offset: float, request: AnswerRequest):
        await asyncio.sleep(max(0.0, start + offset - loop.time()))
        began = loop.time()
        try:
            await service.answer(request)
        except (ServiceOverloadError, ServiceError) as exc:
            return type(exc).__name__, loop.time() - began
        return None, loop.time() - began

    outcomes = await asyncio.gather(
        *(fire(offset, request) for offset, request in arrivals)
    )
    latencies = [seconds for kind, seconds in outcomes if kind is None]
    shed: dict[str, int] = {}
    for kind, _ in outcomes:
        if kind is not None:
            shed[kind] = shed.get(kind, 0) + 1
    return latencies, shed


def _burst_arrivals(questions: list[str]):
    """BURSTS bursts of BURST_SIZE identical questions, BURST_GAP_S
    apart; consecutive bursts cycle through the distinct pool."""
    arrivals = []
    for burst in range(BURSTS):
        question = questions[burst % len(questions)]
        for _ in range(BURST_SIZE):
            arrivals.append(
                (
                    burst * BURST_GAP_S,
                    AnswerRequest(question=question, domain="cars"),
                )
            )
    return arrivals


async def _coalescing_arm(system, questions, coalesce: bool):
    service = AsyncAnswerService(
        AnswerService(system.cqads),  # no answer cache: executed is
        workers=WORKERS,              # pure engine invocations
        max_queue=BURSTS * BURST_SIZE,
        coalesce=coalesce,
        own_service=True,
    )
    try:
        latencies, shed = await _drive_open_loop(
            service, _burst_arrivals(questions)
        )
        assert not shed, f"coalescing arm must not shed, got {shed}"
        return latencies, service.stats()
    finally:
        await service.close()


async def _overload_arm(system, questions):
    service = AsyncAnswerService(
        AnswerService(system.cqads),
        workers=WORKERS,
        max_queue=OVERLOAD_QUEUE,
        own_service=True,
    )
    try:
        arrivals = [
            (
                (index // OVERLOAD_CLUMP) * OVERLOAD_CLUMP_GAP_S,
                AnswerRequest(
                    question=questions[index % len(questions)], domain="cars"
                ),
            )
            for index in range(OVERLOAD_REQUESTS)
        ]
        latencies, shed = await _drive_open_loop(service, arrivals)
        return latencies, shed, service.stats()
    finally:
        await service.close()


def test_service_tier_coalescing_and_overload(service_system):
    questions = _question_pool(service_system, DISTINCT_QUESTIONS)
    # Warm the engine (tries, matrices, fragment caches) so both arms
    # and both coalescing settings measure steady-state latency.
    warmup = AnswerService(service_system.cqads)
    for question in questions:
        warmup.answer(AnswerRequest(question=question, domain="cars"))
    warmup.close()

    with_latencies, with_stats = asyncio.run(
        _coalescing_arm(service_system, questions, coalesce=True)
    )
    _, without_stats = asyncio.run(
        _coalescing_arm(service_system, questions, coalesce=False)
    )
    requests = BURSTS * BURST_SIZE
    assert with_stats.completed == requests
    assert without_stats.completed == requests
    assert without_stats.executed == requests  # every request ran alone
    reduction = without_stats.executed / with_stats.executed

    overload_latencies, overload_shed, overload_stats = asyncio.run(
        _overload_arm(service_system, questions)
    )
    admitted_p99 = _percentile(overload_latencies, 99.0)

    emit(
        format_table(
            ["workload", "requests", "engine runs", "shed", "p99 (ms)"],
            [
                [
                    "duplicate bursts, coalesced",
                    str(requests),
                    str(with_stats.executed),
                    "0",
                    f"{1000 * _percentile(with_latencies, 99.0):.1f}",
                ],
                [
                    "duplicate bursts, no coalescing",
                    str(requests),
                    str(without_stats.executed),
                    "0",
                    "-",
                ],
                [
                    "overload, distinct questions",
                    str(OVERLOAD_REQUESTS),
                    str(overload_stats.executed),
                    str(sum(overload_shed.values())),
                    f"{1000 * admitted_p99:.1f}",
                ],
            ],
            title=(
                f"async service tier, cars x {ADS} ads, {WORKERS} workers — "
                f"{reduction:.1f}x fewer engine runs from coalescing"
                + (" [quick mode]" if QUICK else "")
            ),
        )
    )

    if not QUICK:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "async_service_tier",
                    "ads": ADS,
                    "workers": WORKERS,
                    "coalescing": {
                        "bursts": BURSTS,
                        "burst_size": BURST_SIZE,
                        "burst_gap_ms": 1000 * BURST_GAP_S,
                        "requests": requests,
                        "executed_coalesced": with_stats.executed,
                        "executed_uncoalesced": without_stats.executed,
                        "invocation_reduction": reduction,
                        "coalescing_hit_rate": (
                            with_stats.coalescing_hit_rate
                        ),
                        "admitted_p50_ms": (
                            1000 * _percentile(with_latencies, 50.0)
                        ),
                        "admitted_p99_ms": (
                            1000 * _percentile(with_latencies, 99.0)
                        ),
                    },
                    "overload": {
                        "offered": OVERLOAD_REQUESTS,
                        "clump_size": OVERLOAD_CLUMP,
                        "clump_gap_ms": 1000 * OVERLOAD_CLUMP_GAP_S,
                        "max_queue": OVERLOAD_QUEUE,
                        "completed": overload_stats.completed,
                        "shed": dict(sorted(overload_shed.items())),
                        "shed_rate": overload_stats.shed_rate,
                        "admitted_p50_ms": (
                            1000 * _percentile(overload_latencies, 50.0)
                        ),
                        "admitted_p99_ms": 1000 * admitted_p99,
                        "admitted_p99_bound_ms": 1000 * MAX_ADMITTED_P99_S,
                    },
                },
                indent=2,
            )
            + "\n"
        )

    # Tripwires (both modes): a broken single-flight path coalesces
    # exactly nothing; a broken admission gate either never sheds or
    # lets queue latency grow without bound.
    assert with_stats.coalesced > 0, "coalescing produced zero hits"
    assert sum(overload_shed.values()) > 0, "overload never shed"
    assert overload_stats.shed == sum(overload_shed.values())
    assert admitted_p99 <= MAX_ADMITTED_P99_S, (
        f"admitted p99 {admitted_p99:.3f}s exceeds the "
        f"{MAX_ADMITTED_P99_S}s structural bound"
    )
    if not QUICK:
        assert reduction >= MIN_INVOCATION_REDUCTION, (
            f"coalescing must cut engine invocations by >= "
            f"{MIN_INVOCATION_REDUCTION}x, measured {reduction:.2f}x"
        )


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["BENCH_SERVICE_QUICK"] = "1"
    sys.exit(pytest.main([__file__, "-s", "-q"]))
