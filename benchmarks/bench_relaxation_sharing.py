"""Shared-subplan relaxation vs legacy per-drop evaluation.

The N-1 relaxation answers an N-criteria question with N relaxed
queries.  The legacy path re-evaluated every relaxed WHERE tree
independently — N×(N-1) unit-predicate evaluations per question — while
the shared-subplan engine (:mod:`repro.perf.subplan`) evaluates each
unit once and intersects, so the predicate work is linear in N.

This bench times ``partial_candidates`` under both strategies on
partial-match questions with ≥ 4 criteria (six relaxation units:
identity, color, transmission, price, mileage, year) at the paper's
500-ad scale and at 2000 ads, verifies the pools stay identical, and
records the snapshot in ``BENCH_relaxation.json``.

Acceptance: ≥ 2x speedup at the 2000-ad scale.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_relaxation_sharing.py -s
  or: PYTHONPATH=src python benchmarks/bench_relaxation_sharing.py
"""

from __future__ import annotations

import json
import pathlib
import random
import statistics
import time

import pytest

from benchmarks.conftest import emit
from repro.db.schema import AttributeType
from repro.evaluation.reporting import format_seconds, format_table
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
    Interpretation,
)
from repro.qa.sql_generation import evaluate_interpretation
from repro.system import build_system

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_relaxation.json"

SCALES = (500, 2000)
QUESTIONS_PER_SCALE = 12
REPEATS = 3
MIN_SPEEDUP_AT_2000 = 2.0


@pytest.fixture(scope="module", params=SCALES)
def sized_system(request):
    return build_system(
        ["cars"],
        ads_per_domain=request.param,
        sessions_per_domain=300,
        corpus_documents=200,
    ), request.param


def _question_interpretations(system, count: int) -> list[Interpretation]:
    """Six-unit conjunctions anchored on real records (≥ 4 criteria)."""
    rng = random.Random(1729)
    dataset = system.domain("cars").dataset
    interpretations = []
    needed = ("make", "model", "color", "transmission", "price", "mileage", "year")
    complete = [
        record
        for record in dataset.records
        if all(record.get(column) is not None for column in needed)
    ]
    for _ in range(count):
        record = rng.choice(complete)
        conditions = [
            Condition("make", AttributeType.TYPE_I, ConditionOp.EQ,
                      str(record["make"])),
            Condition("model", AttributeType.TYPE_I, ConditionOp.EQ,
                      str(record["model"])),
            Condition("color", AttributeType.TYPE_II, ConditionOp.EQ,
                      str(record["color"])),
            Condition("transmission", AttributeType.TYPE_II, ConditionOp.EQ,
                      str(record["transmission"])),
            Condition("price", AttributeType.TYPE_III, ConditionOp.LT,
                      float(record["price"]) + 1000.0),
            Condition("mileage", AttributeType.TYPE_III, ConditionOp.LT,
                      float(record["mileage"]) + 5000.0),
            Condition("year", AttributeType.TYPE_III, ConditionOp.GE,
                      float(record["year"]) - 2.0),
        ]
        interpretations.append(
            Interpretation(tree=ConditionGroup(BooleanOperator.AND, conditions))
        )
    return interpretations


def _time_strategy(cqads, interpretations, excludes, strategy: str) -> float:
    """Best-of-REPEATS wall-clock for the full question batch."""
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for interpretation, exclude in zip(interpretations, excludes):
            cqads.partial_candidates(
                "cars", interpretation, exclude, strategy=strategy
            )
        best = min(best, time.perf_counter() - started)
    return best


def test_shared_subplan_speedup(sized_system):
    system, scale = sized_system
    cqads = system.cqads
    interpretations = _question_interpretations(system, QUESTIONS_PER_SCALE)
    excludes = []
    units_per_question = []
    for interpretation in interpretations:
        exact = evaluate_interpretation(
            cqads.database, cqads.domain("cars"), interpretation
        )
        excludes.append({record.record_id for record in exact})
        units_per_question.append(len(cqads.relaxation_units(interpretation)))
    assert min(units_per_question) >= 4  # the ≥ 4-criteria requirement

    # Pools must be identical before timing means anything.
    for interpretation, exclude in zip(interpretations, excludes):
        legacy_pool = cqads.partial_candidates(
            "cars", interpretation, exclude, strategy="legacy"
        )
        shared_pool = cqads.partial_candidates(
            "cars", interpretation, exclude, strategy="shared"
        )
        assert [r.record_id for r in legacy_pool] == [
            r.record_id for r in shared_pool
        ]

    legacy_seconds = _time_strategy(cqads, interpretations, excludes, "legacy")
    shared_seconds = _time_strategy(cqads, interpretations, excludes, "shared")
    speedup = legacy_seconds / shared_seconds

    per_question = QUESTIONS_PER_SCALE
    rows = [
        [
            "legacy per-drop",
            format_seconds(legacy_seconds / per_question),
            "1.00x",
        ],
        [
            "shared subplan",
            format_seconds(shared_seconds / per_question),
            f"{speedup:.2f}x",
        ],
    ]
    emit(
        format_table(
            ["strategy", "per-question pool latency", "speedup"],
            rows,
            title=(
                f"N-1 candidate pools at {scale} ads — "
                f"{statistics.mean(units_per_question):.1f} relaxation "
                f"units per question"
            ),
        )
    )

    snapshot = {}
    if RESULT_PATH.exists():
        snapshot = json.loads(RESULT_PATH.read_text())
    snapshot.setdefault("benchmark", "relaxation_sharing")
    snapshot.setdefault("questions_per_scale", QUESTIONS_PER_SCALE)
    snapshot.setdefault("scales", {})
    snapshot["scales"][str(scale)] = {
        "ads": scale,
        "relaxation_units_mean": statistics.mean(units_per_question),
        "legacy_ms_per_question": 1000 * legacy_seconds / per_question,
        "shared_ms_per_question": 1000 * shared_seconds / per_question,
        "speedup": speedup,
    }
    RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    if scale == 2000:
        assert speedup >= MIN_SPEEDUP_AT_2000, (
            f"shared subplans must be >= {MIN_SPEEDUP_AT_2000}x at 2000 ads, "
            f"measured {speedup:.2f}x"
        )


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-s", "-q"]))
