"""Figure 4: Boolean question interpretation accuracy.

Paper: 10 sampled questions (3 implicit, 7 explicit), 90 survey
responses each; implicit average 90.3%, explicit 90.1%, overall 90.2%.
The dips (Q3, Q8, Q10 at ~71-78%) come from mutually-exclusive values
some users read literally ("Black Silver cars" as black-with-silver).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation.experiments import boolean_interpretation_experiment
from repro.evaluation.reporting import format_percent, format_table

PAPER = {"implicit": 0.903, "explicit": 0.901, "overall": 0.902}


@pytest.fixture(scope="module")
def figure4(full_system):
    return boolean_interpretation_experiment(full_system, respondents=90)


def test_fig4_boolean_interpretation(benchmark, full_system, figure4):
    rows = [
        [
            f"Q{index}",
            outcome.question.kind,
            outcome.question.boolean_kind,
            format_percent(outcome.accuracy),
            outcome.question.text[:48],
        ]
        for index, outcome in enumerate(figure4.outcomes, start=1)
    ]
    emit(
        format_table(
            ["q", "kind", "boolean", "accuracy", "question"],
            rows,
            title="Figure 4 — per-question interpretation accuracy",
        )
    )
    emit(
        format_table(
            ["aggregate", "paper", "measured"],
            [
                ["implicit", format_percent(PAPER["implicit"]),
                 format_percent(figure4.implicit_average)],
                ["explicit", format_percent(PAPER["explicit"]),
                 format_percent(figure4.explicit_average)],
                ["overall", format_percent(PAPER["overall"]),
                 format_percent(figure4.overall_average)],
            ],
            title="Figure 4 — aggregates",
        )
    )
    assert figure4.overall_average >= 0.8
    assert figure4.implicit_average >= 0.75
    # the mutex dip reproduces: at least one question near the paper's 78%
    assert any(outcome.accuracy < 0.9 for outcome in figure4.outcomes)

    # timing: one implicit-Boolean interpretation end to end
    benchmark(
        full_system.cqads.answer,
        "blue red toyota camry not manual",
        "cars",
    )
