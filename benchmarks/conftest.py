"""Shared fixtures for the benchmark harness.

``full_system`` is the paper-scale build: all eight ads domains with
500 ads each (Section 4.1.4), 1,500 query-log sessions per domain and
a 1,000-document corpus.  It is built once per benchmark session.

Every bench prints a paper-vs-measured table (run with ``-s`` to see
them inline; they also land in ``benchmark_report.txt`` next to this
file).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.system import build_system

REPORT_PATH = pathlib.Path(__file__).parent / "benchmark_report.txt"


@pytest.fixture(scope="session")
def full_system():
    """All eight domains at the paper's scale."""
    return build_system(
        ads_per_domain=500,
        sessions_per_domain=1500,
        corpus_documents=1000,
    )


@pytest.fixture(scope="session")
def large_cars_system():
    """A bigger single-domain build for the latency crossover study."""
    return build_system(
        ["cars"],
        ads_per_domain=2000,
        sessions_per_domain=1000,
        corpus_documents=500,
    )


@pytest.fixture(scope="session", autouse=True)
def _fresh_report():
    REPORT_PATH.write_text("")
    yield


def emit(text: str) -> None:
    """Print a result table and append it to the session report."""
    print("\n" + text + "\n")
    with REPORT_PATH.open("a") as handle:
        handle.write(text + "\n\n")
