"""Table 2: top-5 ranked partially-matched answers to the running
example "Find Honda Accord blue less than 15,000 dollars".

Paper's shape: cross-make same-segment sedans (Chevy Malibu, Toyota
Camry, Ford Focus) surface through TI_Sim; wrong-price and wrong-color
Accords surface through Num_Sim and Feat_Sim; scores descend.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation.experiments import table2_experiment
from repro.evaluation.reporting import format_table

QUESTION = "Find Honda Accord blue less than 15000 dollars"


@pytest.fixture(scope="module")
def table2(full_system):
    return table2_experiment(full_system, question=QUESTION)


def test_table2_partial_answers(benchmark, full_system, table2):
    rows = [
        [
            str(row.ranking),
            row.identity,
            f"{row.price:g}" if row.price is not None else "-",
            f"{row.score:.2f}",
            row.similarity_kind,
        ]
        for row in table2
    ]
    emit(
        format_table(
            ["rank", "make/model", "price", "Rank_Sim", "similarity used"],
            rows,
            title=f"Table 2 — top-5 partial answers to {QUESTION!r}",
        )
    )
    assert len(table2) == 5
    scores = [row.score for row in table2]
    assert scores == sorted(scores, reverse=True)
    kinds = {row.similarity_kind for row in table2}
    # the paper's table mixes TI_Sim rows with Feat_Sim/Num_Sim rows
    assert "TI_Sim" in kinds or {"Feat_Sim", "Num_Sim"} & kinds
    # Eq. 5 bound: 4 leaf conditions (make, model, color, price), at
    # least one failed -> scores in [2, 4)
    assert all(2.0 <= score < 4.0 for score in scores)

    benchmark(full_system.cqads.answer, QUESTION, "cars")
