"""Section 4.2.3: shorthand-notation detection accuracy.

Paper: "Experiments on 1,000 ads in various domains show that our Perl
script achieves a 98% accuracy in detecting shorthand notations."
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation.experiments import shorthand_experiment
from repro.evaluation.reporting import format_percent, format_table
from repro.text.shorthand import shorthand_match

PAPER_ACCURACY = 0.98


@pytest.fixture(scope="module")
def shorthand_accuracy(full_system):
    return shorthand_experiment(full_system, variants=1000)


def test_sec423_shorthand_detection(benchmark, full_system, shorthand_accuracy):
    emit(
        format_table(
            ["metric", "paper", "measured"],
            [
                [
                    "shorthand detection accuracy (1000 variants)",
                    format_percent(PAPER_ACCURACY),
                    format_percent(shorthand_accuracy),
                ]
            ],
            title="Section 4.2.3 — shorthand notation detection",
        )
    )
    assert shorthand_accuracy >= 0.75

    values = full_system.domains["cars"].domain.all_categorical_values()
    benchmark(shorthand_match, "4dr", values)
