"""Service-layer overhead and batch-vs-serial throughput.

The api_redesign PR routes every question through
``QueryPipeline`` + ``AnswerService`` instead of the monolithic
``CQAds.answer``; this bench quantifies what that costs and buys:

1. **per-question overhead** — wall-clock of ``service.answer`` minus
   the sum of the stage timings: the price of the request objects, the
   option resolution and the trace bookkeeping (expected: tens of µs,
   i.e. noise against ~ms of pipeline work);
2. **legacy shim parity** — ``cqads.answer`` (the back-compat facade)
   vs ``service.answer``: both run the same stages, so the delta should
   be ~0;
3. **batch throughput** — ``answer_batch`` on a realistic workload
   where popular questions repeat (120 questions drawn from 40
   templates) vs a serial loop.  The win comes from answering each
   distinct request once (frozen requests are hashable, the pipeline is
   read-only) plus thread-pool overlap.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_api_overhead.py -s
  or: PYTHONPATH=src python benchmarks/bench_api_overhead.py
"""

from __future__ import annotations

import statistics
import time

import pytest

from benchmarks.conftest import emit
from repro.api import AnswerRequest, SystemBuilder
from repro.datagen.questions import make_generator
from repro.evaluation.reporting import format_seconds, format_table

#: Distinct question templates and how often each repeats in the batch.
UNIQUE_QUESTIONS = 40
REPEAT_FACTOR = 3
BATCH_WORKERS = 4


@pytest.fixture(scope="module")
def system():
    """A paper-scale single-domain build (artifacts kept for questions)."""
    return (
        SystemBuilder()
        .with_domains("cars")
        .ads_per_domain(500)
        .sessions_per_domain(500)
        .corpus_documents(300)
        .build()
    )


@pytest.fixture(scope="module")
def service(system):
    return system.service()


@pytest.fixture(scope="module")
def questions(system):
    generator = make_generator(system.domain("cars").dataset, seed=31)
    return [generator.generate().text for _ in range(UNIQUE_QUESTIONS)]


def _signature(result):
    return [
        (a.record.record_id, a.exact, round(a.score, 9), a.similarity_kind)
        for a in result.answers
    ]


def test_service_overhead_per_question(service, questions):
    """Request-object plumbing costs µs against ms of pipeline work."""
    overheads, totals, shim_totals = [], [], []
    for question in questions:
        request = AnswerRequest(question=question, domain="cars")
        started = time.perf_counter()
        result = service.answer(request)
        total = time.perf_counter() - started
        overheads.append(total - sum(result.timings.values()))
        totals.append(total)
        started = time.perf_counter()
        service.cqads.answer(question, domain="cars")
        shim_totals.append(time.perf_counter() - started)
    mean_total = statistics.mean(totals)
    mean_overhead = statistics.mean(overheads)
    rows = [
        ["service.answer (mean)", format_seconds(mean_total)],
        ["legacy cqads.answer shim (mean)", format_seconds(statistics.mean(shim_totals))],
        ["service-layer overhead (mean)", format_seconds(mean_overhead)],
        ["overhead share of total", f"{100 * mean_overhead / mean_total:.1f}%"],
    ]
    emit(
        format_table(
            ["measure", "value"],
            rows,
            title="API overhead — request objects + stage composition per question",
        )
    )
    # The service layer must not dominate the pipeline it wraps.
    assert mean_overhead < mean_total * 0.5


def test_batch_vs_serial_throughput(service, questions):
    """answer_batch matches the serial loop and is measurably faster."""
    workload = [
        AnswerRequest(question=question, domain="cars")
        for question in questions * REPEAT_FACTOR
    ]
    assert len(workload) >= 100

    started = time.perf_counter()
    serial = [service.answer(request) for request in workload]
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    dedup_only = service.answer_batch(workload, workers=1)
    dedup_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = service.answer_batch(workload, workers=BATCH_WORKERS)
    batch_seconds = time.perf_counter() - started

    # Input order and answer-for-answer parity with the serial loop.
    for serial_result, batch_result in zip(serial, batched):
        assert serial_result.question == batch_result.question
        assert _signature(serial_result) == _signature(batch_result)
    for serial_result, dedup_result in zip(serial, dedup_only):
        assert _signature(serial_result) == _signature(dedup_result)

    per_question = len(workload)
    rows = [
        [
            "serial loop",
            format_seconds(serial_seconds),
            f"{per_question / serial_seconds:.0f} q/s",
            "1.00x",
        ],
        [
            "batch workers=1 (dedup only)",
            format_seconds(dedup_seconds),
            f"{per_question / dedup_seconds:.0f} q/s",
            f"{serial_seconds / dedup_seconds:.2f}x",
        ],
        [
            f"batch workers={BATCH_WORKERS}",
            format_seconds(batch_seconds),
            f"{per_question / batch_seconds:.0f} q/s",
            f"{serial_seconds / batch_seconds:.2f}x",
        ],
    ]
    emit(
        format_table(
            ["mode", "wall-clock", "throughput", "speedup"],
            rows,
            title=(
                f"Batch answering — {len(workload)} questions "
                f"({UNIQUE_QUESTIONS} distinct, x{REPEAT_FACTOR} repeats)"
            ),
        )
    )
    # Deduplication alone must already beat the serial loop on a
    # repeat-heavy workload; the threaded batch must not regress it.
    assert dedup_seconds < serial_seconds
    assert batch_seconds < serial_seconds


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-s", "-q"]))
