"""Service-layer overhead and batch-vs-serial throughput.

The api_redesign PR routes every question through
``QueryPipeline`` + ``AnswerService`` instead of the monolithic
``CQAds.answer``; this bench quantifies what that costs and buys:

1. **per-question overhead** — wall-clock of ``service.answer`` minus
   the sum of the stage timings: the price of the request objects, the
   option resolution and the trace bookkeeping (expected: tens of µs,
   i.e. noise against ~ms of pipeline work);
2. **legacy shim parity** — ``cqads.answer`` (the back-compat facade)
   vs ``service.answer``: both run the same stages, so the delta should
   be ~0;
3. **batch throughput** — ``answer_batch`` on a realistic workload
   where popular questions repeat (120 questions drawn from 40
   templates) vs a serial loop.  The win comes from answering each
   distinct request once (frozen requests are hashable, the pipeline is
   read-only) plus thread-pool overlap;
4. **instrumentation overhead** — the unified observability hooks
   (:mod:`repro.obs`) run unconditionally on the answer path; with no
   observability configured they take the no-op/counter-only fast
   path, and this bench enforces that the estimated per-question cost
   of those idle hooks stays under 5% of the pipeline time.

Quick mode (CI smoke): ``BENCH_API_QUICK=1`` shrinks the question pool
and repeats but keeps every assertion — in particular the 5%
instrumentation-overhead tripwire, which is arithmetic over measured
primitive costs and cannot flake on a noisy runner.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_api_overhead.py -s
  or: PYTHONPATH=src python benchmarks/bench_api_overhead.py [--quick]
"""

from __future__ import annotations

import os
import pathlib
import statistics
import sys
import time

import pytest

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # direct `python benchmarks/bench_api_overhead.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit
from repro.api import AnswerRequest, SystemBuilder
from repro.datagen.questions import make_generator
from repro.evaluation.reporting import format_seconds, format_table

QUICK = bool(os.environ.get("BENCH_API_QUICK"))

#: Distinct question templates and how often each repeats in the batch.
UNIQUE_QUESTIONS = 12 if QUICK else 40
REPEAT_FACTOR = 3
BATCH_WORKERS = 4

#: The observability budget: idle hooks must cost under this share of
#: the per-question pipeline time (ISSUE 9 acceptance criterion).
MAX_INSTRUMENTATION_SHARE = 0.05


@pytest.fixture(scope="module")
def system():
    """A paper-scale single-domain build (artifacts kept for questions)."""
    return (
        SystemBuilder()
        .with_domains("cars")
        .ads_per_domain(500)
        .sessions_per_domain(500)
        .corpus_documents(300)
        .build()
    )


@pytest.fixture(scope="module")
def service(system):
    return system.service()


@pytest.fixture(scope="module")
def questions(system):
    generator = make_generator(system.domain("cars").dataset, seed=31)
    return [generator.generate().text for _ in range(UNIQUE_QUESTIONS)]


def _signature(result):
    return [
        (a.record.record_id, a.exact, round(a.score, 9), a.similarity_kind)
        for a in result.answers
    ]


def test_service_overhead_per_question(service, questions):
    """Request-object plumbing costs µs against ms of pipeline work."""
    overheads, totals, shim_totals = [], [], []
    for question in questions:
        request = AnswerRequest(question=question, domain="cars")
        started = time.perf_counter()
        result = service.answer(request)
        total = time.perf_counter() - started
        overheads.append(total - sum(result.timings.values()))
        totals.append(total)
        started = time.perf_counter()
        service.cqads.answer(question, domain="cars")
        shim_totals.append(time.perf_counter() - started)
    mean_total = statistics.mean(totals)
    mean_overhead = statistics.mean(overheads)
    rows = [
        ["service.answer (mean)", format_seconds(mean_total)],
        ["legacy cqads.answer shim (mean)", format_seconds(statistics.mean(shim_totals))],
        ["service-layer overhead (mean)", format_seconds(mean_overhead)],
        ["overhead share of total", f"{100 * mean_overhead / mean_total:.1f}%"],
    ]
    emit(
        format_table(
            ["measure", "value"],
            rows,
            title="API overhead — request objects + stage composition per question",
        )
    )
    # The service layer must not dominate the pipeline it wraps.
    assert mean_overhead < mean_total * 0.5


def test_batch_vs_serial_throughput(service, questions):
    """answer_batch matches the serial loop and is measurably faster."""
    workload = [
        AnswerRequest(question=question, domain="cars")
        for question in questions * REPEAT_FACTOR
    ]
    assert len(workload) >= (30 if QUICK else 100)

    started = time.perf_counter()
    serial = [service.answer(request) for request in workload]
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    dedup_only = service.answer_batch(workload, workers=1)
    dedup_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = service.answer_batch(workload, workers=BATCH_WORKERS)
    batch_seconds = time.perf_counter() - started

    # Input order and answer-for-answer parity with the serial loop.
    for serial_result, batch_result in zip(serial, batched):
        assert serial_result.question == batch_result.question
        assert _signature(serial_result) == _signature(batch_result)
    for serial_result, dedup_result in zip(serial, dedup_only):
        assert _signature(serial_result) == _signature(dedup_result)

    per_question = len(workload)
    rows = [
        [
            "serial loop",
            format_seconds(serial_seconds),
            f"{per_question / serial_seconds:.0f} q/s",
            "1.00x",
        ],
        [
            "batch workers=1 (dedup only)",
            format_seconds(dedup_seconds),
            f"{per_question / dedup_seconds:.0f} q/s",
            f"{serial_seconds / dedup_seconds:.2f}x",
        ],
        [
            f"batch workers={BATCH_WORKERS}",
            format_seconds(batch_seconds),
            f"{per_question / batch_seconds:.0f} q/s",
            f"{serial_seconds / batch_seconds:.2f}x",
        ],
    ]
    emit(
        format_table(
            ["mode", "wall-clock", "throughput", "speedup"],
            rows,
            title=(
                f"Batch answering — {len(workload)} questions "
                f"({UNIQUE_QUESTIONS} distinct, x{REPEAT_FACTOR} repeats)"
            ),
        )
    )
    # Deduplication alone must already beat the serial loop on a
    # repeat-heavy workload; the threaded batch must not regress it.
    assert dedup_seconds < serial_seconds
    assert batch_seconds < serial_seconds


def test_instrumentation_overhead_budget(service, questions):
    """Idle observability hooks stay inside the 5% per-question budget.

    With no ``Observability`` configured every hook takes its fast
    path: ``span()`` hands back the shared no-op context, and the
    metric hooks do one dict lookup plus one integer update on the
    process-default registry.  The tripwire multiplies the *measured*
    per-call cost of those primitives by the *measured* number of hook
    events one question actually fires, and requires the product to
    stay under ``MAX_INSTRUMENTATION_SHARE`` of the mean per-question
    wall-clock — arithmetic over two stable measurements, so the gate
    cannot flake the way an off-vs-on A/B on a noisy runner would.
    """
    from repro.obs import (
        MetricsRegistry,
        cache_event,
        set_default_registry,
        span,
    )

    requests = [
        AnswerRequest(question=question, domain="cars")
        for question in questions
    ]
    for request in requests:  # warm every cache the questions touch
        service.answer(request)
    started = time.perf_counter()
    for request in requests:
        service.answer(request)
    per_question = (time.perf_counter() - started) / len(requests)

    # How many hook events does one question fire?  Run the workload
    # against a fresh registry and tally every counter bump and
    # histogram observation it recorded.
    registry = MetricsRegistry()
    previous = set_default_registry(registry)
    try:
        for request in requests:
            service.answer(request)
    finally:
        set_default_registry(previous)
    snapshot = registry.snapshot()
    events = sum(sample.value for sample in snapshot.counters) + sum(
        sample.count for sample in snapshot.histograms
    )
    events_per_question = events / len(requests)

    # Measure the primitives on their untraced fast paths.
    calls = 5_000 if QUICK else 20_000
    scratch = MetricsRegistry()
    previous = set_default_registry(scratch)
    try:
        started = time.perf_counter()
        for _ in range(calls):
            cache_event("answer", True)
        cache_event_cost = (time.perf_counter() - started) / calls
        started = time.perf_counter()
        for _ in range(calls):
            with span("bench"):
                pass
        span_cost = (time.perf_counter() - started) / calls
    finally:
        set_default_registry(previous)

    # Conservative: price every event at the dearer primitive, and add
    # the per-question null spans (stages + api root checks, ~10).
    per_event = max(cache_event_cost, span_cost)
    estimated = events_per_question * per_event + 10 * span_cost
    share = estimated / per_question
    rows = [
        ["per-question wall-clock (mean)", format_seconds(per_question)],
        ["hook events per question", f"{events_per_question:.1f}"],
        ["cache_event cost (idle)", format_seconds(cache_event_cost)],
        ["null span cost (idle)", format_seconds(span_cost)],
        ["estimated instrumentation cost", format_seconds(estimated)],
        ["share of per-question time", f"{100 * share:.2f}%"],
    ]
    emit(
        format_table(
            ["measure", "value"],
            rows,
            title="Observability — idle-hook overhead vs the 5% budget"
            + (" [quick mode]" if QUICK else ""),
        )
    )
    assert share < MAX_INSTRUMENTATION_SHARE, (
        f"idle observability hooks cost {share:.1%} of the per-question "
        f"time; the budget is {MAX_INSTRUMENTATION_SHARE:.0%}"
    )


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["BENCH_API_QUICK"] = "1"
    raise SystemExit(pytest.main([__file__, "-s", "-q"]))
