"""Durability tax and recovery speed of the WAL storage backend.

The store (PR 7, :mod:`repro.store`) makes every typed mutation delta
durable: length-prefixed CRC32 frames appended to a write-ahead log
under a configurable fsync policy, with periodic checksummed snapshots
bounding replay.  This bench measures the two costs that design trades
against each other:

1. **Append overhead** — one identical mutation stream (inserts,
   updates, deletes) against the pure in-memory database and against
   WAL backends under ``fsync="off"``, ``"interval"`` and
   ``"always"``.  Logging is a per-mutation frame encode + unbuffered
   write, so "off"/"interval" should cost a small constant factor;
   "always" pays a real fsync per mutation and is the price of
   power-loss durability for every acknowledged write.
2. **Recovery time** — the same history recovered two ways: replaying
   the full WAL from the empty state, and loading the latest snapshot
   plus the short WAL tail behind it.  Snapshots exist precisely to
   keep restart time proportional to the tail, not the history.

Every arm must recover **bit-identically** (the
:func:`~repro.store.parity.database_fingerprint` definition: records,
all index families, epochs, id allocators) — a fast-but-wrong
recovery fails the bench, it does not win it.  The snapshot lands in
``BENCH_durability.json``.

Quick mode (CI smoke): ``BENCH_DURABILITY_QUICK=1`` shrinks the stream
and asserts the correctness tripwires only — bit-parity for every
arm, torn-tail truncation, snapshot+tail replaying fewer frames than
the full log — leaving the committed JSON untouched.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -s
  or: PYTHONPATH=src python benchmarks/bench_durability.py [--quick]
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys
import time

import pytest

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # direct `python benchmarks/bench_durability.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit
from repro.db.database import Database
from repro.db.schema import AttributeType, Column, ColumnKind, TableSchema
from repro.evaluation.reporting import format_table
from repro.store import WalBackend, database_fingerprint, recover_database
from repro.store.wal import encode_frame
from repro.store.snapshot import wal_path

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_durability.json"

QUICK = bool(os.environ.get("BENCH_DURABILITY_QUICK"))
#: Mutation-stream length (ops, not rows; ~70/20/10 ins/upd/del mix).
OPS = 400 if QUICK else 4000
#: The snapshot+tail arm snapshots with this fraction of the stream
#: still to come — recovery then replays only that tail.
TAIL_FRACTION = 0.05
FSYNC_ARMS = ("off", "interval", "always")

MAKES = [
    ("honda", "accord"), ("honda", "civic"), ("toyota", "corolla"),
    ("toyota", "camry"), ("ford", "focus"), ("mazda", "mx5"),
    ("bmw", "m3"), ("audi", "a4"),
]
COLORS = ["red", "blue", "green", "silver", "black", "white"]


def _schema() -> TableSchema:
    return TableSchema(
        table_name="car_ads",
        columns=[
            Column("make", AttributeType.TYPE_I),
            Column("model", AttributeType.TYPE_I),
            Column("color", AttributeType.TYPE_II),
            Column("year", AttributeType.TYPE_III, ColumnKind.NUMERIC),
            Column("price", AttributeType.TYPE_III, ColumnKind.NUMERIC),
            Column("mileage", AttributeType.TYPE_III, ColumnKind.NUMERIC),
        ],
    )


def _build_ops(count: int) -> list[tuple]:
    """A deterministic mixed mutation stream, identical for every arm.

    Ids are pre-simulated (inserts mint 1..N in order on every
    backend), so updates and deletes always reference live rows.
    """
    rng = random.Random(423)
    ops: list[tuple] = []
    alive: list[int] = []
    next_id = 1
    for _ in range(count):
        roll = rng.random()
        if roll < 0.7 or len(alive) < 10:
            make, model = rng.choice(MAKES)
            ops.append((
                "insert",
                {
                    "make": make,
                    "model": model,
                    "color": rng.choice(COLORS),
                    "year": rng.randint(1995, 2011),
                    "price": rng.randint(500, 40000),
                    "mileage": rng.randint(0, 220000),
                },
            ))
            alive.append(next_id)
            next_id += 1
        elif roll < 0.9:
            target = rng.choice(alive)
            ops.append(("update", target, {"price": rng.randint(500, 40000)}))
        else:
            target = alive.pop(rng.randrange(len(alive)))
            ops.append(("delete", target))
    return ops


def _apply(table, ops) -> None:
    for op in ops:
        if op[0] == "insert":
            table.insert(dict(op[1]))
        elif op[0] == "update":
            table.update(op[1], dict(op[2]))
        else:
            table.delete(op[1])


def _run_arm(ops, storage) -> tuple[float, Database]:
    database = Database(storage=storage)
    table = database.create_table(_schema())
    started = time.perf_counter()
    _apply(table, ops)
    seconds = time.perf_counter() - started
    if storage is not None:
        storage.close()
    return seconds, database


def test_durability_overhead_and_recovery(tmp_path):
    ops = _build_ops(OPS)

    # -- arm 1: append overhead per fsync policy -----------------------
    memory_seconds, memory_database = _run_arm(ops, None)
    live = database_fingerprint(memory_database)
    arm_seconds: dict[str, float] = {"memory": memory_seconds}
    directories: dict[str, str] = {}
    for policy in FSYNC_ARMS:
        directory = str(tmp_path / f"wal-{policy}")
        directories[policy] = directory
        seconds, database = _run_arm(
            ops,
            WalBackend(directory, fsync=policy, snapshot_every=None),
        )
        arm_seconds[policy] = seconds
        # The durable build IS the in-memory build, bit for bit.
        assert database_fingerprint(database) == live

    # -- arm 2: recovery, full replay vs snapshot + tail ----------------
    # Full replay: the fsync="off" directory holds the entire history
    # in wal-0 (snapshots were disabled above).
    started = time.perf_counter()
    replayed, full_report = recover_database(directories["off"])
    full_recovery_s = time.perf_counter() - started
    assert database_fingerprint(replayed) == live

    # Snapshot + tail: same stream, but a snapshot lands with only the
    # last TAIL_FRACTION of operations still to come.
    tail_directory = str(tmp_path / "wal-snapshot")
    backend = WalBackend(tail_directory, fsync="off", snapshot_every=None)
    database = Database(storage=backend)
    table = database.create_table(_schema())
    cut = int(len(ops) * (1.0 - TAIL_FRACTION))
    _apply(table, ops[:cut])
    backend.snapshot()
    _apply(table, ops[cut:])
    backend.close()
    assert database_fingerprint(database) == live
    started = time.perf_counter()
    recovered, tail_report = recover_database(tail_directory)
    tail_recovery_s = time.perf_counter() - started
    assert database_fingerprint(recovered) == live
    assert tail_report.snapshot is not None
    assert tail_report.frames_replayed < full_report.frames_replayed

    # -- arm 3 (tripwire): a torn tail is detected and cut --------------
    with open(wal_path(tail_directory, tail_report.generation), "ab") as f:
        f.write(encode_frame({"t": "del", "table": "car_ads", "id": 1})[:7])
    torn_recovered, torn_report = recover_database(tail_directory)
    assert database_fingerprint(torn_recovered) == live
    assert torn_report.truncated, "torn WAL tail was not detected"

    rows = [
        [
            arm,
            f"{seconds:.3f}",
            f"{OPS / seconds:,.0f}",
            f"{seconds / memory_seconds:.2f}x",
        ]
        for arm, seconds in arm_seconds.items()
    ]
    rows.append(["recovery: full WAL replay", f"{full_recovery_s:.3f}",
                 str(full_report.frames_replayed) + " frames", "-"])
    rows.append(["recovery: snapshot + tail", f"{tail_recovery_s:.3f}",
                 str(tail_report.frames_replayed) + " frames", "-"])
    emit(
        format_table(
            ["arm", "seconds", "ops/s | frames", "vs memory"],
            rows,
            title=(
                f"durability: {OPS} mixed mutations, WAL + snapshots"
                + (" [quick mode]" if QUICK else "")
            ),
        )
    )

    if not QUICK:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "wal_durability",
                    "operations": OPS,
                    "append_overhead": {
                        arm: {
                            "seconds": seconds,
                            "ops_per_second": OPS / seconds,
                            "overhead_vs_memory": seconds / memory_seconds,
                        }
                        for arm, seconds in arm_seconds.items()
                    },
                    "recovery": {
                        "full_replay": {
                            "seconds": full_recovery_s,
                            "frames_replayed": full_report.frames_replayed,
                            "snapshot_load_seconds": (
                                full_report.snapshot_load_seconds
                            ),
                            "replay_seconds": full_report.replay_seconds,
                        },
                        "snapshot_plus_tail": {
                            "seconds": tail_recovery_s,
                            "frames_replayed": tail_report.frames_replayed,
                            "snapshot_load_seconds": (
                                tail_report.snapshot_load_seconds
                            ),
                            "replay_seconds": tail_report.replay_seconds,
                            "tail_fraction": TAIL_FRACTION,
                        },
                        "replay_speedup": (
                            full_report.replay_seconds
                            / tail_report.replay_seconds
                            if tail_report.replay_seconds
                            else None
                        ),
                    },
                },
                indent=2,
            )
            + "\n"
        )


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["BENCH_DURABILITY_QUICK"] = "1"
    sys.exit(pytest.main([__file__, "-s", "-q"]))
