"""Figure 5: P@1, P@5 and MRR of CQAds vs. the four baselines.

Paper: CQAds best on all three metrics over 40 questions (5 per
domain); Random worst; FAQFinder weakest of the non-random baselines
(it "does not compare numerical attributes").

Every ranker orders the *same* N-1 candidate pool per question, and a
simulated appraiser panel (driven by the latent similarity model, not
by CQAds' learned matrices) judges the top-5.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation.experiments import ranking_quality_experiment
from repro.evaluation.reporting import format_table
from repro.ranking.rank_sim import RankSimRanker

RANKERS = ("cqads", "aimq", "cosine", "faqfinder", "random")


@pytest.fixture(scope="module")
def figure5(full_system):
    return ranking_quality_experiment(full_system, questions_per_domain=5)


def test_fig5_ranking_quality(benchmark, full_system, figure5):
    rows = [
        [
            name,
            f"{figure5.p_at_1[name]:.3f}",
            f"{figure5.p_at_5[name]:.3f}",
            f"{figure5.mrr[name]:.3f}",
        ]
        for name in RANKERS
    ]
    emit(
        format_table(
            ["ranker", "P@1", "P@5", "MRR"],
            rows,
            title=(
                "Figure 5 — ranking quality over "
                f"{figure5.questions_evaluated} questions "
                "(paper: CQAds best on all three, Random worst)"
            ),
        )
    )
    # headline shape: CQAds wins every metric, Random trails everything
    for metric in (figure5.p_at_1, figure5.p_at_5, figure5.mrr):
        assert metric["cqads"] == max(metric.values())
        assert metric["random"] == min(metric.values())
    # CQAds' margin over the baselines is substantial (the paper's gap)
    assert figure5.p_at_5["cqads"] - figure5.p_at_5["random"] > 0.2

    # timing: one Rank_Sim scoring pass over a candidate pool
    built = full_system.domains["cars"]
    ranker = RankSimRanker(built.resources)
    records = list(built.dataset.table)[:120]
    from repro.db.schema import AttributeType
    from repro.qa.conditions import Condition, ConditionOp

    conditions = [
        Condition("make", AttributeType.TYPE_I, ConditionOp.EQ, "honda"),
        Condition("model", AttributeType.TYPE_I, ConditionOp.EQ, "accord"),
        Condition("color", AttributeType.TYPE_II, ConditionOp.EQ, "blue"),
        Condition("price", AttributeType.TYPE_III, ConditionOp.LT, 15000),
    ]
    benchmark(ranker.rank, records, conditions, 5)
