"""Ablation benches for the design choices DESIGN.md calls out.

* N-1 vs. deeper relaxation (the Section 4.3.1 trade-off: deeper
  relaxation costs time and dilutes relevance);
* spelling correction on/off under misspelling noise;
* the 30-answer cap (iProspect statistic);
* substring index vs. full scans for LIKE queries.
"""

from __future__ import annotations

import time


from benchmarks.conftest import emit
from repro.datagen.questions import make_generator
from repro.evaluation.reporting import format_percent, format_seconds, format_table
from repro.qa.pipeline import CQAds
from repro.qa.sql_generation import evaluate_interpretation


def test_spelling_correction_ablation(benchmark, full_system):
    """Exact-match recall with and without the Section 4.2.1 corrector,
    under heavy misspelling noise."""
    built = full_system.domains["cars"]
    generator = make_generator(built.dataset, noise_rate=0.9, seed=101)
    questions = [
        q for q in generator.generate_many(60, kinds=("simple", "boundary"))
        if "misspell" in q.noise or "drop_space" in q.noise
    ]
    with_corrector = full_system.cqads

    without_corrector = CQAds(full_system.database, correct_spelling=False)
    without_corrector.add_domain(built.domain, resources=built.resources)

    def recall(cqads) -> float:
        hits = 0
        for question in questions:
            truth = evaluate_interpretation(
                full_system.database, built.domain, question.interpretation
            )
            truth_ids = {record.record_id for record in truth}
            result = cqads.answer(question.text, domain="cars")
            retrieved = {a.record.record_id for a in result.exact_answers}
            if truth_ids and retrieved & truth_ids:
                hits += 1
        return hits / max(len(questions), 1)

    corrected = recall(with_corrector)
    uncorrected = recall(without_corrector)
    emit(
        format_table(
            ["configuration", "questions answered correctly"],
            [
                ["with trie corrector (paper)", format_percent(corrected)],
                ["corrector disabled", format_percent(uncorrected)],
            ],
            title=(
                "Ablation — Section 4.2.1 spelling correction "
                f"({len(questions)} noisy questions)"
            ),
        )
    )
    assert corrected >= uncorrected

    benchmark(
        with_corrector.answer, "hondaaccord less than $9000", "cars"
    )


def test_relaxation_depth_ablation(benchmark, full_system):
    """N-1 vs. exhaustive relaxation: deeper relaxation inflates the
    candidate pool (the paper's 'the more combinations ... the longer
    the question processing time')."""
    built = full_system.domains["cars"]
    cqads = full_system.cqads
    question = "blue automatic honda accord less than 15000 dollars"
    result = cqads.answer(question, domain="cars")
    units = cqads.relaxation_units(result.interpretation)

    pool_n1 = cqads.partial_candidates("cars", result.interpretation)

    # N-2: drop every *pair* of units
    import itertools

    n2_ids = set()
    started = time.perf_counter()
    for keep in itertools.combinations(range(len(units)), max(len(units) - 2, 1)):
        remaining = [units[i] for i in keep]
        relaxed = cqads._units_to_interpretation(remaining, result.interpretation)  # noqa: SLF001
        for record in evaluate_interpretation(
            full_system.database, built.domain, relaxed
        ):
            n2_ids.add(record.record_id)
    n2_time = time.perf_counter() - started

    started = time.perf_counter()
    cqads.partial_candidates("cars", result.interpretation)
    n1_time = time.perf_counter() - started

    emit(
        format_table(
            ["strategy", "candidate pool", "retrieval time"],
            [
                ["N-1 (paper)", str(len(pool_n1)), format_seconds(n1_time)],
                ["N-2 (ablation)", str(len(n2_ids)), format_seconds(n2_time)],
            ],
            title="Ablation — Section 4.3.1 relaxation depth",
        )
    )
    # deeper relaxation can only widen the pool
    assert len(n2_ids) >= len({r.record_id for r in pool_n1}) * 0.5

    benchmark(cqads.partial_candidates, "cars", result.interpretation)


def test_answer_cap_ablation(benchmark, full_system):
    """The 30-answer cap (Section 4.3.1 / iProspect)."""
    cqads = full_system.cqads
    question = "honda"
    capped = cqads.answer(question, domain="cars")
    original_cap = cqads.max_answers
    try:
        cqads.max_answers = 100
        uncapped = cqads.answer(question, domain="cars")
    finally:
        cqads.max_answers = original_cap
    emit(
        format_table(
            ["cap", "answers returned"],
            [
                ["30 (paper)", str(len(capped.answers))],
                ["100 (ablation)", str(len(uncapped.answers))],
            ],
            title="Ablation — the 30-answer cap",
        )
    )
    assert len(capped.answers) <= 30
    assert len(uncapped.answers) >= len(capped.answers)

    benchmark(cqads.answer, question, "cars")


def test_substring_index_ablation(benchmark, full_system):
    """The length-3 substring index vs. a full scan (Section 4.5)."""
    table = full_system.domains["cars"].dataset.table

    def indexed() -> set[int]:
        return table.lookup_substring("model", "cor")

    def scan() -> set[int]:
        return table.scan(
            lambda record: "cor" in str(record.get("model", ""))
        )

    assert indexed() == scan()
    started = time.perf_counter()
    for _ in range(200):
        indexed()
    indexed_time = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(200):
        scan()
    scan_time = time.perf_counter() - started
    emit(
        format_table(
            ["access path", "200 lookups"],
            [
                ["length-3 substring index (paper)", format_seconds(indexed_time)],
                ["full scan (ablation)", format_seconds(scan_time)],
            ],
            title="Ablation — Section 4.5 substring index",
        )
    )
    assert indexed_time < scan_time

    benchmark(indexed)
