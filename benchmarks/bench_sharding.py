"""Scatter-gather sharding vs the single table on a mutating workload.

Sharding cannot reduce the *total* scoring work on one core — its
single-core payoff is **invalidation locality**: every hot-path cache
keys on a shard's own mutation epoch, so a point mutation stales 1/N
of the cached state instead of all of it.  On a read-only stream the
two layouts are within noise of each other; the workload that
separates them is the production-shaped one, reads interleaved with
point mutations:

* the unsharded build rebuilds the whole-table column store and
  re-evaluates every relaxation-unit id-set after each mutation;
* the 4-shard build rebuilds one shard's store (1/4 of the rows) and
  re-evaluates only the mutated shard's unit fragments, gathering the
  three untouched shards from cache.

The measured section is the candidate-pool + ranking path
(``partial_answers``: shared-subplan N-1 pools + columnar top-30),
driven by six-unit questions over the cars domain at 2000- and
8000-record pools, one point update per round, five questions per
round.  Both builds hold bit-identical data and answers (asserted
before and after timing); the snapshot lands in
``BENCH_sharding.json``.

The sharded arm runs in both scatter modes (``--mode`` /
``BENCH_SHARDING_MODE`` selects one):

* ``thread`` — the in-process scatter executor (the PR 4 baseline);
* ``process`` — the shared-memory worker-process pool
  (:mod:`repro.shard.procpool`), which replaces per-mutation store
  rebuilds with seqlock-patched segments and worker-side memo repair.
  The run asserts the pool actually served (no silent thread
  fallback), so its numbers are never a mislabeled thread arm.

Acceptance: >= 1.5x (thread) and >= 2.0x (process) over the single
table at 4 shards on the 8000-record pool.

Quick mode (CI smoke): ``BENCH_SHARDING_QUICK=1`` runs the 2000-ad
scale only with fewer rounds, asserts the sharded build is not slower
than the single table (a broken-locality build measures below 1.0x,
a healthy one ~1.25-1.5x), and leaves the committed JSON snapshot
untouched.  Process mode skips cleanly on platforms without POSIX
shared memory or a spawn context.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_sharding.py -s
  or: PYTHONPATH=src python benchmarks/bench_sharding.py
          [--quick] [--mode {thread,process}]
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys
import time

import pytest

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # direct `python benchmarks/bench_sharding.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit
from repro.db.schema import AttributeType
from repro.evaluation.reporting import format_seconds, format_table
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
    Interpretation,
)
from repro.qa.sql_generation import evaluate_interpretation
from repro.shard import ShardedTable, process_scatter_supported
from repro.system import build_system

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_sharding.json"

QUICK = bool(os.environ.get("BENCH_SHARDING_QUICK"))
_MODE_ENV = os.environ.get("BENCH_SHARDING_MODE", "").strip().lower()
MODES = (_MODE_ENV,) if _MODE_ENV in ("thread", "process") else (
    "thread",
    "process",
)
SCALES = (2000,) if QUICK else (2000, 8000)
SHARDS = 4
QUESTION_VARIETY = 10
ROUNDS = 10 if QUICK else 15
#: Quick mode leans harder on mutations (fewer questions amortizing
#: each update) so the locality win stands clear of CI runner noise.
QUESTIONS_PER_ROUND = 2 if QUICK else 5
REPEATS = 2
MIN_SPEEDUP_AT_8000 = 1.5
#: The process pool must beat the thread arm's gate decisively: it
#: additionally skips the per-mutation shard-store rebuild (seqlock
#: patch + worker memo repair), so the same mutating workload clears
#: 2x over the single table.
MIN_PROCESS_SPEEDUP_AT_8000 = 2.0
#: Quick mode is a regression tripwire, not a performance gate: with
#: shard-local caching broken, the sharded build pays full
#: re-invalidation *plus* per-shard overheads and measures below 1.0x
#: (~0.95x observed), while a healthy build measures ~1.25-1.5x.  The
#: 1.0 floor separates those states with headroom for noisy shared CI
#: runners; the committed BENCH_sharding.json carries the real numbers.
MIN_SPEEDUP_QUICK = 1.0


@pytest.fixture(
    scope="module",
    params=[(scale, mode) for scale in SCALES for mode in MODES],
    ids=lambda param: f"{param[0]}-{param[1]}",
)
def system_pair(request):
    """The same cars recipe, unsharded and 4-way sharded.

    Both builds pin ``cache_maintenance="rebuild"``: this benchmark
    isolates the *invalidation-locality* effect of sharding — a point
    mutation rebuilding 1/N of the epoch-keyed cache state instead of
    all of it — which only exists on the rebuild path.  Delta
    maintenance (PR 5, the engine default) patches caches in place for
    both layouts and removes most per-mutation rebuild cost entirely;
    ``bench_incremental.py`` measures that effect on its own.
    """
    scale, mode = request.param
    if mode == "process" and not process_scatter_supported():
        pytest.skip("platform lacks shared memory or a spawn context")
    recipe = dict(
        ads_per_domain=scale,
        sessions_per_domain=300,
        corpus_documents=200,
        cache_maintenance="rebuild",
    )
    base = build_system(["cars"], **recipe)
    sharded = build_system(
        ["cars"], shards=SHARDS, scatter_mode=mode, **recipe
    )
    yield base, sharded, scale, mode
    # Recycle the worker pool and its shared-memory segments eagerly —
    # leaked segments would be reclaimed at exit, but noisily.
    sharded.close()
    base.close()


def _question_interpretations(system, count: int) -> list[Interpretation]:
    """Six-unit conjunctions anchored on real records."""
    rng = random.Random(2718)
    dataset = system.domain("cars").dataset
    needed = ("make", "model", "color", "transmission", "price", "mileage", "year")
    complete = [
        record
        for record in dataset.records
        if all(record.get(column) is not None for column in needed)
    ]
    interpretations = []
    for _ in range(count):
        record = rng.choice(complete)
        conditions = [
            Condition("make", AttributeType.TYPE_I, ConditionOp.EQ,
                      str(record["make"])),
            Condition("model", AttributeType.TYPE_I, ConditionOp.EQ,
                      str(record["model"])),
            Condition("color", AttributeType.TYPE_II, ConditionOp.EQ,
                      str(record["color"])),
            Condition("transmission", AttributeType.TYPE_II, ConditionOp.EQ,
                      str(record["transmission"])),
            Condition("price", AttributeType.TYPE_III, ConditionOp.LT,
                      float(record["price"]) + 1000.0),
            Condition("mileage", AttributeType.TYPE_III, ConditionOp.LT,
                      float(record["mileage"]) + 5000.0),
            Condition("year", AttributeType.TYPE_III, ConditionOp.GE,
                      float(record["year"]) - 2.0),
        ]
        interpretations.append(
            Interpretation(tree=ConditionGroup(BooleanOperator.AND, conditions))
        )
    return interpretations


def _answer_signature(answers):
    return [
        (item.record.record_id, item.score, item.similarity_kind)
        for item in answers
    ]


def _assert_parity(base, sharded, interpretations, excludes) -> None:
    for interpretation, exclude in zip(interpretations, excludes):
        reference = None
        for system in (base, sharded):
            answers = system.cqads.partial_answers(
                "cars", interpretation, exclude, top_k=30
            )
            signature = _answer_signature(answers)
            if reference is None:
                reference = signature
            else:
                assert signature == reference, "sharded/unsharded divergence"


def _mutating_workload(
    system, interpretations, excludes, rounds: int, seed: int
) -> float:
    """Wall-clock of the candidate-pool + ranking stream with one point
    update per round.  The same *seed* drives the same victim sequence
    on every system (record ids are identical across builds), so the
    measured work — and the produced answers — stay bit-comparable."""
    cqads = system.cqads
    table = cqads.database.table("car_ads")
    rng = random.Random(seed)
    ids = sorted(table.all_ids())
    started = time.perf_counter()
    for round_index in range(rounds):
        victim = rng.choice(ids)
        price = float(table.get(victim)["price"])
        table.update(victim, {"price": price + 1.0})
        for i in range(QUESTIONS_PER_ROUND):
            k = (round_index * QUESTIONS_PER_ROUND + i) % len(interpretations)
            cqads.partial_answers(
                "cars", interpretations[k], excludes[k], top_k=30
            )
    return time.perf_counter() - started


def test_scatter_gather_speedup_under_mutation(system_pair):
    base, sharded, scale, mode = system_pair
    table = sharded.database.table("car_ads")
    assert isinstance(table, ShardedTable) and table.shard_count == SHARDS
    assert table.scatter_mode == mode
    interpretations = _question_interpretations(base, QUESTION_VARIETY)
    excludes = [
        {
            record.record_id
            for record in evaluate_interpretation(
                base.cqads.database, base.cqads.domain("cars"), interpretation
            )
        }
        for interpretation in interpretations
    ]

    # Parity before timing (also warms stores, fragments and memos).
    _assert_parity(base, sharded, interpretations, excludes)

    base_seconds = min(
        _mutating_workload(base, interpretations, excludes, ROUNDS, seed=run)
        for run in range(REPEATS)
    )
    sharded_seconds = min(
        _mutating_workload(sharded, interpretations, excludes, ROUNDS, seed=run)
        for run in range(REPEATS)
    )
    speedup = base_seconds / sharded_seconds

    # Both builds saw the same mutation stream: still bit-identical.
    _assert_parity(base, sharded, interpretations, excludes)

    if mode == "process":
        # The measured numbers must come from the worker pool, not a
        # silent fallback onto the thread path.
        pool = table.process_pool()
        assert pool is not None and not pool.broken and not pool.unsupported
        assert pool.worker_pids(), "no live scatter workers after timing"
        assert table.scatter_mode == "process"

    # The timed quantity is min-over-repeats of ONE workload pass, so
    # per-question latency divides by one pass's question count.
    questions = ROUNDS * QUESTIONS_PER_ROUND
    rows = [
        ["single table", format_seconds(base_seconds / questions), "1.00x"],
        [
            f"{SHARDS}-shard {mode} scatter",
            format_seconds(sharded_seconds / questions),
            f"{speedup:.2f}x",
        ],
    ]
    emit(
        format_table(
            ["layout", "per-question latency", "speedup"],
            rows,
            title=(
                f"candidate pool + top-30 ranking, {scale}-record pool, "
                f"one point update per {QUESTIONS_PER_ROUND} questions"
                + (" [quick mode]" if QUICK else "")
            ),
        )
    )

    if not QUICK:
        snapshot = {}
        if RESULT_PATH.exists():
            snapshot = json.loads(RESULT_PATH.read_text())
        snapshot.setdefault("benchmark", "sharded_scatter_gather")
        snapshot.setdefault("shards", SHARDS)
        snapshot.setdefault("rounds", ROUNDS)
        snapshot.setdefault("questions_per_round", QUESTIONS_PER_ROUND)
        entry = {
            "pool_size": scale,
            "single_table_ms_per_question": 1000 * base_seconds / questions,
            "sharded_ms_per_question": 1000 * sharded_seconds / questions,
            "speedup": speedup,
        }
        snapshot.setdefault("modes", {}).setdefault(mode, {}).setdefault(
            "scales", {}
        )[str(scale)] = entry
        if mode == "thread":
            # The pre-process-scatter snapshot shape, kept for trend
            # tooling that reads the thread numbers from the top level.
            snapshot.setdefault("scales", {})[str(scale)] = dict(entry)
        RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    if QUICK:
        assert speedup >= MIN_SPEEDUP_QUICK, (
            f"{SHARDS}-shard {mode} scatter must be >= {MIN_SPEEDUP_QUICK}x "
            f"even in quick mode at {scale} ads, measured {speedup:.2f}x"
        )
    elif scale == 8000:
        floor = (
            MIN_PROCESS_SPEEDUP_AT_8000
            if mode == "process"
            else MIN_SPEEDUP_AT_8000
        )
        assert speedup >= floor, (
            f"{SHARDS}-shard {mode} scatter must be >= {floor}x "
            f"at 8000 ads, measured {speedup:.2f}x"
        )


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--quick" in argv:
        os.environ["BENCH_SHARDING_QUICK"] = "1"
    for index, token in enumerate(argv):
        if token == "--mode" and index + 1 < len(argv):
            os.environ["BENCH_SHARDING_MODE"] = argv[index + 1]
        elif token.startswith("--mode="):
            os.environ["BENCH_SHARDING_MODE"] = token.split("=", 1)[1]
    raise SystemExit(pytest.main([__file__, "-s", "-q"]))
