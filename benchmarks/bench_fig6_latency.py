"""Figure 6: average query processing time per ranking approach.

Paper: Random fastest (no processing at all); CQAds faster than
cosine, AIMQ and FAQFinder "when partially matched and exact answers
are retrieved", because it retrieves exact matches through the indexed
SQL path first and only ranks a bounded partial pool, while the
comparison systems score every record.

The crossover is size-dependent, so this bench reports two scales: the
paper's 500 ads/domain and a 2,000-ad table where the full-scan
baselines' linear cost dominates.

Ablation: the Section 4.3 evaluation order (Type I first) on vs. off.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation.experiments import latency_experiment
from repro.evaluation.reporting import format_seconds, format_table

ORDER = ("random", "cqads", "cosine", "aimq", "faqfinder")


@pytest.fixture(scope="module")
def figure6_small(full_system):
    return latency_experiment(full_system, questions_per_domain=15)


@pytest.fixture(scope="module")
def figure6_large(large_cars_system):
    return latency_experiment(large_cars_system, questions_per_domain=60)


def test_fig6_latency(benchmark, full_system, figure6_small, figure6_large):
    rows = [
        [
            name,
            format_seconds(figure6_small.average_seconds[name]),
            format_seconds(figure6_large.average_seconds[name]),
        ]
        for name in ORDER
    ]
    emit(
        format_table(
            ["approach", "500 ads/domain", "2000 ads (cars only)"],
            rows,
            title=(
                "Figure 6 — average query processing time "
                "(paper: random < CQAds < cosine/AIMQ/FAQFinder)"
            ),
        )
    )
    small = figure6_small.average_seconds
    large = figure6_large.average_seconds
    # Random always wins (no processing).
    assert small["random"] == min(small.values())
    # At scale, CQAds beats every similarity-scoring baseline.
    assert large["cqads"] < large["cosine"]
    assert large["cqads"] < large["aimq"]
    assert large["cqads"] < large["faqfinder"]
    # Even at 500 ads CQAds beats the heavyweight baselines.
    assert small["cqads"] < small["aimq"]
    assert small["cqads"] < small["faqfinder"]

    benchmark(
        full_system.cqads.answer,
        "cheapest automatic honda accord",
        "cars",
    )


def test_fig6_evaluation_order_ablation(benchmark, large_cars_system):
    """Section 4.3's ordering (Type I first) against question order."""
    import time

    from repro.datagen.questions import make_generator

    cqads = large_cars_system.cqads
    built = large_cars_system.domains["cars"]
    generator = make_generator(built.dataset, noise_rate=0.0, seed=83)
    questions = generator.generate_many(
        60, kinds=("simple", "boundary", "between")
    )

    def run(ordered: bool) -> float:
        cqads.ordered_evaluation = ordered
        started = time.perf_counter()
        for question in questions:
            cqads.answer(question.text, domain="cars")
        return time.perf_counter() - started

    try:
        ordered_time = run(True)
        unordered_time = run(False)
    finally:
        cqads.ordered_evaluation = True
    emit(
        format_table(
            ["evaluation order", "total time (60 questions)"],
            [
                ["Type I -> II -> III (paper)", format_seconds(ordered_time)],
                ["question order (ablation)", format_seconds(unordered_time)],
            ],
            title="Ablation — Section 4.3 evaluation ordering",
        )
    )
    # Both are correct; ordering is a performance heuristic, so we only
    # assert it does not catastrophically regress.
    assert ordered_time < unordered_time * 2.5

    benchmark(
        large_cars_system.cqads.answer,
        "blue honda accord under 15000 dollars",
        "cars",
    )
