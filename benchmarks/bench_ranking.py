"""Columnar top-k ranking vs the legacy full-sort ranker.

PR 2 made candidate-pool construction fast, leaving Eq. 5 scoring as
the dominant per-question cost: the legacy ``RankSimRanker`` walks
every pooled record with per-record/per-condition Python loops and
fully sorts the pool even though the pipeline presents 30 answers.
The columnar engine (:mod:`repro.perf.colrank`) scores through
per-epoch column arrays with distinct-value memos and selects the
top k with a bounded heap.

This bench ranks whole-table pools (500 and 2000 ads — the paper's
scale and 4x it) against six-unit questions, verifies the bounded
columnar result equals the legacy full sort truncated (bit-identical,
ties included), and records the snapshot in ``BENCH_ranking.json``.

Acceptance: >= 3x speedup at pool 2000, k=30.

Quick mode (CI smoke): ``BENCH_RANKING_QUICK=1`` runs the 500-ad scale
only with fewer repeats, asserts a conservative 1.8x floor, and leaves
the committed JSON snapshot untouched.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_ranking.py -s
  or: PYTHONPATH=src python benchmarks/bench_ranking.py [--quick]
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import statistics
import sys
import time

import pytest

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # direct `python benchmarks/bench_ranking.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit
from repro.db.schema import AttributeType
from repro.evaluation.reporting import format_seconds, format_table
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
    Interpretation,
)
from repro.system import build_system

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_ranking.json"

QUICK = bool(os.environ.get("BENCH_RANKING_QUICK"))
SCALES = (500,) if QUICK else (500, 2000)
QUESTIONS_PER_SCALE = 4 if QUICK else 10
REPEATS = 2 if QUICK else 3
TOP_K = 30
MIN_SPEEDUP_AT_2000 = 3.0
MIN_SPEEDUP_QUICK = 1.8


@pytest.fixture(scope="module", params=SCALES)
def sized_system(request):
    return build_system(
        ["cars"],
        ads_per_domain=request.param,
        sessions_per_domain=300,
        corpus_documents=200,
    ), request.param


def _question_interpretations(system, count: int) -> list[Interpretation]:
    """Six-unit conjunctions anchored on real records."""
    rng = random.Random(2718)
    dataset = system.domain("cars").dataset
    needed = ("make", "model", "color", "transmission", "price", "mileage", "year")
    complete = [
        record
        for record in dataset.records
        if all(record.get(column) is not None for column in needed)
    ]
    interpretations = []
    for _ in range(count):
        record = rng.choice(complete)
        conditions = [
            Condition("make", AttributeType.TYPE_I, ConditionOp.EQ,
                      str(record["make"])),
            Condition("model", AttributeType.TYPE_I, ConditionOp.EQ,
                      str(record["model"])),
            Condition("color", AttributeType.TYPE_II, ConditionOp.EQ,
                      str(record["color"])),
            Condition("transmission", AttributeType.TYPE_II, ConditionOp.EQ,
                      str(record["transmission"])),
            Condition("price", AttributeType.TYPE_III, ConditionOp.LT,
                      float(record["price"]) + 1000.0),
            Condition("mileage", AttributeType.TYPE_III, ConditionOp.LT,
                      float(record["mileage"]) + 5000.0),
            Condition("year", AttributeType.TYPE_III, ConditionOp.GE,
                      float(record["year"]) - 2.0),
        ]
        interpretations.append(
            Interpretation(tree=ConditionGroup(BooleanOperator.AND, conditions))
        )
    return interpretations


def _scored_signature(items):
    return [
        (item.record.record_id, item.score, item.failed, item.similarity_kind)
        for item in items
    ]


def _time(ranker, pool, units_list, run) -> float:
    """Best-of-REPEATS wall-clock for ranking every question's pool."""
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for units in units_list:
            run(ranker, pool, units)
        best = min(best, time.perf_counter() - started)
    return best


def test_columnar_topk_speedup(sized_system):
    system, scale = sized_system
    cqads = system.cqads
    context = cqads.context("cars")
    ranker = context.ranker()
    table = cqads.database.table(context.domain.schema.table_name)
    pool = sorted(table, key=lambda record: record.record_id)
    assert len(pool) == scale
    interpretations = _question_interpretations(system, QUESTIONS_PER_SCALE)
    units_list = [
        cqads.relaxation_units(interpretation)
        for interpretation in interpretations
    ]
    assert min(len(units) for units in units_list) >= 5

    # Parity (and warm-up: column store, memos, record-key caches)
    # before timing means anything.
    for units in units_list:
        legacy = ranker.rank_units(pool, units, engine="legacy")
        columnar = ranker.rank_units(pool, units, top_k=TOP_K, engine="columnar")
        assert _scored_signature(columnar) == _scored_signature(legacy[:TOP_K])

    legacy_seconds = _time(
        ranker, pool, units_list,
        lambda r, p, u: r.rank_units(p, u, engine="legacy"),
    )
    columnar_seconds = _time(
        ranker, pool, units_list,
        lambda r, p, u: r.rank_units(p, u, top_k=TOP_K, engine="columnar"),
    )
    speedup = legacy_seconds / columnar_seconds

    per_question = QUESTIONS_PER_SCALE
    mean_units = statistics.mean(len(units) for units in units_list)
    rows = [
        [
            "legacy full sort",
            format_seconds(legacy_seconds / per_question),
            "1.00x",
        ],
        [
            f"columnar top-{TOP_K}",
            format_seconds(columnar_seconds / per_question),
            f"{speedup:.2f}x",
        ],
    ]
    emit(
        format_table(
            ["ranking engine", "per-question latency", "speedup"],
            rows,
            title=(
                f"Rank_Sim over a {scale}-record pool — "
                f"{mean_units:.1f} relaxation units per question"
                + (" [quick mode]" if QUICK else "")
            ),
        )
    )

    if not QUICK:
        snapshot = {}
        if RESULT_PATH.exists():
            snapshot = json.loads(RESULT_PATH.read_text())
        snapshot.setdefault("benchmark", "columnar_topk_ranking")
        snapshot.setdefault("top_k", TOP_K)
        snapshot.setdefault("questions_per_scale", QUESTIONS_PER_SCALE)
        snapshot.setdefault("scales", {})
        snapshot["scales"][str(scale)] = {
            "pool_size": scale,
            "relaxation_units_mean": mean_units,
            "legacy_ms_per_question": 1000 * legacy_seconds / per_question,
            "columnar_ms_per_question": 1000 * columnar_seconds / per_question,
            "speedup": speedup,
        }
        RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    if QUICK:
        assert speedup >= MIN_SPEEDUP_QUICK, (
            f"columnar top-k must be >= {MIN_SPEEDUP_QUICK}x even in quick "
            f"mode at {scale} ads, measured {speedup:.2f}x"
        )
    elif scale == 2000:
        assert speedup >= MIN_SPEEDUP_AT_2000, (
            f"columnar top-k must be >= {MIN_SPEEDUP_AT_2000}x at 2000 ads, "
            f"measured {speedup:.2f}x"
        )


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["BENCH_RANKING_QUICK"] = "1"
    raise SystemExit(pytest.main([__file__, "-s", "-q"]))
