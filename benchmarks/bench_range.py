"""Ordered windows + adaptive planning vs scans on range-heavy queries.

Range, comparison and BETWEEN leaves are the one predicate family the
index stack still paid O(pool) for: ``lookup_range`` bisects but then
materializes the whole matching id-set, and lexicographic/record-id
ranges fell back to full scans.  The ordered column windows
(:mod:`repro.perf.window`) answer the same leaves with two bisects
into a delta-maintained sorted array, wrapped in a lazy window the
executor's set algebra intersects without materializing, and the
selectivity-adaptive planner (:class:`repro.db.sql.executor
.AccessPlanner`) picks scan vs. index vs. window (or the window's
complement) per leaf.

The measured stream is the ROADMAP's range-heavy workload: six-unit
AND questions dominated by BETWEEN/comparison units (make/color
equality plus price BETWEEN, mileage <, mileage >, year >=) with
**rng-jittered bounds** — every question is a fresh range, so leaf
evaluation itself is measured rather than any memo — and one point
update per question (mutation churn, so the windows must splice
deltas while being timed).  Three arms run the identical build +
churn + question stream and differ only in the executor's
``access_paths`` mode: ``scan`` (full-scan oracle), ``index`` (the
pre-window sorted-index path) and ``adaptive`` (windows + planner).
Every arm's per-question id lists are collected and asserted
bit-identical across arms.

Acceptance: >= 3x speedup (adaptive vs scan) at the 8000-ad scale;
the snapshot lands in ``BENCH_range.json``.

Quick mode (CI smoke): ``BENCH_RANGE_QUICK=1`` runs the 2000-ad scale
with fewer rounds and asserts a >= 1.0x tripwire — a broken window
path pays window bookkeeping on top of the scans it should have
avoided and measures <= 1.0x, while a healthy one measures several-
fold higher, so the floor is noise-proof on shared runners.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_range.py -s
  or: PYTHONPATH=src python benchmarks/bench_range.py [--quick]
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys
import time

import pytest

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # direct `python benchmarks/bench_range.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit
from repro.db.schema import AttributeType
from repro.db.sql.executor import AccessPlanner, SQLExecutor
from repro.evaluation.reporting import format_seconds, format_table
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
    Interpretation,
)
from repro.qa.sql_generation import generate_sql
from repro.system import build_system

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_range.json"

QUICK = bool(os.environ.get("BENCH_RANGE_QUICK"))
SCALES = (2000,) if QUICK else (2000, 8000)
ARMS = ("scan", "index", "adaptive")
QUESTIONS_PER_ROUND = 5
ROUNDS = 6 if QUICK else 10
REPEATS = 2
MIN_SPEEDUP_AT_8000 = 3.0
MIN_SPEEDUP_QUICK = 1.0


@pytest.fixture(scope="module", params=SCALES)
def arm_systems(request):
    """One deterministic cars build per arm (identical records/ids),
    so each arm's churn cannot contaminate another's baseline."""
    scale = request.param
    recipe = dict(
        ads_per_domain=scale, sessions_per_domain=300, corpus_documents=200
    )
    return {arm: build_system(["cars"], **recipe) for arm in ARMS}, scale


def _anchor_ids(table) -> list[int]:
    needed = ("make", "color", "price", "mileage", "year")
    return sorted(
        record.record_id
        for record in table.snapshot()
        if all(record.get(column) is not None for column in needed)
    )


def _question_statement(table, record, rng: random.Random):
    """A six-unit AND dominated by range/BETWEEN units, bounds jittered
    per question so no two questions share a leaf (leaf evaluation is
    what's being measured, not memoization)."""
    price = float(record["price"])
    mileage = float(record["mileage"])
    year = float(record["year"])
    spread = rng.uniform(500.0, 3000.0)
    conditions = [
        Condition("make", AttributeType.TYPE_I, ConditionOp.EQ,
                  str(record["make"])),
        Condition("color", AttributeType.TYPE_II, ConditionOp.EQ,
                  str(record["color"])),
        Condition("price", AttributeType.TYPE_III, ConditionOp.BETWEEN,
                  (price - spread, price + spread)),
        Condition("mileage", AttributeType.TYPE_III, ConditionOp.LT,
                  mileage + rng.uniform(1000.0, 20000.0)),
        Condition("mileage", AttributeType.TYPE_III, ConditionOp.GT,
                  mileage * rng.uniform(0.2, 0.8)),
        Condition("year", AttributeType.TYPE_III, ConditionOp.GE,
                  year - rng.uniform(1.0, 4.0)),
    ]
    interpretation = Interpretation(
        tree=ConditionGroup(BooleanOperator.AND, conditions)
    )
    return generate_sql(
        table.name, interpretation, limit=None, subquery_style=False
    )


def _run_workload(system, mode: str, rounds: int, seed: int):
    """Wall-clock + per-question id signatures for one arm.

    The same *seed* drives the same victim and question streams on
    every arm (builds are deterministic, so record ids and column
    values are identical), which is what makes the collected
    signatures comparable bit for bit.
    """
    database = system.cqads.database
    table = database.table("car_ads")
    executor = SQLExecutor(
        database, access_paths=mode, planner=AccessPlanner()
    )
    rng = random.Random(seed)
    anchors = _anchor_ids(table)
    signatures: list[list[int]] = []
    started = time.perf_counter()
    for _ in range(rounds):
        for _ in range(QUESTIONS_PER_ROUND):
            # One point update per question: churn the windows while
            # they are being timed (splice path, not rebuild).
            victim = rng.choice(anchors)
            price = float(table.get(victim)["price"])
            table.update(victim, {"price": price + 1.0})
            record = table.get(rng.choice(anchors))
            statement = _question_statement(table, record, rng)
            result = executor.execute(statement)
            signatures.append(sorted(result.record_ids()))
    return time.perf_counter() - started, signatures


def test_range_window_speedup(arm_systems):
    systems, scale = arm_systems

    # Warm pass (also the first parity gate): every arm must produce
    # bit-identical per-question answers under the same churn stream.
    warm = {
        arm: _run_workload(systems[arm], arm, rounds=1, seed=1000)[1]
        for arm in ARMS
    }
    assert warm["index"] == warm["scan"], "index arm diverged from scan"
    assert warm["adaptive"] == warm["scan"], "adaptive arm diverged from scan"

    seconds: dict[str, float] = {}
    for arm in ARMS:
        best = None
        for run in range(REPEATS):
            elapsed, signatures = _run_workload(
                systems[arm], arm, ROUNDS, seed=run
            )
            best = elapsed if best is None else min(best, elapsed)
            # Parity asserted in every timed arm and repeat: collect
            # against the scan arm's signatures for the same seed.
            if arm == "scan":
                warm[f"scan:{run}"] = signatures
            else:
                assert signatures == warm[f"scan:{run}"], (
                    f"{arm} arm diverged from scan on seed {run}"
                )
        seconds[arm] = best

    questions = ROUNDS * QUESTIONS_PER_ROUND
    speedup_adaptive = seconds["scan"] / seconds["adaptive"]
    speedup_index = seconds["scan"] / seconds["index"]
    rows = [
        ["full scans", format_seconds(seconds["scan"] / questions), "1.00x"],
        [
            "sorted indexes",
            format_seconds(seconds["index"] / questions),
            f"{speedup_index:.2f}x",
        ],
        [
            "windows + adaptive",
            format_seconds(seconds["adaptive"] / questions),
            f"{speedup_adaptive:.2f}x",
        ],
    ]
    emit(
        format_table(
            ["access paths", "per-question latency", "speedup"],
            rows,
            title=(
                f"range-heavy six-unit questions, {scale}-record pool, "
                f"jittered bounds, one point update per question"
                + (" [quick mode]" if QUICK else "")
            ),
        )
    )

    if not QUICK:
        snapshot = {}
        if RESULT_PATH.exists():
            snapshot = json.loads(RESULT_PATH.read_text())
        snapshot.setdefault("benchmark", "range_window_adaptive")
        snapshot.setdefault("rounds", ROUNDS)
        snapshot.setdefault("questions_per_round", QUESTIONS_PER_ROUND)
        snapshot.setdefault("updates_per_question", 1)
        snapshot.setdefault("scales", {})
        snapshot["scales"][str(scale)] = {
            "pool_size": scale,
            "scan_ms_per_question": 1000 * seconds["scan"] / questions,
            "index_ms_per_question": 1000 * seconds["index"] / questions,
            "adaptive_ms_per_question": 1000 * seconds["adaptive"] / questions,
            "speedup_adaptive_vs_scan": speedup_adaptive,
            "speedup_index_vs_scan": speedup_index,
        }
        RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    if QUICK:
        assert speedup_adaptive >= MIN_SPEEDUP_QUICK, (
            f"windows+adaptive must be >= {MIN_SPEEDUP_QUICK}x even in "
            f"quick mode at {scale} ads, measured {speedup_adaptive:.2f}x"
        )
    elif scale == 8000:
        assert speedup_adaptive >= MIN_SPEEDUP_AT_8000, (
            f"windows+adaptive must be >= {MIN_SPEEDUP_AT_8000}x at 8000 "
            f"ads, measured {speedup_adaptive:.2f}x"
        )


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["BENCH_RANGE_QUICK"] = "1"
    sys.exit(pytest.main([__file__, "-s", "-q"]))
