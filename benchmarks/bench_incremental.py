"""Delta-patched cache maintenance vs epoch rebuilds under high churn.

Ads corpora churn constantly — postings, edits and expiries far
outnumber changes to the question mix — and the epoch-keyed cache
stack (PR 3/4) made every point mutation expensive on the *next*
question: a full :class:`~repro.perf.colrank.ColumnStore` rebuild
(re-stringify and re-parse every row) plus a from-scratch
``eval_where`` for every relaxation-unit id-set of the table.  Delta
maintenance (PR 5) patches instead: the typed
:class:`~repro.db.table.UpdateDelta` rewrites only the changed column
slots in the store, and :meth:`FragmentCache.absorb` re-evaluates only
the touched record against each cached unit, re-keying the id-sets to
the new epoch.

The measured stream is the worst churn shape the ROADMAP calls out —
**one point update per question** — on the candidate-pool + ranking
path (``partial_answers``: shared-subplan N-1 pools + columnar
top-30), six-unit questions over the cars domain at 2000- and
8000-record pools.  The two builds differ only in
``cache_maintenance`` ("delta" vs "rebuild") and hold bit-identical
data and answers (asserted before and after timing); the snapshot
lands in ``BENCH_incremental.json``.

Acceptance: >= 2x speedup at the 8000-record pool.

Quick mode (CI smoke): ``BENCH_INCREMENTAL_QUICK=1`` runs the 2000-ad
scale only with fewer rounds and asserts a >= 1.0x locality tripwire —
a broken patch path pays delta bookkeeping *plus* the rebuilds it was
supposed to avoid and measures below 1.0x, while a healthy one
measures well above — leaving the committed JSON snapshot untouched.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py -s
  or: PYTHONPATH=src python benchmarks/bench_incremental.py [--quick]
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys
import time

import pytest

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # direct `python benchmarks/bench_incremental.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import emit
from repro.db.schema import AttributeType
from repro.evaluation.reporting import format_seconds, format_table
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
    Interpretation,
)
from repro.qa.sql_generation import evaluate_interpretation
from repro.system import build_system

RESULT_PATH = pathlib.Path(__file__).parent / "BENCH_incremental.json"

QUICK = bool(os.environ.get("BENCH_INCREMENTAL_QUICK"))
SCALES = (2000,) if QUICK else (2000, 8000)
QUESTION_VARIETY = 10
#: One point update per question — the paper's churn regime, and the
#: workload the ROADMAP's "per-row patches instead of epoch rebuilds"
#: item targets.
QUESTIONS_PER_ROUND = 5
ROUNDS = 8 if QUICK else 15
REPEATS = 2
MIN_SPEEDUP_AT_8000 = 2.0
#: Quick mode is a regression tripwire, not a performance gate: with
#: the patch path broken, delta mode pays its bookkeeping on top of
#: the rebuilds it should have avoided and measures <= 1.0x, while a
#: healthy build measures several-fold higher — so the 1.0 floor
#: separates those states with headroom for noisy shared CI runners.
MIN_SPEEDUP_QUICK = 1.0


@pytest.fixture(scope="module", params=SCALES)
def system_pair(request):
    """The same cars recipe under delta and rebuild maintenance."""
    scale = request.param
    recipe = dict(
        ads_per_domain=scale, sessions_per_domain=300, corpus_documents=200
    )
    return (
        build_system(["cars"], cache_maintenance="delta", **recipe),
        build_system(["cars"], cache_maintenance="rebuild", **recipe),
        scale,
    )


def _question_interpretations(system, count: int) -> list[Interpretation]:
    """Six-unit conjunctions anchored on real records."""
    rng = random.Random(2718)
    dataset = system.domain("cars").dataset
    needed = ("make", "model", "color", "transmission", "price", "mileage", "year")
    complete = [
        record
        for record in dataset.records
        if all(record.get(column) is not None for column in needed)
    ]
    interpretations = []
    for _ in range(count):
        record = rng.choice(complete)
        conditions = [
            Condition("make", AttributeType.TYPE_I, ConditionOp.EQ,
                      str(record["make"])),
            Condition("model", AttributeType.TYPE_I, ConditionOp.EQ,
                      str(record["model"])),
            Condition("color", AttributeType.TYPE_II, ConditionOp.EQ,
                      str(record["color"])),
            Condition("transmission", AttributeType.TYPE_II, ConditionOp.EQ,
                      str(record["transmission"])),
            Condition("price", AttributeType.TYPE_III, ConditionOp.LT,
                      float(record["price"]) + 1000.0),
            Condition("mileage", AttributeType.TYPE_III, ConditionOp.LT,
                      float(record["mileage"]) + 5000.0),
            Condition("year", AttributeType.TYPE_III, ConditionOp.GE,
                      float(record["year"]) - 2.0),
        ]
        interpretations.append(
            Interpretation(tree=ConditionGroup(BooleanOperator.AND, conditions))
        )
    return interpretations


def _answer_signature(answers):
    return [
        (item.record.record_id, item.score, item.similarity_kind)
        for item in answers
    ]


def _assert_parity(delta, rebuild, interpretations, excludes) -> None:
    for interpretation, exclude in zip(interpretations, excludes):
        reference = None
        for system in (delta, rebuild):
            answers = system.cqads.partial_answers(
                "cars", interpretation, exclude, top_k=30
            )
            signature = _answer_signature(answers)
            if reference is None:
                reference = signature
            else:
                assert signature == reference, "delta/rebuild divergence"


def _churn_workload(
    system, interpretations, excludes, rounds: int, seed: int
) -> float:
    """Wall-clock of the candidate-pool + ranking stream with one point
    update per question.  The same *seed* drives the same victim
    sequence on every system (record ids are identical across builds),
    so the measured work — and the produced answers — stay
    bit-comparable."""
    cqads = system.cqads
    table = cqads.database.table("car_ads")
    rng = random.Random(seed)
    ids = sorted(table.all_ids())
    started = time.perf_counter()
    for round_index in range(rounds):
        for i in range(QUESTIONS_PER_ROUND):
            victim = rng.choice(ids)
            price = float(table.get(victim)["price"])
            table.update(victim, {"price": price + 1.0})
            k = (round_index * QUESTIONS_PER_ROUND + i) % len(interpretations)
            cqads.partial_answers(
                "cars", interpretations[k], excludes[k], top_k=30
            )
    return time.perf_counter() - started


def test_delta_maintenance_speedup_under_churn(system_pair):
    delta, rebuild, scale = system_pair
    assert delta.cqads.cache_maintenance == "delta"
    assert rebuild.cqads.cache_maintenance == "rebuild"
    interpretations = _question_interpretations(delta, QUESTION_VARIETY)
    excludes = [
        {
            record.record_id
            for record in evaluate_interpretation(
                delta.cqads.database, delta.cqads.domain("cars"), interpretation
            )
        }
        for interpretation in interpretations
    ]

    # Parity before timing (also warms stores, fragments and memos).
    _assert_parity(delta, rebuild, interpretations, excludes)

    rebuild_seconds = min(
        _churn_workload(rebuild, interpretations, excludes, ROUNDS, seed=run)
        for run in range(REPEATS)
    )
    delta_seconds = min(
        _churn_workload(delta, interpretations, excludes, ROUNDS, seed=run)
        for run in range(REPEATS)
    )
    speedup = rebuild_seconds / delta_seconds

    # Both builds saw the same mutation stream: still bit-identical.
    _assert_parity(delta, rebuild, interpretations, excludes)

    # The timed quantity is min-over-repeats of ONE workload pass, so
    # per-question latency divides by one pass's question count.
    questions = ROUNDS * QUESTIONS_PER_ROUND
    rows = [
        [
            "epoch rebuilds",
            format_seconds(rebuild_seconds / questions),
            "1.00x",
        ],
        [
            "delta patching",
            format_seconds(delta_seconds / questions),
            f"{speedup:.2f}x",
        ],
    ]
    emit(
        format_table(
            ["maintenance", "per-question latency", "speedup"],
            rows,
            title=(
                f"candidate pool + top-30 ranking, {scale}-record pool, "
                f"one point update per question"
                + (" [quick mode]" if QUICK else "")
            ),
        )
    )

    if not QUICK:
        snapshot = {}
        if RESULT_PATH.exists():
            snapshot = json.loads(RESULT_PATH.read_text())
        snapshot.setdefault("benchmark", "incremental_cache_maintenance")
        snapshot.setdefault("rounds", ROUNDS)
        snapshot.setdefault("questions_per_round", QUESTIONS_PER_ROUND)
        snapshot.setdefault("updates_per_question", 1)
        snapshot.setdefault("scales", {})
        snapshot["scales"][str(scale)] = {
            "pool_size": scale,
            "rebuild_ms_per_question": 1000 * rebuild_seconds / questions,
            "delta_ms_per_question": 1000 * delta_seconds / questions,
            "speedup": speedup,
        }
        RESULT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    if QUICK:
        assert speedup >= MIN_SPEEDUP_QUICK, (
            f"delta maintenance must be >= {MIN_SPEEDUP_QUICK}x even in "
            f"quick mode at {scale} ads, measured {speedup:.2f}x"
        )
    elif scale == 8000:
        assert speedup >= MIN_SPEEDUP_AT_8000, (
            f"delta maintenance must be >= {MIN_SPEEDUP_AT_8000}x at 8000 "
            f"ads, measured {speedup:.2f}x"
        )


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["BENCH_INCREMENTAL_QUICK"] = "1"
    sys.exit(pytest.main([__file__, "-s", "-q"]))
