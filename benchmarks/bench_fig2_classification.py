"""Figure 2: question-classification accuracy per ads domain.

Paper: average accuracy in the upper nineties; Cars-for-Sale and
Motorcycles-for-Sale lowest (upper eighties) "due to the existence of
common keywords between the two domains".

This bench reports per-domain accuracy for the JBBSM classifier (the
paper's), a plain multinomial Naive Bayes ablation, and times a single
classification call.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.evaluation.experiments import classification_experiment
from repro.evaluation.reporting import format_percent, format_table

PAPER_AVERAGE = 0.96  # "in the (upper) ninety percentile"
PAPER_LOWEST = {"cars", "motorcycles"}


@pytest.fixture(scope="module")
def figure2(full_system):
    return classification_experiment(full_system, questions_per_domain=81)


@pytest.fixture(scope="module")
def figure2_multinomial(full_system):
    """Ablation: the same experiment with plain multinomial NB."""
    multinomial = MultinomialNaiveBayes()
    for name, built in full_system.domains.items():
        for text in built.dataset.ad_texts():
            multinomial.add_document(name, text)
    multinomial.train()
    original = full_system.cqads.classifier
    original_trained = full_system.cqads._classifier_trained  # noqa: SLF001
    full_system.cqads.classifier = multinomial
    full_system.cqads._classifier_trained = True  # noqa: SLF001
    try:
        return classification_experiment(full_system, questions_per_domain=81)
    finally:
        full_system.cqads.classifier = original
        full_system.cqads._classifier_trained = original_trained  # noqa: SLF001


def test_fig2_classification_accuracy(benchmark, full_system, figure2, figure2_multinomial):
    rows = [
        [
            domain,
            format_percent(figure2.per_domain[domain]),
            format_percent(figure2_multinomial.per_domain[domain]),
        ]
        for domain in sorted(figure2.per_domain)
    ]
    rows.append(
        [
            "AVERAGE",
            format_percent(figure2.average),
            format_percent(figure2_multinomial.average),
        ]
    )
    emit(
        format_table(
            ["domain", "JBBSM (paper)", "multinomial (ablation)"],
            rows,
            title=(
                "Figure 2 — classification accuracy "
                f"(paper: avg upper-90s, cars/motorcycles lowest)"
            ),
        )
    )
    # shape assertions: average in the paper's band, the confusable
    # pair among the weakest domains
    assert figure2.average >= 0.85
    two_lowest = sorted(figure2.per_domain, key=figure2.per_domain.get)[:3]
    assert PAPER_LOWEST & set(two_lowest)
    # timing: a single question classification
    benchmark(
        full_system.cqads.classify_question,
        "blue honda accord under 15000 dollars",
    )
