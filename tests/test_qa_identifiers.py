"""Tests for the Table 1 identifier rules."""

from __future__ import annotations

import pytest

from repro.qa.conditions import ConditionOp
from repro.qa.identifiers import (
    IDENTIFIER_ENTRIES,
    KeywordClass,
    classify_keyword,
    is_negation_word,
    multiword_identifier_phrases,
)


class TestComparisonWords:
    @pytest.mark.parametrize(
        "word", ["below", "fewer", "less", "lower", "smaller", "under", "<"]
    )
    def test_less_than_family(self, word):
        entry = classify_keyword(word)
        assert entry is not None
        assert entry.keyword_class is KeywordClass.COMPARISON
        assert entry.op is ConditionOp.LT

    @pytest.mark.parametrize("word", ["above", "greater", "higher", "more", "over", ">"])
    def test_greater_than_family(self, word):
        entry = classify_keyword(word)
        assert entry.op is ConditionOp.GT

    @pytest.mark.parametrize("word", ["equal", "equals", "exactly", "="])
    def test_equality_family(self, word):
        assert classify_keyword(word).op is ConditionOp.EQ

    @pytest.mark.parametrize("word", ["between", "range", "within"])
    def test_between_family(self, word):
        assert classify_keyword(word).keyword_class is KeywordClass.BETWEEN


class TestCompleteBoundaries:
    def test_cheaper_carries_price_role(self):
        entry = classify_keyword("cheaper")
        assert entry.keyword_class is KeywordClass.COMPLETE_BOUNDARY
        assert entry.role == "price"
        assert entry.op is ConditionOp.LT

    def test_newer_older_carry_year_role(self):
        assert classify_keyword("newer").role == "year"
        assert classify_keyword("newer").op is ConditionOp.GT
        assert classify_keyword("older").op is ConditionOp.LT

    def test_more_expensive_multiword(self):
        entry = classify_keyword("more expensive")
        assert entry.op is ConditionOp.GT
        assert entry.role == "price"


class TestSuperlatives:
    def test_complete_superlatives(self):
        cheapest = classify_keyword("cheapest")
        assert cheapest.keyword_class is KeywordClass.SUPERLATIVE_COMPLETE
        assert cheapest.role == "price"
        assert cheapest.maximum is False
        newest = classify_keyword("newest")
        assert newest.role == "year"
        assert newest.maximum is True
        assert classify_keyword("oldest").maximum is False
        assert classify_keyword("latest").maximum is True

    @pytest.mark.parametrize("word", ["lowest", "least", "min", "fewest", "smallest"])
    def test_partial_min(self, word):
        entry = classify_keyword(word)
        assert entry.keyword_class is KeywordClass.SUPERLATIVE_PARTIAL
        assert entry.maximum is False

    @pytest.mark.parametrize("word", ["highest", "max", "greatest", "most"])
    def test_partial_max(self, word):
        entry = classify_keyword(word)
        assert entry.keyword_class is KeywordClass.SUPERLATIVE_PARTIAL
        assert entry.maximum is True


class TestNegations:
    @pytest.mark.parametrize(
        "word",
        ["not", "no", "without", "except", "excluding", "remove", "nothing"],
    )
    def test_paper_footnote_1_list(self, word):
        assert is_negation_word(word)

    def test_stemmed_variants(self):
        # "(or their stemmed versions)" — Section 4.4.1 footnote 1
        assert is_negation_word("excluded")
        assert is_negation_word("removes")
        assert is_negation_word("removing")

    def test_non_negations(self):
        assert not is_negation_word("blue")
        assert not is_negation_word("under")


class TestBooleanOperators:
    def test_and_or(self):
        assert classify_keyword("and").keyword_class is KeywordClass.BOOLEAN_AND
        assert classify_keyword("or").keyword_class is KeywordClass.BOOLEAN_OR


class TestTableShape:
    def test_unknown_word_returns_none(self):
        assert classify_keyword("honda") is None
        assert classify_keyword("blue") is None

    def test_multiword_phrases_listed_longest_first(self):
        phrases = multiword_identifier_phrases()
        assert "less expensive" in phrases
        lengths = [len(p) for p in phrases]
        assert lengths == sorted(lengths, reverse=True)

    def test_entries_have_required_payloads(self):
        for entry in IDENTIFIER_ENTRIES:
            if entry.keyword_class is KeywordClass.COMPARISON:
                assert entry.op is not None
            if entry.keyword_class is KeywordClass.COMPLETE_BOUNDARY:
                assert entry.op is not None and entry.role is not None
            if entry.keyword_class is KeywordClass.SUPERLATIVE_COMPLETE:
                assert entry.role is not None and entry.maximum is not None
            if entry.keyword_class is KeywordClass.SUPERLATIVE_PARTIAL:
                assert entry.maximum is not None
