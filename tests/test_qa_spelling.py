"""Tests for trie-based spelling correction (Section 4.2.1)."""

from __future__ import annotations

import pytest

from repro.qa.domain import AdsDomain
from repro.qa.spelling import SpellingCorrector


@pytest.fixture()
def corrector(car_table):
    return SpellingCorrector(AdsDomain.from_table("cars", car_table))


class TestMissingSpaces:
    def test_paper_example_hondaaccord(self, corrector):
        tokens, corrections = corrector.correct_tokens(["hondaaccord"])
        assert tokens == ["honda", "accord"]
        assert corrections[0].kind == "split"
        assert corrections[0].confidence == 100.0

    def test_three_way_split(self, corrector):
        tokens, _ = corrector.correct_tokens(["bluehondaaccord"])
        assert tokens == ["blue", "honda", "accord"]

    def test_no_false_split_of_known_word(self, corrector):
        tokens, corrections = corrector.correct_tokens(["corolla"])
        assert tokens == ["corolla"]
        assert corrections == []


class TestMisspellings:
    def test_paper_example_accorr(self, corrector):
        tokens, corrections = corrector.correct_tokens(["accorr"])
        assert tokens == ["accord"]
        assert corrections[0].kind == "respell"
        assert corrections[0].confidence > 65.0

    def test_dropped_letter(self, corrector):
        tokens, _ = corrector.correct_tokens(["acord"])
        assert tokens == ["accord"]

    def test_doubled_letter(self, corrector):
        tokens, _ = corrector.correct_tokens(["hondda"])
        assert tokens == ["honda"]

    def test_identifier_words_correctable(self, corrector):
        tokens, _ = corrector.correct_tokens(["lesss"])
        assert tokens == ["less"]

    def test_hopeless_garbage_untouched(self, corrector):
        tokens, corrections = corrector.correct_tokens(["zzzzqqqq"])
        assert tokens == ["zzzzqqqq"]
        assert corrections == []


class TestProtectedTokens:
    def test_numbers_never_corrected(self, corrector):
        for token in ("2000", "$5000", "20k", "1,500"):
            tokens, corrections = corrector.correct_tokens([token])
            assert tokens == [token]
            assert corrections == []

    def test_stopwords_never_corrected(self, corrector):
        tokens, corrections = corrector.correct_tokens(["with", "the"])
        assert tokens == ["with", "the"]
        assert corrections == []

    def test_generic_words_protected(self, corrector):
        # "cars" must not become "camry"
        tokens, corrections = corrector.correct_tokens(["cars", "car"])
        assert tokens == ["cars", "car"]
        assert corrections == []

    def test_short_unknown_words_untouched(self, corrector):
        tokens, corrections = corrector.correct_tokens(["xyz"])
        assert tokens == ["xyz"]
        assert corrections == []

    def test_known_words_untouched(self, corrector):
        tokens, corrections = corrector.correct_tokens(
            ["honda", "blue", "automatic"]
        )
        assert tokens == ["honda", "blue", "automatic"]
        assert corrections == []


class TestFullStream:
    def test_paper_question(self, corrector):
        tokens, corrections = corrector.correct_tokens(
            ["honda", "accorr", "less", "than", "$2000"]
        )
        assert tokens == ["honda", "accord", "less", "than", "$2000"]
        assert len(corrections) == 1

    def test_multiple_corrections(self, corrector):
        tokens, corrections = corrector.correct_tokens(
            ["hondaaccord", "bluu"]
        )
        assert tokens == ["honda", "accord", "blue"]
        assert {c.kind for c in corrections} == {"split", "respell"}
