"""Tests for the service layer: requests, stages, batching, paging."""

from __future__ import annotations

import pytest

from repro.api import (
    AnswerOptions,
    AnswerRequest,
    AnswerService,
    QueryPipeline,
    page_result,
)
from repro.datagen.questions import make_generator
from repro.datagen.vocab import DOMAIN_NAMES
from repro.errors import ClassificationError, ServiceClosedError
from repro.qa.pipeline import MAX_ANSWERS
from repro.system import build_system

TABLE2_QUESTION = "Find Honda Accord blue less than 15000 dollars"
STAGE_NAMES = ["classify", "tag", "interpret", "execute", "relax"]


@pytest.fixture(scope="module")
def service(cars_system):
    return AnswerService(cars_system.cqads)


@pytest.fixture(scope="module")
def eight_domain_system():
    """All eight domains at unit-test scale (fixed seed)."""
    return build_system(
        ads_per_domain=50,
        sessions_per_domain=40,
        corpus_documents=120,
    )


def _signature(result):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind)
        for a in result.answers
    ]


class TestRequestOptions:
    def test_default_request_matches_legacy(self, cars_system, service):
        legacy = cars_system.cqads.answer(TABLE2_QUESTION, domain="cars")
        result = service.answer(
            AnswerRequest(question=TABLE2_QUESTION, domain="cars")
        )
        assert _signature(result) == _signature(legacy)
        assert result.sql == legacy.sql
        assert result.domain == legacy.domain

    def test_max_answers_override_beats_engine_default(
        self, cars_system, service
    ):
        default = service.answer(
            AnswerRequest(question=TABLE2_QUESTION, domain="cars")
        )
        assert len(default.answers) > 5
        capped = service.answer(
            AnswerRequest(
                question=TABLE2_QUESTION,
                domain="cars",
                options=AnswerOptions(max_answers=5),
            )
        )
        assert len(capped.answers) == 5
        # The override is a prefix of the default ranking, and the
        # engine default is untouched for the next request.
        assert _signature(capped) == _signature(default)[:5]
        assert cars_system.cqads.max_answers == MAX_ANSWERS
        again = service.answer(
            AnswerRequest(question=TABLE2_QUESTION, domain="cars")
        )
        assert len(again.answers) == len(default.answers)

    def test_relax_partial_override(self, service):
        result = service.answer(
            AnswerRequest(
                question=TABLE2_QUESTION,
                domain="cars",
                options=AnswerOptions(relax_partial=False),
            )
        )
        assert result.partial_answers == []
        assert service.cqads.relax_partial is True

    def test_correct_spelling_override(self, service):
        request = AnswerRequest(
            question="honda accorr", domain="cars",
            options=AnswerOptions(correct_spelling=False),
        )
        assert service.answer(request).corrections == []
        corrected = service.answer(
            AnswerRequest(question="honda accorr", domain="cars")
        )
        assert corrected.corrections

    def test_ask_keyword_convenience(self, service):
        result = service.ask(
            TABLE2_QUESTION, domain="cars", max_answers=3, explain=True
        )
        assert len(result.answers) == 3
        assert result.trace is not None

    def test_unknown_domain_raises(self, service):
        with pytest.raises(ClassificationError):
            service.answer(AnswerRequest(question="honda", domain="boats"))

    def test_max_answers_override_keeps_explicit_engine_pool(
        self, car_database
    ):
        from repro.api.requests import ResolvedOptions
        from repro.qa.pipeline import CQAds

        explicit = CQAds(car_database, partial_pool_per_query=500)
        resolved = ResolvedOptions.resolve(
            AnswerOptions(max_answers=5), explicit
        )
        assert resolved.partial_pool_per_query == 500
        derived = CQAds(car_database)
        resolved = ResolvedOptions.resolve(
            AnswerOptions(max_answers=5), derived
        )
        assert resolved.partial_pool_per_query == 15

    def test_non_positive_overrides_rejected(self, service):
        with pytest.raises(ValueError):
            service.ask("honda", domain="cars", max_answers=0)
        with pytest.raises(ValueError):
            service.ask("honda", domain="cars", partial_pool_per_query=0)


class TestParityAcrossDomains:
    def test_service_matches_legacy_on_all_eight_domains(
        self, eight_domain_system
    ):
        service = eight_domain_system.service()
        for name in DOMAIN_NAMES:
            generator = make_generator(
                eight_domain_system.domain(name).dataset, seed=97
            )
            for _ in range(3):
                question = generator.generate().text
                legacy = eight_domain_system.cqads.answer(
                    question, domain=name
                )
                result = service.answer(
                    AnswerRequest(question=question, domain=name)
                )
                assert _signature(result) == _signature(legacy)
                assert result.sql == legacy.sql
                assert result.message == legacy.message


class TestBatch:
    QUESTIONS = [
        TABLE2_QUESTION,
        "honda",
        "cheapest blue honda accord",
        "honda accord not blue",
        TABLE2_QUESTION,  # duplicate on purpose
        "toyota camry automatic",
    ]

    def test_results_in_input_order_matching_serial(self, service):
        requests = [
            AnswerRequest(question=q, domain="cars") for q in self.QUESTIONS
        ]
        serial = [service.answer(r) for r in requests]
        batched = service.answer_batch(requests, workers=4)
        assert len(batched) == len(requests)
        for serial_result, batch_result in zip(serial, batched):
            assert batch_result.question == serial_result.question
            assert _signature(batch_result) == _signature(serial_result)

    def test_duplicate_requests_share_one_result(self, service):
        requests = [
            AnswerRequest(question=q, domain="cars") for q in self.QUESTIONS
        ]
        batched = service.answer_batch(requests, workers=4)
        assert batched[0] is batched[4]

    def test_accepts_bare_strings(self, service):
        results = service.answer_batch(["honda", "toyota camry"], workers=2)
        assert [r.question for r in results] == ["honda", "toyota camry"]

    def test_single_worker_path(self, service):
        requests = [
            AnswerRequest(question=q, domain="cars")
            for q in self.QUESTIONS[:3]
        ]
        serial = [service.answer(r) for r in requests]
        batched = service.answer_batch(requests, workers=1)
        for serial_result, batch_result in zip(serial, batched):
            assert _signature(batch_result) == _signature(serial_result)


class TestPagination:
    @pytest.fixture(scope="class")
    def broad_result(self, service):
        # A broad single-criterion question: the partial pool is the
        # whole table, so the full ranking far exceeds the 30-cap.
        result = service.answer(AnswerRequest(question="honda", domain="cars"))
        assert len(result.ranked_pool) > MAX_ANSWERS
        return result

    def test_capped_answers_prefix_of_pool(self, broad_result):
        assert broad_result.answers == broad_result.ranked_pool[:MAX_ANSWERS]

    def test_pages_are_stable_and_non_overlapping(self, service, broad_result):
        seen: list[int] = []
        offset = 0
        while True:
            window = service.page(broad_result, offset=offset, limit=10)
            assert window.total == len(broad_result.ranked_pool)
            seen.extend(a.record.record_id for a in window)
            if window.next_offset is None:
                break
            offset = window.next_offset
        assert len(seen) == len(set(seen))  # non-overlapping
        assert seen == [
            a.record.record_id for a in broad_result.ranked_pool
        ]
        # Stability: the same window twice is identical.
        first = service.page(broad_result, offset=10, limit=10)
        second = service.page(broad_result, offset=10, limit=10)
        assert first == second

    def test_walks_past_the_thirty_answer_cap(self, service, broad_result):
        beyond = service.page(broad_result, offset=MAX_ANSWERS, limit=10)
        assert len(beyond) > 0
        capped_ids = {a.record.record_id for a in broad_result.answers}
        assert all(a.record.record_id not in capped_ids for a in beyond)

    def test_page_all_covers_everything(self, service, broad_result):
        pages = service.page_all(broad_result, page_size=7)
        assert sum(len(p) for p in pages) == len(broad_result.ranked_pool)

    def test_validation(self, broad_result):
        with pytest.raises(ValueError):
            page_result(broad_result, offset=-1)
        with pytest.raises(ValueError):
            page_result(broad_result, limit=-1)
        # limit=0 would make next_offset == offset: an endless cursor.
        with pytest.raises(ValueError):
            page_result(broad_result, limit=0)

    def test_offset_beyond_end_is_empty(self, service, broad_result):
        window = service.page(broad_result, offset=10_000, limit=10)
        assert len(window) == 0
        assert not window.has_more
        assert window.next_offset is None


class TestBoundedRequestPaging:
    """``page``/``page_all`` on a *request* propagate ``top_k`` so deep
    pages pay a bounded-heap selection instead of a full re-sort."""

    # Few exacts, deep partial pool: the paging actually walks ranked
    # partial candidates past the 30-cap.
    REQUEST = AnswerRequest(question="blue car less than 8000 dollars", domain="cars")

    @pytest.fixture(scope="class")
    def full_ranking(self, service):
        result = service.answer(self.REQUEST)
        assert len(result.ranked_pool) > MAX_ANSWERS + 20
        assert len([a for a in result.ranked_pool if not a.exact]) > MAX_ANSWERS
        return result.ranked_pool

    def test_deep_page_equals_full_ranking_window(self, service, full_ranking):
        for offset, limit in ((0, 10), (MAX_ANSWERS, 10), (45, 7)):
            window = service.page(self.REQUEST, offset=offset, limit=limit)
            assert _signature_answers(window.answers) == _signature_answers(
                full_ranking[offset : offset + limit]
            )

    def test_bounded_page_ranked_with_bounded_pool(self, service):
        # The served result's pool stops at the derived bound — the
        # bounded-heap path really ran (plus the has_more sentinel).
        window = service.page(self.REQUEST, offset=40, limit=10)
        exacts = len(
            service.answer(self.REQUEST.with_options(relax_partial=False)).answers
        )
        assert window.total <= exacts + 40 + 10 + 1

    def test_cursor_stays_exact_at_the_bound(self, service, full_ranking):
        offset = 20
        window = service.page(self.REQUEST, offset=offset, limit=10)
        assert window.has_more == (len(full_ranking) > offset + 10)
        assert window.next_offset == offset + 10

    def test_request_top_k_is_honoured_as_given(self, service, full_ranking):
        bounded = self.REQUEST.with_options(top_k=5)
        window = service.page(bounded, offset=0, limit=30)
        exacts = len([a for a in full_ranking if a.exact])
        assert window.total == exacts + 5

    def test_bare_string_source(self, service, full_ranking):
        window = service.page(self.REQUEST.question, offset=0, limit=10)
        # Classified route: same question, same first page.
        assert _signature_answers(window.answers) == _signature_answers(
            full_ranking[:10]
        )

    def test_page_all_with_max_depth(self, service, full_ranking):
        exacts = len([a for a in full_ranking if a.exact])
        pages = service.page_all(self.REQUEST, page_size=10, max_depth=25)
        flattened = [answer for page in pages for answer in page]
        assert _signature_answers(flattened) == _signature_answers(
            full_ranking[: exacts + 25]
        )

    def test_page_all_without_depth_is_complete(self, service, full_ranking):
        pages = service.page_all(self.REQUEST, page_size=17)
        assert sum(len(page) for page in pages) == len(full_ranking)

    def test_page_all_max_depth_caps_computed_results_too(
        self, service, full_ranking
    ):
        result = service.answer(self.REQUEST)
        exacts = len([a for a in full_ranking if a.exact])
        pages = service.page_all(result, page_size=10, max_depth=25)
        flattened = [answer for page in pages for answer in page]
        assert _signature_answers(flattened) == _signature_answers(
            full_ranking[: exacts + 25]
        )
        assert len(result.ranked_pool) == len(full_ranking)  # source untouched
        with pytest.raises(ValueError):
            service.page_all(result, max_depth=0)

    def test_request_path_validation(self, service):
        with pytest.raises(ValueError):
            service.page(self.REQUEST, offset=-1)
        with pytest.raises(ValueError):
            service.page(self.REQUEST, limit=0)


def _signature_answers(answers):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind)
        for a in answers
    ]


class TestExplainAndTimings:
    def test_trace_lists_all_executed_stages(self, service):
        result = service.answer(
            AnswerRequest(
                question=TABLE2_QUESTION,
                domain="cars",
                options=AnswerOptions(explain=True),
            )
        )
        assert result.trace is not None
        assert [entry.stage for entry in result.trace] == STAGE_NAMES
        assert all(not entry.skipped for entry in result.trace)
        assert set(result.timings) == set(STAGE_NAMES)

    def test_contradiction_marks_downstream_stages_skipped(self, service):
        result = service.answer(
            AnswerRequest(
                question="honda cheaper than 2000 and more expensive than 7000",
                domain="cars",
                options=AnswerOptions(explain=True),
            )
        )
        assert result.message is not None and "no results" in result.message
        by_stage = {entry.stage: entry for entry in result.trace}
        assert not by_stage["interpret"].skipped
        assert by_stage["execute"].skipped
        assert by_stage["relax"].skipped
        # Skipped stages never appear in the timings.
        assert set(result.timings) == {"classify", "tag", "interpret"}

    def test_no_explain_means_no_trace_but_timings(self, service):
        result = service.answer(
            AnswerRequest(question="honda", domain="cars")
        )
        assert result.trace is None
        assert set(result.timings) == set(STAGE_NAMES)
        assert all(seconds >= 0 for seconds in result.timings.values())

    def test_elapsed_seconds_is_derived_from_timings(self, service):
        result = service.answer(
            AnswerRequest(question="honda", domain="cars")
        )
        assert result.elapsed_seconds == pytest.approx(
            sum(result.timings.values())
        )
        assert result.elapsed_seconds > 0


class TestPluggableStages:
    class AuditStage:
        name = "audit"

        def __init__(self) -> None:
            self.seen: list[str] = []

        def run(self, ctx) -> str:
            self.seen.append(ctx.request.question)
            return f"audited {ctx.domain}"

    def test_custom_stage_inserted_after_tag(self, cars_system):
        audit = self.AuditStage()
        pipeline = QueryPipeline().inserting_after("tag", audit)
        service = AnswerService(cars_system.cqads, pipeline=pipeline)
        result = service.ask("honda", domain="cars", explain=True)
        assert audit.seen == ["honda"]
        assert [entry.stage for entry in result.trace] == [
            "classify", "tag", "audit", "interpret", "execute", "relax",
        ]
        assert "audit" in result.timings

    def test_custom_stage_does_not_change_answers(self, cars_system, service):
        pipeline = QueryPipeline().inserting_after("tag", self.AuditStage())
        custom = AnswerService(cars_system.cqads, pipeline=pipeline)
        baseline = service.answer(
            AnswerRequest(question=TABLE2_QUESTION, domain="cars")
        )
        augmented = custom.answer(
            AnswerRequest(question=TABLE2_QUESTION, domain="cars")
        )
        assert _signature(augmented) == _signature(baseline)

    def test_replacing_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            QueryPipeline().replacing("nonexistent", self.AuditStage())
        # Even when the replacement instance is already in the pipeline.
        pipeline = QueryPipeline()
        with pytest.raises(KeyError):
            pipeline.replacing("nonexistent", pipeline.stages[0])

    def test_replacing_swaps_the_named_stage(self, cars_system):
        audit = self.AuditStage()
        audit.name = "relax"  # stand-in that skips relaxation entirely
        pipeline = QueryPipeline().replacing("relax", audit)
        service = AnswerService(cars_system.cqads, pipeline=pipeline)
        result = service.answer(
            AnswerRequest(question=TABLE2_QUESTION, domain="cars")
        )
        assert audit.seen == [TABLE2_QUESTION]
        assert result.partial_answers == []

    def test_inserting_after_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            QueryPipeline().inserting_after("nonexistent", self.AuditStage())

    def test_default_stage_names(self):
        assert QueryPipeline().stage_names() == STAGE_NAMES


class TestServiceLifecycle:
    """The persistent batch pool and the close()/context protocol."""

    def test_batch_pool_is_created_lazily_and_reused(self, cars_system):
        service = AnswerService(cars_system.cqads, max_workers=2)
        try:
            assert service._executor is None  # nothing until a batch runs
            requests = [
                AnswerRequest(question=q, domain="cars")
                for q in (TABLE2_QUESTION, "honda", "toyota camry")
            ]
            service.answer_batch(requests)
            pool = service._executor
            assert pool is not None
            service.answer_batch(requests)
            assert service._executor is pool  # reused across batches
        finally:
            service.close()

    def test_workers_request_can_grow_the_pool(self, cars_system):
        service = AnswerService(cars_system.cqads, max_workers=2)
        try:
            requests = [
                AnswerRequest(question=q, domain="cars")
                for q in (TABLE2_QUESTION, "honda", "toyota camry")
            ]
            service.answer_batch(requests, workers=2)
            assert service._executor_size == 2
            first_pool = service._executor
            service.answer_batch(requests, workers=6)
            assert service._executor_size == 6
            # The outgrown pool is retired, NOT shut down: a batch that
            # grabbed it concurrently must still be able to submit.
            assert service._retired_executors == [first_pool]
            assert first_pool.submit(lambda: 41 + 1).result() == 42
            service.answer_batch(requests, workers=3)  # never shrinks
            assert service._executor_size == 6
        finally:
            service.close()
        with pytest.raises(RuntimeError):
            first_pool.submit(lambda: None)  # close() reaps retirees

    def test_close_is_idempotent_and_refuses_new_work(self, cars_system):
        service = AnswerService(cars_system.cqads, max_workers=2)
        result = service.answer(
            AnswerRequest(question=TABLE2_QUESTION, domain="cars")
        )
        service.answer_batch([TABLE2_QUESTION, "honda"])
        service.close()
        service.close()
        assert service._executor is None
        # A closed service refuses every entry point with the typed
        # error — which still satisfies the legacy RuntimeError
        # contract for callers written against the old message.
        with pytest.raises(ServiceClosedError):
            service.answer(
                AnswerRequest(question=TABLE2_QUESTION, domain="cars")
            )
        with pytest.raises(ServiceClosedError):
            service.answer_batch([TABLE2_QUESTION], workers=1)
        with pytest.raises(ServiceClosedError):
            service.answer_batch([TABLE2_QUESTION, "honda"], workers=4)
        with pytest.raises(ServiceClosedError):
            service.page(TABLE2_QUESTION, offset=0, limit=5)
        with pytest.raises(ServiceClosedError):
            # Even paging an already-computed result is refused.
            service.page(result, offset=0, limit=5)
        assert issubclass(ServiceClosedError, RuntimeError)
        with pytest.raises(RuntimeError):
            service.answer(TABLE2_QUESTION)

    def test_context_manager_closes_and_unsubscribes(self, cars_system):
        database = cars_system.cqads.database
        with AnswerService(
            cars_system.cqads, cache=8, max_workers=2
        ) as service:
            assert service._subscribed
            service.answer_batch([TABLE2_QUESTION, "honda"])
        assert service._executor is None
        assert not service._subscribed

    def test_rejects_nonpositive_workers(self, cars_system):
        with pytest.raises(ValueError):
            AnswerService(cars_system.cqads, max_workers=0)
