"""Ordered window indexes + selectivity-adaptive planning.

Three batteries:

* **mutation-storm parity** — a seeded storm of inserts, updates,
  deletes and bulk batches (duplicate values, NULL columns, empty
  windows included) over a plain table and sharded facades
  (shards ∈ {1, 2, 4}); after every round, a range-heavy query battery
  must agree between the ``scan`` oracle executor and the ``window``
  and ``adaptive`` access paths, and the delta-maintained per-column
  null index must agree with a fresh scan;
* **planner decisions** — observed selectivity flips a leaf from the
  lazy window to its complement representation, with identical
  results, and every choice lands on the executor's ``plan_trace``;
* **delta maintenance** — an instrumented rebuild counter proves a
  point update splices the window in place (no rebuild), while an
  epoch gap (detached listener) or a pending-queue overflow triggers
  exactly one rebuild.
"""

from __future__ import annotations

import random

import pytest

from tests.conftest import SMALL_CAR_ROWS, small_car_schema
from repro.db.database import Database
from repro.db.sql.executor import (
    AccessPlanner,
    SQLExecutor,
)
from repro.perf.window import MAX_PENDING_DELTAS, windows_for

MODES = ("scan", "window", "adaptive")

MAKES = ("honda", "toyota", "ford", "bmw", "chevy", "kia")
MODELS = ("accord", "civic", "camry", "corolla", "focus", "malibu", "rio")
COLORS = ("blue", "red", "white", "black", "silver", None)
TRANSMISSIONS = ("automatic", "manual", None)

#: Range-heavy battery: numeric ranges (incl. an empty window and a
#: nearly-universal one), BETWEEN, record_id ranges/BETWEEN, string-lex
#: comparisons, != with NULLs in play, NULL tests, and combinations.
BATTERY = (
    "SELECT * FROM car_ads WHERE price < 8000",
    "SELECT * FROM car_ads WHERE price <= 8500",
    "SELECT * FROM car_ads WHERE price > 900000",
    "SELECT * FROM car_ads WHERE price >= 500",
    "SELECT * FROM car_ads WHERE mileage > 120000",
    "SELECT * FROM car_ads WHERE price BETWEEN 4000 AND 9000",
    "SELECT * FROM car_ads WHERE year BETWEEN 2000 AND 2006",
    "SELECT * FROM car_ads WHERE record_id BETWEEN 3 AND 17",
    "SELECT * FROM car_ads WHERE record_id > 5",
    "SELECT * FROM car_ads WHERE record_id <= 10",
    "SELECT * FROM car_ads WHERE year != 2004",
    "SELECT * FROM car_ads WHERE color != 'blue'",
    "SELECT * FROM car_ads WHERE color > 'blue'",
    "SELECT * FROM car_ads WHERE color < 'silver'",
    "SELECT * FROM car_ads WHERE color IS NULL",
    "SELECT * FROM car_ads WHERE transmission IS NOT NULL",
    "SELECT * FROM car_ads WHERE make = 'honda' AND price < 9000",
    "SELECT * FROM car_ads WHERE price < 5000 OR mileage > 150000",
    "SELECT * FROM car_ads WHERE NOT (price BETWEEN 4000 AND 9000)",
    "SELECT * FROM car_ads WHERE make = 'honda' AND price BETWEEN 3000 "
    "AND 12000 AND mileage < 150000",
)


def _fresh_database(shards: int | None):
    database = Database()
    table = database.create_table(small_car_schema(), shards=shards)
    table.insert_many(SMALL_CAR_ROWS)
    return database, table


def _executors(database) -> dict[str, SQLExecutor]:
    # Private planners keep selectivity history isolated per test.
    return {
        mode: SQLExecutor(database, access_paths=mode, planner=AccessPlanner())
        for mode in MODES
    }


def _random_row(rng: random.Random) -> dict[str, object]:
    # price quantized to 500s to force duplicate values in the window.
    return {
        "make": rng.choice(MAKES),
        "model": rng.choice(MODELS),
        "color": rng.choice(COLORS),
        "transmission": rng.choice(TRANSMISSIONS),
        "year": rng.choice((None, rng.randint(1990, 2011))),
        "price": rng.choice((None, float(rng.randrange(500, 20000, 500)))),
        "mileage": rng.choice((None, rng.randint(0, 250000))),
    }


def _mutate(table, rng: random.Random, live: list[int]) -> None:
    roll = rng.random()
    if roll < 0.40 or not live:
        live.append(table.insert(_random_row(rng)).record_id)
    elif roll < 0.60:
        victim = rng.choice(live)
        column = rng.choice(("color", "transmission", "year", "price", "mileage"))
        table.update(victim, {column: _random_row(rng)[column]})
    elif roll < 0.75:
        victim = live.pop(rng.randrange(len(live)))
        table.delete(victim)
    elif roll < 0.90:
        for record in table.insert_many(
            [_random_row(rng) for _ in range(3)]
        ):
            live.append(record.record_id)
    else:
        count = min(len(live), 2)
        victims = [live.pop(rng.randrange(len(live))) for _ in range(count)]
        if victims:
            table.remove_many(victims)


def _assert_battery_parity(executors: dict[str, SQLExecutor]) -> None:
    for sql in BATTERY:
        oracle = sorted(executors["scan"].execute_sql(sql).record_ids())
        for mode in ("window", "adaptive"):
            got = sorted(executors[mode].execute_sql(sql).record_ids())
            assert got == oracle, f"{mode} diverged from scan on {sql!r}"


def _assert_null_index_parity(table) -> None:
    for column in ("make", "color", "transmission", "year", "price", "mileage"):
        expected = table.scan(lambda record: record.get(column) is None)
        assert set(table.null_ids(column)) == expected


@pytest.mark.parametrize("shards", [None, 1, 2, 4])
def test_mutation_storm_parity(shards):
    database, table = _fresh_database(shards)
    executors = _executors(database)
    rng = random.Random(2026_08_08 + (shards or 0))
    live = sorted(table.all_ids())
    _assert_battery_parity(executors)
    for _ in range(6):
        for _ in range(12):
            _mutate(table, rng, live)
        _assert_battery_parity(executors)
        _assert_null_index_parity(table)


def test_empty_table_and_empty_window():
    database = Database()
    database.create_table(small_car_schema())
    executors = _executors(database)
    for sql in BATTERY:
        for mode in MODES:
            assert executors[mode].execute_sql(sql).record_ids() == []


def test_record_id_between_bisects_not_scans():
    """Satellite: record_id BETWEEN agrees with the all_ids scan."""
    database, table = _fresh_database(None)
    table.delete(3)  # a hole inside the range
    executors = _executors(database)
    sql = "SELECT * FROM car_ads WHERE record_id BETWEEN 2 AND 6"
    oracle = sorted(executors["scan"].execute_sql(sql).record_ids())
    assert oracle == [2, 4, 5, 6]
    assert sorted(executors["window"].execute_sql(sql).record_ids()) == oracle
    assert sorted(executors["adaptive"].execute_sql(sql).record_ids()) == oracle


# ----------------------------------------------------------------------
# planner decisions
# ----------------------------------------------------------------------
def _bulk_database(rows: int = 400):
    rng = random.Random(99)
    database = Database()
    table = database.create_table(small_car_schema())
    table.insert_many(
        {
            "make": rng.choice(MAKES),
            "model": rng.choice(MODELS),
            "color": rng.choice(COLORS),
            "transmission": rng.choice(TRANSMISSIONS),
            "year": rng.randint(1990, 2011),
            "price": float(rng.randrange(500, 40000, 100)),
            "mileage": rng.randint(0, 250000),
        }
        for _ in range(rows)
    )
    return database, table


def test_selectivity_flip_switches_access_path():
    database, table = _bulk_database()
    planner = AccessPlanner()
    adaptive = SQLExecutor(database, planner=planner)
    oracle = SQLExecutor(database, access_paths="scan")

    narrow = "SELECT * FROM car_ads WHERE price < 600"
    adaptive.execute_sql(narrow)
    first = adaptive.plan_trace[-1]
    assert first.path == "window"
    assert first.shape == "range"
    assert first.table == "car_ads" and first.column == "price"
    assert first.rows == len(table)
    assert first.observed is not None and 0.0 <= first.observed <= 1.0

    # Consistently wide ranges drive the EWMA past the complement
    # threshold; the decision flips and the answers must not move.
    wide = "SELECT * FROM car_ads WHERE price > 0"
    paths = []
    for _ in range(4):
        got = sorted(adaptive.execute_sql(wide).record_ids())
        assert got == sorted(oracle.execute_sql(wide).record_ids())
        paths.append(adaptive.plan_trace[-1].path)
    assert paths[0] == "window"
    assert paths[-1] == "window-complement"


def test_plan_trace_records_index_path_on_tiny_tables():
    database, _ = _fresh_database(None)  # 8 rows < MIN_WINDOW_ROWS
    adaptive = SQLExecutor(database, planner=AccessPlanner())
    adaptive.execute_sql("SELECT * FROM car_ads WHERE price < 8000")
    assert adaptive.plan_trace[-1].path == "index"
    assert "index" in adaptive.plan_summary()


def test_plan_summary_counts_paths():
    database, _ = _bulk_database()
    executor = SQLExecutor(database, planner=AccessPlanner())
    assert executor.plan_summary() == "no planned leaves"
    executor.execute_sql("SELECT * FROM car_ads WHERE price < 600")
    executor.execute_sql("SELECT * FROM car_ads WHERE price < 600")
    assert "window x2" in executor.plan_summary()


def test_invalid_access_path_mode_rejected():
    database, _ = _fresh_database(None)
    with pytest.raises(ValueError):
        SQLExecutor(database, access_paths="psychic")


def test_window_assisted_order_by_matches_sort():
    database, table = _bulk_database(rows=600)
    # Sprinkle NULL prices so the absent-last rule is exercised.
    for record_id in list(table.all_ids())[:25]:
        table.update(record_id, {"price": None})
    adaptive = SQLExecutor(database, planner=AccessPlanner())
    oracle = SQLExecutor(database, access_paths="scan")
    for sql in (
        "SELECT * FROM car_ads ORDER BY price",
        "SELECT * FROM car_ads ORDER BY price DESC",
        "SELECT * FROM car_ads ORDER BY price LIMIT 40",
    ):
        assert (
            adaptive.execute_sql(sql).record_ids()
            == oracle.execute_sql(sql).record_ids()
        )
    assert any(d.path == "window-order" for d in adaptive.plan_trace)
    assert all(d.path != "window-order" for d in oracle.plan_trace)


# ----------------------------------------------------------------------
# delta maintenance (instrumented rebuild counter)
# ----------------------------------------------------------------------
def _window_ids_by_price(table) -> list[int]:
    records = sorted(
        (record for record in table if record.get("price") is not None),
        key=lambda record: (float(record["price"]), record.record_id),
    )
    return [record.record_id for record in records]


def test_point_update_patches_window_in_place():
    database, table = _fresh_database(None)
    table_windows = windows_for(table)
    window = table_windows.window("price")
    assert table_windows.rebuild_count("price") == 1
    table.update(1, {"price": 9100.0})
    table.update(2, {"color": "black"})  # untouched column: epoch-only
    patched = table_windows.window("price")
    assert patched is window  # same object, spliced — no re-sort
    assert table_windows.rebuild_count("price") == 1
    assert list(patched.ids) == _window_ids_by_price(table)
    assert patched.epoch == table.epoch


def test_batch_deltas_splice_without_rebuild():
    database, table = _fresh_database(None)
    table_windows = windows_for(table)
    table_windows.window("price")
    table.insert_many(
        [
            {"make": "kia", "model": "rio", "price": 9000.0},
            {"make": "kia", "model": "rio", "price": 100.0},
            {"make": "kia", "model": "rio", "price": None},
        ]
    )
    table.remove_many([1, 2])
    window = table_windows.window("price")
    assert table_windows.rebuild_count("price") == 1
    assert list(window.ids) == _window_ids_by_price(table)


def test_epoch_gap_forces_rebuild():
    database, table = _fresh_database(None)
    table_windows = windows_for(table)
    table_windows.window("price")
    # Simulate a missed delta: detach the listener, mutate, re-attach.
    table.remove_listener(table_windows._on_delta)
    table.update(1, {"price": 100.0})
    table.add_listener(table_windows._on_delta)
    window = table_windows.window("price")
    assert table_windows.rebuild_count("price") == 2
    assert list(window.ids) == _window_ids_by_price(table)


def test_pending_overflow_rebuilds_once():
    database, table = _fresh_database(None)
    table_windows = windows_for(table)
    table_windows.window("price")
    for i in range(MAX_PENDING_DELTAS + 1):
        table.update(1, {"price": 500.0 + i})
    window = table_windows.window("price")
    assert table_windows.rebuild_count("price") == 2
    assert list(window.ids) == _window_ids_by_price(table)


def test_sharded_windows_stay_live_across_sibling_mutations():
    database, facade = _fresh_database(4)
    windows = windows_for(facade)
    segments = {id(w): w.epoch for w in windows.column_windows("price")}
    # Mutate one record: exactly one shard's window should move.
    victim = min(facade.all_ids())
    facade.update(victim, {"price": 123.0})
    moved = 0
    for window in windows.column_windows("price"):
        if window.epoch != segments[id(window)]:
            moved += 1
    assert moved == 1
    assert windows.rebuild_count("price") == 4  # one initial build per shard
