"""Tests for the synthetic-data substrate: vocab, ads, noise, latent."""

from __future__ import annotations

import random

import pytest

from repro.datagen.ads import AdsGenerator, build_dataset
from repro.datagen.latent import LatentSimilarity
from repro.datagen.noise import (
    drop_space,
    misspell,
    number_to_shorthand,
    to_shorthand,
)
from repro.datagen.vocab import DOMAIN_NAMES, build_all_specs, build_domain_spec
from repro.db.database import Database
from repro.errors import DataGenerationError
from repro.text.shorthand import is_shorthand


class TestVocabRegistry:
    def test_eight_domains(self):
        assert len(DOMAIN_NAMES) == 8
        assert set(DOMAIN_NAMES) == {
            "cars", "motorcycles", "clothing", "cs_jobs", "furniture",
            "food_coupons", "instruments", "jewellery",
        }

    def test_unknown_domain_raises(self):
        with pytest.raises(DataGenerationError):
            build_domain_spec("boats")

    def test_all_specs_validate(self):
        # DomainSpec.__post_init__ validates; construction must succeed
        specs = build_all_specs()
        assert len(specs) == 8
        for spec in specs.values():
            assert spec.products, spec.name
            assert spec.schema.type_i_columns, spec.name
            assert spec.numeric_columns, spec.name

    def test_products_match_identity_columns(self):
        for spec in build_all_specs().values():
            type_i = [c.name for c in spec.schema.type_i_columns]
            for product in spec.products:
                assert list(product.identity) == type_i

    def test_cars_contains_paper_products(self):
        spec = build_domain_spec("cars")
        labels = {product.label() for product in spec.products}
        for needed in ("honda accord", "toyota camry", "chevy malibu",
                       "ford focus", "honda civic", "toyota corolla"):
            assert needed in labels

    def test_cars_motorcycles_share_makes(self):
        # the classifier-confusion mechanism of Section 5.2
        cars = build_domain_spec("cars")
        motorcycles = build_domain_spec("motorcycles")
        shared = set(cars.all_type_i_values("make")) & set(
            motorcycles.all_type_i_values("make")
        )
        assert {"honda", "suzuki", "bmw"} <= shared

    def test_numeric_range_with_override(self):
        spec = build_domain_spec("cars")
        accord = next(p for p in spec.products if p.label() == "honda accord")
        low, high = spec.numeric_range("price", accord)
        assert (low, high) == accord.numeric_overrides["price"]
        # global fallback for columns without overrides
        assert spec.numeric_range("year", accord) == (1985, 2011)

    def test_groups(self):
        spec = build_domain_spec("cars")
        assert "midsize sedan" in spec.groups()
        assert len(spec.products_in_group("midsize sedan")) >= 3

    def test_vocabulary_contains_products_and_values(self):
        spec = build_domain_spec("cars")
        vocab = spec.vocabulary()
        assert {"honda", "accord", "blue", "automatic"} <= vocab


class TestAdsGenerator:
    def test_dataset_shape(self, cars_dataset):
        assert len(cars_dataset.records) == 200
        assert len(cars_dataset.ads) == 200
        assert len(cars_dataset.table) == 200

    def test_records_respect_product_price_bands(self, cars_dataset):
        for record, ad in zip(cars_dataset.records, cars_dataset.ads):
            low, high = cars_dataset.spec.numeric_range("price", ad.product)
            assert low <= record["price"] <= high

    def test_year_in_range(self, cars_dataset):
        for record in cars_dataset.records:
            assert 1985 <= record["year"] <= 2011

    def test_type_ii_sometimes_missing(self, cars_dataset):
        colors = [record.get("color") for record in cars_dataset.records]
        assert any(color is None for color in colors)
        assert any(color is not None for color in colors)

    def test_ad_text_mentions_identity(self, cars_dataset):
        for ad in cars_dataset.ads[:20]:
            for value in ad.product.identity.values():
                assert value in ad.text

    def test_value_ranges_computed(self, cars_dataset):
        assert set(cars_dataset.value_ranges) == {"year", "price", "mileage"}
        assert all(span > 0 for span in cars_dataset.value_ranges.values())

    def test_deterministic_given_seed(self):
        first = build_dataset("cars", Database(), ads_per_domain=30, seed=5)
        second = build_dataset("cars", Database(), ads_per_domain=30, seed=5)
        assert [dict(r) for r in first.records] == [
            dict(r) for r in second.records
        ]

    def test_different_seeds_differ(self):
        first = build_dataset("cars", Database(), ads_per_domain=30, seed=5)
        second = build_dataset("cars", Database(), ads_per_domain=30, seed=6)
        assert [dict(r) for r in first.records] != [
            dict(r) for r in second.records
        ]

    def test_product_of_record(self, cars_dataset):
        record = cars_dataset.records[0]
        product = cars_dataset.product_of_record(record.record_id)
        assert record["make"] == product.identity["make"]
        with pytest.raises(KeyError):
            cars_dataset.product_of_record(10**9)

    def test_popularity_weighting(self):
        spec = build_domain_spec("cars")
        rng = random.Random(1)
        generator = AdsGenerator(spec, rng)
        counts = {}
        for _ in range(2000):
            product = generator.sample_product()
            counts[product.label()] = counts.get(product.label(), 0) + 1
        # popularity-2.0 products should clearly beat popularity-0.5 ones
        assert counts.get("honda civic", 0) > counts.get("suzuki aerio", 0)


class TestNoise:
    def test_misspell_single_edit(self, rng):
        for word in ("accord", "automatic", "corolla", "transmission"):
            bad = misspell(word, rng)
            assert bad != word or len(word) <= 3
            assert bad[0] == word[0]  # first char preserved
            assert abs(len(bad) - len(word)) <= 1

    def test_misspell_short_words_untouched(self, rng):
        assert misspell("bmw", rng) == "bmw"
        assert misspell("a4", rng) == "a4"

    def test_drop_space(self, rng):
        assert drop_space("honda accord", rng) == "hondaaccord"
        assert drop_space("nospace", rng) == "nospace"

    def test_to_shorthand_is_valid_shorthand(self, rng):
        for value in ("4 door", "automatic", "manual", "leather"):
            short = to_shorthand(value, rng)
            assert is_shorthand(short, value), (short, value)

    def test_number_to_shorthand_parseable(self, rng):
        for value in (20000, 5000, 1500, 250):
            rendered = number_to_shorthand(float(value), rng)
            cleaned = rendered.replace(",", "")
            if cleaned.endswith("k"):
                assert float(cleaned[:-1]) * 1000 == value
            else:
                assert float(cleaned) == value


class TestLatentSimilarity:
    @pytest.fixture()
    def latent(self):
        return LatentSimilarity(build_domain_spec("cars"))

    def test_same_product_is_one(self, latent):
        key = ("honda", "accord")
        assert latent.product_similarity(key, key) == 1.0

    def test_same_group_is_high(self, latent):
        # the paper's motivating pair: Accord ~ Camry (midsize sedans)
        sim = latent.product_similarity(("honda", "accord"), ("toyota", "camry"))
        assert sim == pytest.approx(0.8)

    def test_cross_group_is_low(self, latent):
        sim = latent.product_similarity(
            ("honda", "accord"), ("chevy", "corvette")
        )
        assert sim < 0.5

    def test_symmetry(self, latent):
        a, b = ("honda", "accord"), ("ford", "focus")
        assert latent.product_similarity(a, b) == latent.product_similarity(b, a)

    def test_unknown_product(self, latent):
        assert latent.product_similarity(("x", "y"), ("honda", "accord")) == 0.0

    def test_similar_products_sorted(self, latent):
        similar = latent.similar_products(("honda", "accord"), threshold=0.5)
        labels = [product.label() for product in similar]
        assert "toyota camry" in labels
        assert "honda accord" not in labels

    def test_word_similarity_clusters(self, latent):
        assert latent.word_similarity("black", "grey") == pytest.approx(0.7)
        assert latent.word_similarity("black", "black") == 1.0
        # same attribute (both colors) but different clusters
        assert latent.word_similarity("black", "red") == pytest.approx(0.25)
        # different attributes entirely
        assert latent.word_similarity("black", "automatic") < 0.1

    def test_value_similarity_multiword(self, latent):
        sim = latent.value_similarity("4 wheel drive", "all wheel drive")
        assert sim > 0.5

    def test_numeric_similarity_shape(self, latent):
        close = latent.numeric_similarity("price", 10000, 11000)
        far = latent.numeric_similarity("price", 10000, 70000)
        assert close > far
        assert latent.numeric_similarity("price", 5000, 5000) == 1.0
        assert far == 0.0  # sharpness clamps distant values to zero
