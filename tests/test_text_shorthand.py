"""Tests for shorthand-notation detection (Section 4.2.3)."""

from __future__ import annotations

import pytest

from repro.text.shorthand import expand_shorthand, is_shorthand, shorthand_match


class TestIsShorthand:
    @pytest.mark.parametrize(
        "candidate",
        ["4dr", "4 dr", "four door", "4 doors", "4-door", "4doors"],
    )
    def test_paper_door_variants(self, candidate):
        # The paper's Section 4.2.3 examples, all equivalent to "4 doors".
        assert is_shorthand(candidate, "4 doors")

    def test_order_matters(self):
        # characters must appear in the same order as in the value
        assert not is_shorthand("rd", "door")
        assert is_shorthand("dr", "door")

    def test_value_is_shorthand_of_itself(self):
        assert is_shorthand("automatic", "automatic")

    def test_case_insensitive(self):
        assert is_shorthand("AuTo", "automatic")

    def test_first_character_must_match(self):
        assert not is_shorthand("uto", "automatic")

    def test_single_character_rejected(self):
        assert not is_shorthand("a", "automatic")

    def test_too_short_coverage_rejected(self):
        # 2 chars against a 10-char value is under the 1/3 coverage bar
        assert not is_shorthand("au", "automatic stick")

    def test_number_words_canonicalized(self):
        assert is_shorthand("four door", "4 door")
        assert is_shorthand("4 door", "four door")

    def test_plural_s_optional(self):
        assert is_shorthand("4 door", "4 doors")

    def test_empty_inputs(self):
        assert not is_shorthand("", "door")
        assert not is_shorthand("dr", "")

    def test_not_longer_than_value(self):
        assert not is_shorthand("doooor", "door")


class TestShorthandMatch:
    VALUES = ["4 door", "2 door", "automatic", "manual", "4 wheel drive"]

    def test_exact_recovery(self):
        assert shorthand_match("4dr", self.VALUES) == "4 door"
        assert shorthand_match("auto", self.VALUES) == "automatic"

    def test_no_match_returns_none(self):
        assert shorthand_match("xyz", self.VALUES) is None

    def test_best_coverage_wins(self):
        # "man" covers more of "manual" than of anything else
        assert shorthand_match("man", self.VALUES) == "manual"


class TestExpandShorthand:
    VALUES = ["4 door", "2 door", "automatic", "4 wheel drive"]

    def test_pair_window(self):
        assert expand_shorthand(["2", "dr", "mazda"], self.VALUES) == [
            "2", "door", "mazda",
        ]

    def test_single_token(self):
        assert expand_shorthand(["auto"], self.VALUES) == ["automatic"]

    def test_untouched_tokens_pass_through(self):
        assert expand_shorthand(["honda", "blue"], self.VALUES) == [
            "honda", "blue",
        ]

    def test_skip_predicate_blocks_expansion(self):
        tokens = ["or", "a", "silver"]
        expanded = expand_shorthand(
            tokens, ["orange"], skip=lambda t: t in ("or", "a")
        )
        assert expanded == tokens

    def test_without_skip_or_a_would_be_orange(self):
        # documents why the tagger needs the skip predicate
        expanded = expand_shorthand(["or", "a"], ["orange"])
        assert expanded == ["orange"]
