"""Property-based tests (hypothesis) for the core data structures and
invariants: the trie, similar_text, the stemmer, shorthand detection,
the sorted index, SQL round-tripping, Num_Sim and Rule 1 merging."""

from __future__ import annotations

import string

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.db.indexes import SortedIndex, SubstringIndex
from repro.db.schema import AttributeType
from repro.db.sql.parser import parse_select
from repro.errors import ContradictionError
from repro.qa.boolean_rules import merge_type_iii
from repro.qa.conditions import Condition, ConditionOp
from repro.ranking.num_sim import num_sim
from repro.structures.trie import Trie
from repro.text.shorthand import _canonical, is_shorthand
from repro.text.similar_text import similar_text, similar_text_percent
from repro.text.stemmer import stem
from repro.text.tokenizer import tokenize

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)

# column names for generated SQL must avoid the dialect's keywords
from repro.db.sql.lexer import KEYWORDS  # noqa: E402

identifiers = words.filter(lambda w: w not in KEYWORDS)
numbers = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# trie
# ----------------------------------------------------------------------
@given(st.lists(words, min_size=1, max_size=30))
def test_trie_stores_exactly_inserted_entries(entries):
    trie = Trie()
    for entry in entries:
        trie.insert(entry, payload=len(entry))
    assert len(trie) == len(set(entries))
    for entry in entries:
        assert entry in trie
        assert trie.get(entry) == len(entry)
    assert sorted(trie.entries()) == sorted(set(entries))


@given(st.lists(words, min_size=1, max_size=20), words)
def test_trie_membership_never_false_positive(entries, probe):
    trie = Trie()
    for entry in entries:
        trie.insert(entry)
    assert (probe in trie) == (probe in set(entries))


@given(st.lists(words, min_size=1, max_size=20), words)
def test_trie_longest_prefix_is_a_prefix(entries, text):
    trie = Trie()
    for entry in entries:
        trie.insert(entry)
    match = trie.longest_prefix_entry(text)
    if match is not None:
        prefix, _ = match
        assert text.startswith(prefix)
        assert prefix in trie


# ----------------------------------------------------------------------
# similar_text
# ----------------------------------------------------------------------
@given(words, words)
def test_similar_text_bounded(a, b):
    matched = similar_text(a, b)
    assert 0 <= matched <= min(len(a), len(b))


@given(words)
def test_similar_text_identity(a):
    assert similar_text(a, a) == len(a)
    assert similar_text_percent(a, a) == 100.0


@given(words, words)
def test_similar_text_percent_range(a, b):
    assert 0.0 <= similar_text_percent(a, b) <= 100.0


# ----------------------------------------------------------------------
# stemmer
# ----------------------------------------------------------------------
@given(words)
def test_stem_never_longer_and_never_empty(word):
    stemmed = stem(word)
    assert stemmed
    assert len(stemmed) <= len(word)


@given(words)
def test_stem_deterministic(word):
    assert stem(word) == stem(word)


# ----------------------------------------------------------------------
# shorthand
# ----------------------------------------------------------------------
@given(words)
def test_value_is_shorthand_of_itself(value):
    assert is_shorthand(value, value)


@given(words, st.data())
def test_subsequence_construction_is_shorthand(value, data):
    assume(len(value) >= 4)
    # build a shorthand: keep the first char, then an ordered sample
    indices = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=len(value) - 1),
            min_size=max(1, len(value) // 2),
            unique=True,
        )
    )
    short = value[0] + "".join(value[i] for i in sorted(indices))
    assume(len(short) < len(value))
    assume(len(short) * 3 >= len(value))
    # Number words are rewritten to digits before the subsequence test
    # ("ten" -> "10"), so a sampled subsequence that happens to spell a
    # number word is legitimately NOT a raw shorthand of the value —
    # exclude that regime (hypothesis found 'ten' ⊂ 'taen').
    assume(_canonical(short) == short and _canonical(value) == value)
    assert is_shorthand(short, value)


@given(words, words)
def test_shorthand_requires_subsequence(short, value):
    if is_shorthand(short, value) and short != value:
        # every character of the canonical shorthand must appear in the
        # value (order verified by construction)
        target = value.lower().replace(" ", "")
        for ch in short.lower().replace(" ", ""):
            assert ch in target or target.endswith("s")


# ----------------------------------------------------------------------
# sorted index
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
def test_sorted_index_range_matches_naive(values):
    index = SortedIndex("x")
    for record_id, value in enumerate(values):
        index.add(value, record_id)
    low, high = 200, 700
    expected = {i for i, v in enumerate(values) if low <= v <= high}
    assert index.range(low, high) == expected
    if values:
        assert index.min_value() == min(values)
        assert index.max_value() == max(values)


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=29),
)
def test_sorted_index_remove_inverse_of_add(values, victim_index):
    assume(victim_index < len(values))
    index = SortedIndex("x")
    for record_id, value in enumerate(values):
        index.add(value, record_id)
    index.remove(values[victim_index], victim_index)
    assert len(index) == len(values) - 1
    assert victim_index not in index.range(None, None)


# ----------------------------------------------------------------------
# substring index
# ----------------------------------------------------------------------
@given(st.lists(words, min_size=1, max_size=20), words)
def test_substring_index_matches_naive_scan(values, needle):
    index = SubstringIndex("x", gram_length=3)
    for record_id, value in enumerate(values):
        index.add(value, record_id)
    expected = {i for i, v in enumerate(values) if needle in v}
    assert index.search(needle) == expected


# ----------------------------------------------------------------------
# SQL round-trip
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            identifiers,
            st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
            st.integers(min_value=0, max_value=10**6),
        ),
        min_size=1,
        max_size=5,
    ),
    st.sampled_from(["AND", "OR"]),
)
def test_sql_parse_render_fixpoint(predicates, operator):
    clause = f" {operator} ".join(
        f"{column} {op} {value}" for column, op, value in predicates
    )
    sql = f"SELECT * FROM t WHERE {clause}"
    first = parse_select(sql)
    rendered = first.to_sql()
    assert parse_select(rendered).to_sql() == rendered


# ----------------------------------------------------------------------
# Num_Sim
# ----------------------------------------------------------------------
@given(numbers, numbers, st.floats(min_value=0.001, max_value=1e6))
def test_num_sim_bounded_and_symmetric(a, b, span):
    value = num_sim(a, b, span)
    assert 0.0 <= value <= 1.0
    assert value == num_sim(b, a, span)


@given(numbers, st.floats(min_value=0.001, max_value=1e6))
def test_num_sim_identity(a, span):
    assert num_sim(a, a, span) == 1.0


@given(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
)
def test_num_sim_monotone_in_distance(target, near, far):
    assume(abs(target - near) <= abs(target - far))
    assert num_sim(target, near, 1000) >= num_sim(target, far, 1000)


# ----------------------------------------------------------------------
# Rule 1 merging
# ----------------------------------------------------------------------
bound_ops = st.sampled_from(
    [ConditionOp.LT, ConditionOp.LE, ConditionOp.GT, ConditionOp.GE]
)


@given(
    st.lists(
        st.tuples(bound_ops, st.integers(min_value=0, max_value=1000), st.booleans()),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=200)
def test_merge_type_iii_preserves_semantics(raw_conditions):
    """The merged conditions accept exactly the same values as the
    conjunction of the originals (checked over a probe grid)."""
    conditions = [
        Condition("price", AttributeType.TYPE_III, op, float(value), negated=negated)
        for op, value, negated in raw_conditions
    ]
    try:
        merged = merge_type_iii("price", conditions)
    except ContradictionError:
        merged = None
    probes = [x / 2 for x in range(-2, 2004)]

    def accepts(conds, value):
        from repro.ranking.rank_sim import condition_satisfied

        record = {"price": value}

        class FakeRecord(dict):
            record_id = 0

        return all(condition_satisfied(c, FakeRecord(record)) for c in conds)

    for probe in probes[:: 97]:  # sample the grid for speed
        original = accepts(conditions, probe)
        if merged is None:
            assert not original, probe
        else:
            assert accepts(merged, probe) == original, probe


@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=1000))
def test_merge_contradiction_exactly_when_empty(low, high):
    conditions = [
        Condition("price", AttributeType.TYPE_III, ConditionOp.GE, float(low)),
        Condition("price", AttributeType.TYPE_III, ConditionOp.LE, float(high)),
    ]
    if low > high:
        try:
            merge_type_iii("price", conditions)
            raised = False
        except ContradictionError:
            raised = True
        assert raised
    else:
        merged = merge_type_iii("price", conditions)
        assert merged[0].op is ConditionOp.BETWEEN


# ----------------------------------------------------------------------
# tokenizer
# ----------------------------------------------------------------------
@given(st.text(max_size=80))
def test_tokenizer_total(text):
    # never raises, always lowercase output
    for token in tokenize(text):
        assert token == token.lower()
