"""Tests for SQL execution over the small cars table."""

from __future__ import annotations

import pytest

from repro.db.sql.executor import SQLExecutor, execute
from repro.errors import SQLExecutionError, SQLSyntaxError


@pytest.fixture()
def run(car_database):
    def _run(sql: str):
        return execute(car_database, sql)

    return _run


class TestBasicQueries:
    def test_select_all(self, run):
        assert len(run("SELECT * FROM car_ads")) == 8

    def test_equality_uses_lowercase_match(self, run):
        result = run("SELECT * FROM car_ads WHERE make = 'HONDA'")
        assert {r["model"] for r in result.records} == {"accord", "civic"}

    def test_numeric_comparisons(self, run):
        assert len(run("SELECT * FROM car_ads WHERE price < 6000")) == 3
        assert len(run("SELECT * FROM car_ads WHERE price <= 5900")) == 3
        assert len(run("SELECT * FROM car_ads WHERE price > 20000")) == 1
        assert len(run("SELECT * FROM car_ads WHERE year = 2004")) == 1
        assert len(run("SELECT * FROM car_ads WHERE year != 2004")) == 7

    def test_between(self, run):
        result = run("SELECT * FROM car_ads WHERE price BETWEEN 5000 AND 9000")
        assert all(5000 <= r["price"] <= 9000 for r in result.records)
        assert len(result) == 5

    def test_and_or_not(self, run):
        result = run(
            "SELECT * FROM car_ads WHERE make = 'honda' AND color = 'blue'"
        )
        assert {r["model"] for r in result.records} == {"accord", "civic"}
        result = run(
            "SELECT * FROM car_ads WHERE make = 'bmw' OR make = 'ford'"
        )
        assert len(result) == 2
        result = run("SELECT * FROM car_ads WHERE NOT make = 'honda'")
        assert len(result) == 5

    def test_like_substring(self, run):
        result = run("SELECT * FROM car_ads WHERE model LIKE '%cor%'")
        assert {r["model"] for r in result.records} == {"accord", "corolla"}

    def test_like_prefix_pattern(self, run):
        result = run("SELECT * FROM car_ads WHERE model LIKE 'c%'")
        assert {r["model"] for r in result.records} == {"civic", "camry", "corolla"}

    def test_in_value_list(self, run):
        result = run(
            "SELECT * FROM car_ads WHERE color IN ('black', 'silver')"
        )
        assert len(result) == 2

    def test_in_subquery_example7_shape(self, run):
        # The paper's Example 7 query shape.
        result = run(
            "SELECT * FROM car_ads WHERE record_id IN "
            "(SELECT record_id FROM car_ads c WHERE c.transmission = 'automatic') "
            "AND record_id IN "
            "(SELECT record_id FROM car_ads c WHERE c.color = 'blue')"
        )
        assert all(
            r["transmission"] == "automatic" and r["color"] == "blue"
            for r in result.records
        )
        assert len(result) == 4


class TestOrderingAndLimit:
    def test_order_by_ascending(self, run):
        result = run("SELECT * FROM car_ads ORDER BY price")
        prices = [r["price"] for r in result.records]
        assert prices == sorted(prices)

    def test_order_by_descending(self, run):
        result = run("SELECT * FROM car_ads ORDER BY price DESC")
        prices = [r["price"] for r in result.records]
        assert prices == sorted(prices, reverse=True)

    def test_group_by_acts_as_sort(self, run):
        # Table 1's 'group by price' idiom surfaces extremes first.
        result = run("SELECT * FROM car_ads GROUP BY price")
        assert result.records[0]["price"] == 3000

    def test_limit(self, run):
        result = run("SELECT * FROM car_ads ORDER BY price LIMIT 3")
        assert [r["price"] for r in result.records] == [3000, 5000, 5900]

    def test_deterministic_tie_break_by_record_id(self, run):
        result = run("SELECT * FROM car_ads ORDER BY transmission")
        ids = [r.record_id for r in result.records]
        # within equal keys, ids ascend
        automatic = [r.record_id for r in result.records if r["transmission"] == "automatic"]
        assert automatic == sorted(automatic)
        assert len(ids) == 8


class TestProjectionAndAggregates:
    def test_column_projection(self, run):
        result = run("SELECT make, price FROM car_ads WHERE price < 6000")
        assert all(set(row) == {"make", "price"} for row in result.rows)
        assert len(result.rows) == 3

    def test_record_id_projection(self, run):
        result = run("SELECT record_id FROM car_ads WHERE make = 'bmw'")
        assert result.rows == [{"record_id": 8}]

    def test_min_max(self, run):
        result = run("SELECT MIN(price), MAX(price) FROM car_ads")
        assert result.scalars == {"MIN(price)": 3000, "MAX(price)": 22000}

    def test_aggregate_on_empty_set(self, run):
        result = run("SELECT MIN(price) FROM car_ads WHERE make = 'kia'")
        assert result.scalars["MIN(price)"] is None

    def test_unknown_column_in_projection(self, run):
        with pytest.raises(SQLExecutionError):
            run("SELECT engine FROM car_ads")

    def test_mixing_aggregate_and_plain_rejected(self, run):
        with pytest.raises(SQLExecutionError):
            run("SELECT make, MIN(price) FROM car_ads")


class TestNullSemantics:
    def test_null_fails_positive_predicates(self, car_database):
        table = car_database.table("car_ads")
        record = table.insert({"make": "kia", "model": "rio", "color": None})
        executor = SQLExecutor(car_database)
        result = executor.execute_sql(
            "SELECT * FROM car_ads WHERE color = 'blue'"
        )
        assert record.record_id not in result.record_ids()

    def test_is_null(self, car_database):
        table = car_database.table("car_ads")
        record = table.insert({"make": "kia", "model": "rio"})
        executor = SQLExecutor(car_database)
        result = executor.execute_sql(
            "SELECT * FROM car_ads WHERE color IS NULL"
        )
        assert result.record_ids() == [record.record_id]

    def test_not_includes_nulls(self, car_database):
        # NOT(color = blue) must include records without a color.
        table = car_database.table("car_ads")
        record = table.insert({"make": "kia", "model": "rio"})
        executor = SQLExecutor(car_database)
        result = executor.execute_sql(
            "SELECT * FROM car_ads WHERE NOT color = 'blue'"
        )
        assert record.record_id in result.record_ids()

    def test_bare_inequality_excludes_nulls(self, car_database):
        table = car_database.table("car_ads")
        record = table.insert({"make": "kia", "model": "rio"})
        executor = SQLExecutor(car_database)
        result = executor.execute_sql(
            "SELECT * FROM car_ads WHERE color != 'blue'"
        )
        assert record.record_id not in result.record_ids()


class TestExecutorErrors:
    def test_unknown_table(self, car_database):
        with pytest.raises(Exception):
            execute(car_database, "SELECT * FROM nothing")

    def test_between_on_categorical(self, run):
        with pytest.raises(SQLExecutionError):
            run("SELECT * FROM car_ads WHERE make BETWEEN 1 AND 2")

    def test_like_on_numeric(self, run):
        with pytest.raises(SQLExecutionError):
            run("SELECT * FROM car_ads WHERE price LIKE '%5%'")

    def test_numeric_column_vs_string(self, run):
        with pytest.raises(SQLExecutionError):
            run("SELECT * FROM car_ads WHERE price = 'cheap'")

    def test_in_subquery_star_rejected(self, run):
        with pytest.raises(SQLExecutionError):
            run(
                "SELECT * FROM car_ads WHERE record_id IN "
                "(SELECT * FROM car_ads)"
            )

    def test_syntax_error_propagates(self, run):
        with pytest.raises(SQLSyntaxError):
            run("SELEC * FROM car_ads")


class TestLazyComplements:
    """The lazy-complement / selectivity-ordered evaluation must be a
    pure set-algebra rewrite: every query matches a brute-force scan."""

    def _brute(self, car_database, predicate):
        table = car_database.table("car_ads")
        return {r.record_id for r in table if predicate(r)}

    def test_negation_inside_and(self, car_database, run):
        result = run(
            "SELECT * FROM car_ads WHERE make != 'honda' AND price < 10000"
        )
        expected = self._brute(
            car_database,
            lambda r: r["make"] != "honda" and r["price"] < 10000,
        )
        assert set(result.record_ids()) == expected

    def test_de_morgan_or(self, car_database, run):
        result = run(
            "SELECT * FROM car_ads WHERE NOT (color = 'blue' OR make = 'honda')"
        )
        expected = self._brute(
            car_database,
            lambda r: not (r["color"] == "blue" or r["make"] == "honda"),
        )
        assert set(result.record_ids()) == expected

    def test_double_negation(self, run):
        direct = run("SELECT * FROM car_ads WHERE make = 'honda'")
        doubled = run("SELECT * FROM car_ads WHERE NOT (NOT (make = 'honda'))")
        assert direct.record_ids() == doubled.record_ids()

    def test_union_of_complements(self, car_database, run):
        result = run(
            "SELECT * FROM car_ads WHERE color != 'blue' OR make != 'honda'"
        )
        expected = self._brute(
            car_database,
            lambda r: r["color"] != "blue" or r["make"] != "honda",
        )
        assert set(result.record_ids()) == expected

    def test_numeric_not_equal_keeps_seed_semantics(self, car_database):
        # The seed's numeric != is a plain complement (NULL rows pass,
        # unlike the categorical branch); the lazy rewrite keeps that.
        table = car_database.table("car_ads")
        record = table.insert({"make": "kia", "model": "rio"})
        result = execute(car_database, "SELECT * FROM car_ads WHERE price != 9000")
        assert record.record_id in result.record_ids()

    def test_conjunction_with_empty_leaf_short_circuits_to_empty(self, run):
        result = run(
            "SELECT * FROM car_ads WHERE make = 'nonexistent' "
            "AND model LIKE '%cor%' AND price < 999999"
        )
        assert len(result) == 0

    def test_complement_only_conjunction(self, car_database, run):
        result = run(
            "SELECT * FROM car_ads WHERE make != 'honda' AND make != 'toyota'"
        )
        expected = self._brute(
            car_database,
            lambda r: r["make"] not in ("honda", "toyota"),
        )
        assert set(result.record_ids()) == expected

    def test_short_circuit_still_raises_on_invalid_skipped_leaf(self, run):
        # An empty cheap leaf must not swallow errors in the leaves the
        # short-circuit skips: malformed queries raise deterministically.
        with pytest.raises(Exception):
            run("SELECT * FROM car_ads WHERE make = 'nonexistent' AND nosuch < 5")
        with pytest.raises(SQLExecutionError):
            run(
                "SELECT * FROM car_ads WHERE make = 'nonexistent' "
                "AND price = 'cheap'"
            )
