"""Tests for the from-scratch Porter stemmer."""

from __future__ import annotations

import pytest

from repro.text.stemmer import PorterStemmer, stem


@pytest.fixture()
def stemmer():
    return PorterStemmer()


class TestMeasure:
    def test_measure_zero(self, stemmer):
        for word in ("tr", "ee", "tree", "y", "by"):
            assert stemmer._measure(word) == 0, word

    def test_measure_one(self, stemmer):
        for word in ("trouble", "oats", "trees", "ivy"):
            assert stemmer._measure(word) == 1, word

    def test_measure_two(self, stemmer):
        for word in ("troubles", "private", "oaten"):
            assert stemmer._measure(word) == 2, word


class TestClassicExamples:
    """The published examples from Porter's 1980 paper."""

    @pytest.mark.parametrize(
        ("word", "expected"),
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_example(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected


class TestDomainWords:
    def test_negation_stems_align(self):
        # Section 4.4.1 matches negation keywords on their stems.
        assert stem("excluding") == stem("exclude")

    def test_short_words_untouched(self):
        assert stem("no") == "no"
        assert stem("ad") == "ad"

    def test_non_alpha_untouched(self):
        assert stem("2dr") == "2dr"
        assert stem("20k") == "20k"

    def test_module_function_lowercases(self):
        assert stem("Running") == stem("running")

    def test_idempotent_on_common_stems(self):
        for word in ("automat", "transmiss", "cheapest"):
            once = stem(word)
            assert stem(once) == once or len(stem(once)) <= len(once)
