"""Tests for the CQAds pipeline facade (integration level)."""

from __future__ import annotations

import pytest

from repro.errors import ClassificationError
from repro.qa.pipeline import MAX_ANSWERS


class TestAnswering:
    def test_exact_answers_first(self, cars_system):
        result = cars_system.cqads.answer(
            "blue honda accord", domain="cars"
        )
        assert result.answers
        exact = result.exact_answers
        for answer in exact:
            assert answer.record["make"] == "honda"
            assert answer.record["model"] == "accord"
            assert answer.record["color"] == "blue"
        # exacts precede partials
        flags = [answer.exact for answer in result.answers]
        assert flags == sorted(flags, reverse=True)

    def test_thirty_answer_cap(self, cars_system):
        result = cars_system.cqads.answer("honda", domain="cars")
        assert len(result.answers) <= MAX_ANSWERS

    def test_partial_answers_ranked_descending(self, cars_system):
        result = cars_system.cqads.answer(
            "Find Honda Accord blue less than 15000 dollars", domain="cars"
        )
        partials = result.partial_answers
        assert partials, "expected partial answers for the Table 2 question"
        scores = [answer.score for answer in partials]
        assert scores == sorted(scores, reverse=True)

    def test_partial_answers_never_duplicate_exact(self, cars_system):
        result = cars_system.cqads.answer(
            "blue honda accord automatic", domain="cars"
        )
        exact_ids = {a.record.record_id for a in result.exact_answers}
        partial_ids = {a.record.record_id for a in result.partial_answers}
        assert not exact_ids & partial_ids

    def test_contradiction_message(self, cars_system):
        result = cars_system.cqads.answer(
            "honda cheaper than 2000 and more expensive than 7000",
            domain="cars",
        )
        assert result.message is not None
        assert "no results" in result.message
        assert result.answers == []

    def test_sql_is_parseable(self, cars_system):
        from repro.db.sql.parser import parse_select

        result = cars_system.cqads.answer(
            "blue honda under $9000", domain="cars"
        )
        statement = parse_select(result.sql)
        assert statement.table == "car_ads"

    def test_elapsed_time_recorded(self, cars_system):
        result = cars_system.cqads.answer("honda", domain="cars")
        assert result.elapsed_seconds > 0

    def test_unknown_domain_raises(self, cars_system):
        with pytest.raises(ClassificationError):
            cars_system.cqads.answer("honda", domain="boats")

    def test_single_domain_skips_classifier(self, cars_system):
        # no domain argument: with one domain registered, no training needed
        result = cars_system.cqads.answer("blue honda")
        assert result.domain == "cars"

    def test_two_domain_routing(self, two_domain_system):
        result = two_domain_system.cqads.answer(
            "harley davidson sportster low miles"
        )
        assert result.domain == "motorcycles"
        result = two_domain_system.cqads.answer("4 door toyota camry sedan")
        assert result.domain == "cars"


class TestRelaxationUnits:
    def test_type_i_bundled(self, cars_system):
        cqads = cars_system.cqads
        result = cqads.answer(
            "Find Honda Accord blue less than 15000 dollars", domain="cars"
        )
        units = cqads.relaxation_units(result.interpretation)
        # honda+accord bundle, color, price -> 3 units (paper Table 2's N)
        assert len(units) == 3
        assert len(units[0].conditions) == 2  # the identity anchor

    def test_boolean_interpretation_not_relaxed(self, cars_system):
        cqads = cars_system.cqads
        result = cqads.answer("honda accord or toyota camry", domain="cars")
        assert cqads.relaxation_units(result.interpretation) == []

    def test_negations_never_relaxed(self, cars_system):
        cqads = cars_system.cqads
        result = cqads.answer("honda accord not blue", domain="cars")
        units = cqads.relaxation_units(result.interpretation)
        for unit in units:
            for condition in unit.conditions:
                assert not condition.negated


class TestFeatureSwitches:
    def test_relax_partial_off(self, cars_system):
        from repro.qa.pipeline import CQAds

        cqads = CQAds(cars_system.database, relax_partial=False)
        built = cars_system.domains["cars"]
        cqads.add_domain(built.domain, resources=built.resources)
        result = cqads.answer(
            "Find Honda Accord blue less than 15000 dollars", domain="cars"
        )
        assert result.partial_answers == []

    def test_no_resources_returns_unranked_partials(self, cars_system):
        from repro.qa.pipeline import CQAds

        cqads = CQAds(cars_system.database)
        built = cars_system.domains["cars"]
        cqads.add_domain(built.domain, resources=None)
        result = cqads.answer(
            "Find Honda Accord blue less than 15000 dollars", domain="cars"
        )
        if result.partial_answers:
            assert all(
                answer.similarity_kind == "unranked"
                for answer in result.partial_answers
            )

    def test_spelling_off(self, cars_system):
        from repro.qa.pipeline import CQAds

        cqads = CQAds(cars_system.database, correct_spelling=False)
        built = cars_system.domains["cars"]
        cqads.add_domain(built.domain, resources=built.resources)
        result = cqads.answer("hondaa accord", domain="cars")
        assert result.corrections == []
