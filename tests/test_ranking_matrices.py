"""Tests for the learned similarity matrices (TI-matrix and WS-matrix)."""

from __future__ import annotations

import pytest

from repro.datagen.corpus import generate_corpus
from repro.datagen.latent import LatentSimilarity
from repro.datagen.querylog import generate_query_log
from repro.datagen.vocab import build_domain_spec
from repro.ranking.ti_matrix import TIMatrix
from repro.ranking.ws_matrix import WSMatrix


@pytest.fixture(scope="module")
def cars_spec():
    return build_domain_spec("cars")


@pytest.fixture(scope="module")
def cars_latent(cars_spec):
    return LatentSimilarity(cars_spec)


@pytest.fixture(scope="module")
def ti_matrix(cars_spec, cars_latent):
    sessions = generate_query_log(cars_spec, cars_latent, n_sessions=800, seed=11)
    return TIMatrix.from_query_log(sessions)


@pytest.fixture(scope="module")
def ws_matrix(cars_spec):
    corpus = generate_corpus([cars_spec], n_documents=300, seed=13)
    return WSMatrix.from_corpus(corpus)


class TestQueryLog:
    def test_sessions_have_structure(self, cars_spec, cars_latent):
        sessions = generate_query_log(
            cars_spec, cars_latent, n_sessions=50, seed=11
        )
        assert len(sessions) == 50
        for session in sessions:
            assert session.queries
            assert len({q.user_id for q in session.queries}) == 1
            timestamps = [q.timestamp for q in session.queries]
            assert timestamps == sorted(timestamps)
            for query in session.queries:
                assert query.results
                ranks = [result.rank for result in query.results]
                assert ranks == sorted(ranks)
                for result in query.results:
                    if result.clicked:
                        assert result.dwell_seconds > 0
                    else:
                        assert result.dwell_seconds == 0.0

    def test_query_text_is_product_label(self, cars_spec, cars_latent):
        sessions = generate_query_log(
            cars_spec, cars_latent, n_sessions=20, seed=11
        )
        labels = {product.label() for product in cars_spec.products}
        for session in sessions:
            for query in session.queries:
                assert query.text in labels


class TestTIMatrix:
    def test_identity_pairs_score_max(self, ti_matrix):
        key = ("honda", "accord")
        assert ti_matrix.normalized(key, key) == 1.0

    def test_values_bounded(self, ti_matrix):
        for (a, b), value in ti_matrix.similarities.items():
            assert 0.0 <= value <= 5.0, (a, b, value)
            assert 0.0 <= ti_matrix.normalized(a, b) <= 1.0

    def test_symmetry(self, ti_matrix):
        a, b = ("honda", "accord"), ("toyota", "camry")
        assert ti_matrix.similarity(a, b) == ti_matrix.similarity(b, a)

    def test_unknown_pair_is_zero(self, ti_matrix):
        assert ti_matrix.similarity(("x", "y"), ("honda", "accord")) == 0.0

    def test_recovers_latent_structure(self, ti_matrix, cars_latent):
        """The learned matrix must rank same-segment products above
        cross-segment ones — the property Figure 5 depends on."""
        accord = ("honda", "accord")
        same_group = [("toyota", "camry"), ("chevy", "malibu")]
        cross_group = [("chevy", "corvette"), ("bmw", "m3")]
        same_scores = [ti_matrix.normalized(accord, k) for k in same_group]
        cross_scores = [ti_matrix.normalized(accord, k) for k in cross_group]
        assert min(same_scores) > max(cross_scores)

    def test_empty_log(self):
        matrix = TIMatrix.from_query_log([])
        assert len(matrix) == 0
        assert matrix.normalized(("a",), ("b",)) == 0.0


class TestWSMatrix:
    def test_same_word_is_one(self, ws_matrix):
        assert ws_matrix.similarity("blue", "blue") == 1.0

    def test_stemming_applied(self, ws_matrix):
        # identical after stemming
        assert ws_matrix.similarity("automatic", "automatically") == 1.0

    def test_values_bounded(self, ws_matrix):
        for pair in list(ws_matrix.weights)[:200]:
            assert ws_matrix.similarity(*pair) <= 1.0

    def test_cluster_words_score_higher(self, ws_matrix):
        # "black" and "grey" share a cluster in the cars spec; "black"
        # and "diesel" do not.
        related = ws_matrix.similarity("black", "grey")
        unrelated = ws_matrix.similarity("black", "diesel")
        assert related > unrelated

    def test_value_similarity_multiword(self, ws_matrix):
        sim = ws_matrix.value_similarity("4 wheel drive", "all wheel drive")
        assert sim > 0.0

    def test_value_similarity_empty(self, ws_matrix):
        assert ws_matrix.value_similarity("", "blue") == 0.0

    def test_unseen_words(self, ws_matrix):
        assert ws_matrix.similarity("zyzzyva", "blue") == 0.0

    def test_empty_corpus(self):
        matrix = WSMatrix.from_corpus([])
        assert matrix.similarity("a", "b") == 0.0
