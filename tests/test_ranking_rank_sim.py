"""Tests for Num_Sim (Eq. 4) and Rank_Sim (Eq. 5)."""

from __future__ import annotations

import pytest

from repro.db.schema import AttributeType
from repro.qa.conditions import Condition, ConditionOp
from repro.ranking.num_sim import condition_num_sim, num_sim
from repro.ranking.rank_sim import (
    RankSimRanker,
    ScoringUnit,
    condition_satisfied,
)

TI = AttributeType.TYPE_I
TII = AttributeType.TYPE_II
TIII = AttributeType.TYPE_III


class TestNumSim:
    def test_paper_example_4(self):
        # Example 4: range 10000; $7,500 -> 0.75, $11,000 -> 0.90
        assert num_sim(10000, 7500, 10000) == pytest.approx(0.75)
        assert num_sim(10000, 11000, 10000) == pytest.approx(0.90)

    def test_equal_values(self):
        assert num_sim(5000, 5000, 10000) == 1.0

    def test_clamped_at_zero(self):
        assert num_sim(0, 50000, 10000) == 0.0

    def test_degenerate_range(self):
        assert num_sim(5, 5, 0) == 1.0
        assert num_sim(5, 6, 0) == 0.0

    def test_condition_lt_satisfied_is_one(self):
        condition = Condition("price", TIII, ConditionOp.LT, 15000)
        assert condition_num_sim(condition, 9000, 10000) == 1.0

    def test_condition_lt_violated_measures_to_bound(self):
        condition = Condition("price", TIII, ConditionOp.LT, 15000)
        assert condition_num_sim(condition, 16000, 10000) == pytest.approx(0.9)

    def test_condition_between_inside(self):
        condition = Condition("price", TIII, ConditionOp.BETWEEN, (2000, 7000))
        assert condition_num_sim(condition, 5000, 10000) == 1.0

    def test_condition_between_outside_uses_nearest_bound(self):
        condition = Condition("price", TIII, ConditionOp.BETWEEN, (2000, 7000))
        assert condition_num_sim(condition, 8000, 10000) == pytest.approx(0.9)
        assert condition_num_sim(condition, 1000, 10000) == pytest.approx(0.9)

    def test_condition_gt(self):
        condition = Condition("price", TIII, ConditionOp.GT, 5000)
        assert condition_num_sim(condition, 6000, 10000) == 1.0
        assert condition_num_sim(condition, 4000, 10000) == pytest.approx(0.9)


class TestConditionSatisfied:
    def make_record(self, car_table, **kwargs):
        matches = [r for r in car_table if all(r.get(k) == v for k, v in kwargs.items())]
        return matches[0]

    def test_categorical_eq(self, car_table):
        record = car_table.get(1)  # blue honda accord
        assert condition_satisfied(Condition("color", TII, ConditionOp.EQ, "blue"), record)
        assert not condition_satisfied(Condition("color", TII, ConditionOp.EQ, "red"), record)

    def test_negated(self, car_table):
        record = car_table.get(1)
        assert condition_satisfied(
            Condition("color", TII, ConditionOp.EQ, "red", negated=True), record
        )

    def test_numeric_ops(self, car_table):
        record = car_table.get(1)  # price 9000
        assert condition_satisfied(Condition("price", TIII, ConditionOp.LT, 10000), record)
        assert not condition_satisfied(Condition("price", TIII, ConditionOp.GT, 10000), record)
        assert condition_satisfied(
            Condition("price", TIII, ConditionOp.BETWEEN, (8000, 10000)), record
        )

    def test_null_fails_positive_satisfies_negated(self, car_table):
        record = car_table.insert({"make": "kia", "model": "rio"})
        positive = Condition("color", TII, ConditionOp.EQ, "blue")
        assert not condition_satisfied(positive, record)
        negated = Condition("color", TII, ConditionOp.EQ, "blue", negated=True)
        assert condition_satisfied(negated, record)


class TestRankSim:
    @pytest.fixture()
    def ranker(self, cars_system):
        return RankSimRanker(cars_system.domains["cars"].resources)

    @pytest.fixture()
    def table(self, cars_system):
        return cars_system.domains["cars"].dataset.table

    def conditions(self):
        return [
            Condition("make", TI, ConditionOp.EQ, "honda"),
            Condition("model", TI, ConditionOp.EQ, "accord"),
            Condition("color", TII, ConditionOp.EQ, "blue"),
            Condition("price", TIII, ConditionOp.LT, 15000),
        ]

    def test_exact_match_scores_n(self, ranker, table):
        exact = [
            record
            for record in table
            if record["make"] == "honda"
            and record["model"] == "accord"
            and record.get("color") == "blue"
            and record["price"] < 15000
        ]
        if not exact:
            pytest.skip("no exact match in this dataset draw")
        scored = ranker.score(exact[0], self.conditions())
        assert scored.score == pytest.approx(4.0)
        assert scored.similarity_kind == "exact"

    def test_eq5_shape_n_minus_1_plus_sim(self, ranker, table):
        wrong_color = [
            record
            for record in table
            if record["make"] == "honda"
            and record["model"] == "accord"
            and record.get("color") not in (None, "blue")
            and record["price"] < 15000
        ]
        if not wrong_color:
            pytest.skip("no wrong-color accord in this draw")
        scored = ranker.score(wrong_color[0], self.conditions())
        assert 3.0 <= scored.score < 4.0
        assert scored.similarity_kind == "Feat_Sim"
        assert len(scored.failed) == 1

    def test_same_segment_beats_cross_segment(self, ranker, table):
        camry = [r for r in table if r["model"] == "camry"]
        corvette = [r for r in table if r["model"] == "corvette"]
        if not camry or not corvette:
            pytest.skip("dataset draw lacks a needed product")
        conditions = self.conditions()
        camry_score = ranker.score(camry[0], conditions)
        corvette_score = ranker.score(corvette[0], conditions)
        # TI_Sim learned from the query log: Camry (same segment as
        # Accord) must outrank Corvette.
        assert camry_score.score != corvette_score.score

    def test_rank_orders_descending(self, ranker, table):
        records = list(table)[:50]
        scored = ranker.rank(records, self.conditions())
        values = [item.score for item in scored]
        assert values == sorted(values, reverse=True)

    def test_rank_top_k(self, ranker, table):
        records = list(table)[:50]
        assert len(ranker.rank(records, self.conditions(), top_k=5)) == 5

    def test_units_any_mode(self, ranker, table):
        # an incomplete-number OR unit: price=9000 or mileage=9000
        unit = ScoringUnit(
            conditions=(
                Condition("price", TIII, ConditionOp.LT, 9000),
                Condition("mileage", TIII, ConditionOp.LT, 9000),
            ),
            mode="any",
        )
        cheap = [r for r in table if r["price"] < 9000][0]
        scored = ranker.score_units(cheap, [unit])
        assert scored.score == pytest.approx(1.0)

    def test_units_anchor_bundling(self, ranker, table):
        units = [
            ScoringUnit(
                conditions=(
                    Condition("make", TI, ConditionOp.EQ, "honda"),
                    Condition("model", TI, ConditionOp.EQ, "accord"),
                )
            ),
            ScoringUnit(conditions=(Condition("color", TII, ConditionOp.EQ, "blue"),)),
        ]
        blue_camry = [
            r for r in table if r["model"] == "camry" and r.get("color") == "blue"
        ]
        if not blue_camry:
            pytest.skip("no blue camry in this draw")
        scored = ranker.score_units(blue_camry[0], units)
        # 1 for blue + two TI similarities in (0, 1)
        assert 1.0 < scored.score < 3.0
        assert scored.similarity_kind == "TI_Sim"

    def test_rank_units_matches_score_units(self, ranker, table):
        units = [
            ScoringUnit(conditions=(Condition("make", TI, ConditionOp.EQ, "honda"),)),
            ScoringUnit(conditions=(Condition("color", TII, ConditionOp.EQ, "blue"),)),
        ]
        records = list(table)[:30]
        ranked = ranker.rank_units(records, units)
        for item in ranked:
            assert item.score == pytest.approx(
                ranker.score_units(item.record, units).score
            )
