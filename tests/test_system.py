"""Tests for the one-call system builder and experiment harness."""

from __future__ import annotations


from repro.evaluation import experiments as exp
from repro.system import build_system


class TestBuildSystem:
    def test_artifacts_present(self, cars_system):
        built = cars_system.domains["cars"]
        assert len(built.dataset.records) == 250
        assert len(built.ti_matrix) > 0
        assert cars_system.ws_matrix is not None
        assert len(cars_system.ws_matrix) > 0
        assert built.resources.product_keys
        assert cars_system.database.has_table("car_ads")

    def test_domain_accessor(self, cars_system):
        assert cars_system.domain("cars") is cars_system.domains["cars"]

    def test_value_ranges_flow_to_resources(self, cars_system):
        built = cars_system.domains["cars"]
        assert built.resources.value_ranges["price"] > 0

    def test_deterministic_rebuild(self):
        first = build_system(
            ["cars"], ads_per_domain=40, sessions_per_domain=30,
            corpus_documents=30,
        )
        second = build_system(
            ["cars"], ads_per_domain=40, sessions_per_domain=30,
            corpus_documents=30,
        )
        first_records = [dict(r) for r in first.domains["cars"].dataset.records]
        second_records = [dict(r) for r in second.domains["cars"].dataset.records]
        assert first_records == second_records
        assert (
            first.domains["cars"].ti_matrix.similarities
            == second.domains["cars"].ti_matrix.similarities
        )


class TestExperimentHarness:
    """Smoke-level runs of every experiment on the small shared system;
    the full-scale runs live in benchmarks/."""

    def test_classification(self, two_domain_system):
        result = exp.classification_experiment(
            two_domain_system, questions_per_domain=15
        )
        assert set(result.per_domain) == {"cars", "motorcycles"}
        assert 0.5 <= result.average <= 1.0

    def test_exact_match(self, two_domain_system):
        result = exp.exact_match_experiment(
            two_domain_system, questions_per_domain=15
        )
        assert result.precision > 0.7
        assert result.recall > 0.7
        assert 0 < result.f_measure <= 1.0
        assert len(result.per_question) == 30

    def test_boolean_interpretation(self, two_domain_system):
        result = exp.boolean_interpretation_experiment(
            two_domain_system, respondents=40
        )
        assert len(result.outcomes) == 10
        assert result.implicit_average > 0.5
        assert result.explicit_average > 0.7
        assert 0 < result.overall_average <= 1.0

    def test_table2(self, cars_system):
        rows = exp.table2_experiment(cars_system)
        assert rows
        assert rows[0].ranking == 1

    def test_ranking_quality(self, two_domain_system):
        result = exp.ranking_quality_experiment(
            two_domain_system, questions_per_domain=3
        )
        assert result.questions_evaluated > 0
        for metric in (result.p_at_1, result.p_at_5, result.mrr):
            assert set(metric) == {
                "cqads", "random", "cosine", "aimq", "faqfinder",
            }
            assert all(0.0 <= v <= 1.0 for v in metric.values())
        # the headline result: CQAds leads, random trails
        assert result.p_at_5["cqads"] >= result.p_at_5["random"]
        assert result.mrr["cqads"] >= result.mrr["random"]

    def test_latency(self, two_domain_system):
        result = exp.latency_experiment(
            two_domain_system, questions_per_domain=4
        )
        assert result.questions_timed == 8
        assert all(v > 0 for v in result.average_seconds.values())
        assert result.average_seconds["random"] == min(
            result.average_seconds.values()
        )

    def test_shorthand(self, two_domain_system):
        score = exp.shorthand_experiment(two_domain_system, variants=150)
        assert score > 0.6


class TestReporting:
    def test_format_table(self):
        from repro.evaluation.reporting import (
            format_percent,
            format_seconds,
            format_table,
        )

        text = format_table(
            ["domain", "accuracy"],
            [["cars", "96.0%"], ["motorcycles", "88.1%"]],
            title="Figure 2",
        )
        assert "Figure 2" in text
        assert "cars" in text
        lines = text.splitlines()
        assert len(lines) == 5
        assert format_percent(0.961) == "96.1%"
        assert format_seconds(0.00345) == "3.45ms"
        assert format_seconds(2.5) == "2.500s"
        assert format_seconds(0.0000005) == "0us"
