"""Delta-based incremental cache maintenance: patch ≡ rebuild (PR 5).

The acceptance bar for delta maintenance is **bit-identical cache
state**: after any stream of inserts/updates/removes, a column store
patched via :meth:`~repro.perf.colrank.ColumnStore.apply` and a
fragment cache patched via
:meth:`~repro.perf.fragment_cache.FragmentCache.absorb` must hold
exactly what a from-scratch rebuild at the same epoch would hold.
Three layers are proved here:

* **column-store storms** — randomized mutation streams against plain
  and sharded (1/2/4) tables, comparing the patched store(s) to a
  fresh :class:`ColumnStore` build after every single step;
* **fragment-cache storms** — the same streams with a warm unit-id-set
  cache, comparing every patched id-set to a fresh
  ``eval_where`` evaluation after every step (and asserting the
  entries were *patched*, i.e. served as hits, not recomputed);
* **the 8-domain churn battery** — full ``AnswerService`` runs over
  every domain with one point mutation per question, the engine
  flipped between ``cache_maintenance="delta"`` and ``"rebuild"``,
  comparing the complete result surface.
"""

from __future__ import annotations

import random

import pytest

from repro.api.requests import AnswerRequest
from repro.datagen.questions import make_generator
from repro.datagen.vocab import DOMAIN_NAMES
from repro.db.database import Database
from repro.db.schema import AttributeType
from repro.db.sql.executor import SQLExecutor
from repro.perf.colrank import ColumnStore
from repro.perf.subplan import unit_id_sets
from repro.qa.conditions import Condition, ConditionOp
from repro.qa.pipeline import CQAds
from repro.ranking.rank_sim import RankingResources, ScoringUnit
from repro.ranking.ti_matrix import TIMatrix
from repro.ranking.ws_matrix import WSMatrix
from repro.system import build_system
from tests.conftest import small_car_schema

TYPE_I_COLUMNS = ["make", "model"]
SHARD_COUNTS = (1, 2, 4)
STORM_STEPS = 120

MAKES = [("honda", "accord"), ("honda", "civic"), ("toyota", "corolla"),
         ("mazda", "mx5"), ("ford", "focus")]
COLORS = ["blue", "red", "green", "silver", None]
TRANSMISSIONS = ["automatic", "manual", None]


def _random_row(rng: random.Random) -> dict:
    make, model = rng.choice(MAKES)
    return {
        "make": make,
        "model": model,
        "color": rng.choice(COLORS),
        "transmission": rng.choice(TRANSMISSIONS),
        "year": rng.choice([None, rng.randint(1990, 2011)]),
        "price": rng.choice([None, rng.randint(500, 30000)]),
        "mileage": rng.choice([None, rng.randint(0, 200000)]),
    }


def _random_update(rng: random.Random) -> dict:
    """A partial update touching 1-3 random columns (Type I stays
    non-empty, per the schema's validation)."""
    pool = {
        "make": lambda: rng.choice(MAKES)[0],
        "model": lambda: rng.choice(MAKES)[1],
        "color": lambda: rng.choice(COLORS),
        "transmission": lambda: rng.choice(TRANSMISSIONS),
        "year": lambda: rng.choice([None, rng.randint(1990, 2011)]),
        "price": lambda: rng.choice([None, rng.randint(500, 30000)]),
        "mileage": lambda: rng.choice([None, rng.randint(0, 200000)]),
    }
    columns = rng.sample(sorted(pool), rng.randint(1, 3))
    return {column: pool[column]() for column in columns}


def _mutate(rng: random.Random, table) -> None:
    """One random mutation step: insert, update, remove or a small
    bulk batch (exercising the BatchDelta path)."""
    ids = sorted(table.all_ids())
    roll = rng.random()
    if not ids or roll < 0.35:
        table.insert(_random_row(rng))
    elif roll < 0.75:
        table.update(rng.choice(ids), _random_update(rng))
    elif roll < 0.90:
        table.delete(rng.choice(ids))
    elif roll < 0.95:
        table.insert_many([_random_row(rng) for _ in range(rng.randint(2, 4))])
    else:
        table.remove_many(rng.sample(ids, min(len(ids), rng.randint(1, 3))))


def _store_signature(store: ColumnStore):
    return (
        store.epoch,
        [record.record_id for record in store.records],
        store.row_of,
        store.keys,
        store.categorical,
        store.numeric,
    )


def _resources_for(table) -> RankingResources:
    resources = RankingResources(
        ti_matrix=TIMatrix(),
        ws_matrix=WSMatrix(),
        value_ranges={},
        type_i_columns=list(TYPE_I_COLUMNS),
    )
    resources.attach_table(table)
    return resources


# ----------------------------------------------------------------------
# column-store storms: patched ≡ rebuilt after every step
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [11, 12])
def test_column_store_storm_plain_table(seed):
    table = Database().create_table(small_car_schema())
    table.insert_many([_random_row(random.Random(seed * 977))
                       for _ in range(20)])
    resources = _resources_for(table)
    rng = random.Random(seed)
    patch_survivals = 0
    for _ in range(STORM_STEPS):
        before = resources.column_store()
        _mutate(rng, table)
        patched = resources.column_store()
        fresh = ColumnStore(table, TYPE_I_COLUMNS)
        assert _store_signature(patched) == _store_signature(fresh)
        # Every patch path (in-place append, copy-on-write update,
        # splice) shares the old store's value-keyed slot memos; only
        # a rebuild mints a fresh memo dict.  Count the survivals to
        # prove the delta path actually runs.
        patch_survivals += patched._slot_memo is before._slot_memo
    assert patch_survivals > STORM_STEPS // 2


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_column_store_storm_sharded(shard_count):
    table = Database().create_table(small_car_schema(), shards=shard_count)
    table.insert_many([_random_row(random.Random(shard_count * 31))
                       for _ in range(20)])
    resources = _resources_for(table)
    rng = random.Random(40 + shard_count)
    for _ in range(STORM_STEPS):
        _mutate(rng, table)
        patched = resources.shard_column_stores()
        assert patched is not None and len(patched) == shard_count
        for shard, store in zip(table.shards, patched):
            fresh = ColumnStore(shard, TYPE_I_COLUMNS)
            assert _store_signature(store) == _store_signature(fresh)


def test_rebuild_mode_never_patches():
    """The parity oracle: with ``incremental=False`` every epoch move
    rebuilds from scratch (still bit-identical, never stale)."""
    table = Database().create_table(small_car_schema())
    table.insert_many([_random_row(random.Random(5))
                       for _ in range(10)])
    resources = _resources_for(table)
    resources.incremental = False
    rng = random.Random(6)
    for _ in range(30):
        before = resources.column_store()
        _mutate(rng, table)
        patched = resources.column_store()
        assert patched is not before
        assert _store_signature(patched) == _store_signature(
            ColumnStore(table, TYPE_I_COLUMNS)
        )


def test_detach_window_falls_back_to_rebuild():
    """Mutations during a listener detach window leave an epoch gap the
    patcher must not bridge — the store rebuilds instead."""
    table = Database().create_table(small_car_schema())
    table.insert_many([_random_row(random.Random(7)) for _ in range(10)])
    resources = _resources_for(table)
    resources.column_store()
    resources.detach_table()
    table.update(1, {"color": "green"})  # unheard: no listener attached
    resources.attach_table(table)
    store = resources.column_store()
    assert _store_signature(store) == _store_signature(
        ColumnStore(table, TYPE_I_COLUMNS)
    )
    row = store.row_of[1]
    assert store.categorical["color"][row] == "green"


def test_out_of_order_insert_patches_by_splice():
    """An explicit low id after higher ids splices a copy (rows must
    not shift under concurrent readers of the old store)."""
    table = Database().create_table(small_car_schema())
    table.insert(_random_row(random.Random(8)), record_id=10)
    resources = _resources_for(table)
    before = resources.column_store()
    table.insert(_random_row(random.Random(9)), record_id=3)
    after = resources.column_store()
    assert after is not before  # spliced copy, not an in-place shift
    assert [r.record_id for r in after.records] == [3, 10]
    assert _store_signature(after) == _store_signature(
        ColumnStore(table, TYPE_I_COLUMNS)
    )
    assert before.row_of == {10: 0}  # the old image is untouched


def test_update_keeps_old_store_image_consistent():
    """Copy-on-write updates: a reader holding the pre-update store
    sees a fully consistent old image (no torn mixed-epoch rows), and
    untouched columns share their arrays with the patched clone."""
    table = Database().create_table(small_car_schema())
    table.insert(
        {"make": "honda", "model": "accord", "color": "blue",
         "transmission": "manual", "price": 9000}
    )
    resources = _resources_for(table)
    before = resources.column_store()
    row = before.row_of[1]
    table.update(1, {"color": "green", "price": 1234})
    after = resources.column_store()
    assert after is not before  # readers of the old object are safe
    assert before.categorical["color"][row] == "blue"  # old image frozen
    assert before.numeric["price"][row] == 9000.0
    assert after.categorical["color"][row] == "green"
    assert after.numeric["price"][row] == 1234.0
    # Untouched state is shared, not copied.
    assert after.categorical["transmission"] is before.categorical["transmission"]
    assert after.keys is before.keys  # no Type I column changed
    assert after.records is before.records


def test_append_after_update_does_not_tear_old_snapshot():
    """Regression: an insert folded right after a copy-on-write update
    must not append onto the lists the update clone still shares with
    the pre-update store — every array of the old snapshot keeps its
    pre-update length and values."""
    table = Database().create_table(small_car_schema())
    table.insert(
        {"make": "honda", "model": "accord", "color": "blue",
         "transmission": "manual", "price": 9000}
    )
    resources = _resources_for(table)
    before = resources.column_store()
    table.update(1, {"color": "green"})
    table.insert(
        {"make": "mazda", "model": "mx5", "color": "red", "price": 7000}
    )
    after = resources.column_store()
    assert _store_signature(after) == _store_signature(
        ColumnStore(table, TYPE_I_COLUMNS)
    )
    # The old snapshot is whole: one row everywhere, original values.
    assert len(before.records) == 1
    assert before.row_of == {1: 0}
    assert all(len(values) == 1 for values in before.categorical.values())
    assert all(len(values) == 1 for values in before.numeric.values())
    assert before.categorical["color"] == ["blue"]
    # A second append lands in place again (the copy owns its lists).
    table.insert(
        {"make": "ford", "model": "focus", "color": "silver", "price": 6000}
    )
    final = resources.column_store()
    assert final is after
    assert _store_signature(final) == _store_signature(
        ColumnStore(table, TYPE_I_COLUMNS)
    )


# ----------------------------------------------------------------------
# fragment-cache storms: patched id-sets ≡ fresh eval_where
# ----------------------------------------------------------------------
def _storm_units() -> list[ScoringUnit]:
    c = Condition
    return [
        ScoringUnit(conditions=(
            c("make", AttributeType.TYPE_I, ConditionOp.EQ, "honda"),
            c("model", AttributeType.TYPE_I, ConditionOp.EQ, "accord"),
        )),
        ScoringUnit(conditions=(
            c("color", AttributeType.TYPE_II, ConditionOp.EQ, "blue"),
        )),
        ScoringUnit(conditions=(
            c("color", AttributeType.TYPE_II, ConditionOp.NE, "red"),
        )),
        ScoringUnit(conditions=(
            c("price", AttributeType.TYPE_III, ConditionOp.LT, 10000),
        )),
        ScoringUnit(conditions=(
            c("price", AttributeType.TYPE_III, ConditionOp.BETWEEN,
              (4000.0, 12000.0)),
        )),
        ScoringUnit(conditions=(
            c("mileage", AttributeType.TYPE_III, ConditionOp.GE, 100000),
        )),
        ScoringUnit(conditions=(
            c("price", AttributeType.TYPE_III, ConditionOp.EQ, 2000),
            c("year", AttributeType.TYPE_III, ConditionOp.EQ, 2000),
        ), mode="any"),
    ]


@pytest.mark.parametrize("shard_count", [None, 1, 2, 4])
def test_fragment_cache_storm(shard_count):
    database = Database()
    table = database.create_table(small_car_schema(), shards=shard_count)
    table.insert_many([_random_row(random.Random(61))
                       for _ in range(20)])
    # CQAds wires the delta-absorbing mutation listener (delta mode is
    # the default); no domains needed for cache maintenance itself.
    cqads = CQAds(database)
    cache = cqads.fragment_cache
    assert cache is not None
    executor = SQLExecutor(database)
    units = _storm_units()
    rng = random.Random(62)
    unit_id_sets(executor, table, units, cache)  # warm the cache
    for step in range(STORM_STEPS):
        _mutate(rng, table)
        hits_before, misses_before = cache.hits, cache.misses
        cached = unit_id_sets(executor, table, units, cache)
        assert cache.misses == misses_before, f"recompute at step {step}"
        assert cache.hits > hits_before
        fresh = unit_id_sets(executor, table, units, None)
        assert cached == fresh, f"patched id-sets diverged at step {step}"


def test_fragment_cache_rebuild_mode_recomputes():
    database = Database()
    table = database.create_table(small_car_schema())
    table.insert_many([_random_row(random.Random(63)) for _ in range(20)])
    cqads = CQAds(database, cache_maintenance="rebuild")
    cache = cqads.fragment_cache
    executor = SQLExecutor(database)
    units = _storm_units()
    unit_id_sets(executor, table, units, cache)
    table.insert(_random_row(random.Random(64)))
    assert len(cache) == 0  # generation swept
    misses_before = cache.misses
    cached = unit_id_sets(executor, table, units, cache)
    assert cache.misses == misses_before + len(units)
    assert cached == unit_id_sets(executor, table, units, None)


def test_bulk_load_past_cutoff_sweeps_instead_of_patching():
    """A warm cache absorbs small batches but falls back to the O(cache)
    generation sweep for bulk loads (patching is O(entries x rows))."""
    from repro.perf.fragment_cache import MAX_ABSORB_ROWS

    database = Database()
    table = database.create_table(small_car_schema())
    table.insert_many([_random_row(random.Random(66)) for _ in range(20)])
    cqads = CQAds(database)
    cache = cqads.fragment_cache
    executor = SQLExecutor(database)
    units = _storm_units()
    unit_id_sets(executor, table, units, cache)
    table.insert_many(
        [_random_row(random.Random(67))
         for _ in range(MAX_ABSORB_ROWS + 10)]
    )
    assert len(cache) == 0  # swept: bulk patching would cost more
    assert unit_id_sets(executor, table, units, cache) == unit_id_sets(
        executor, table, units, None
    )
    table.insert_many([_random_row(random.Random(68)) for _ in range(5)])
    assert len(cache) == len(units)  # small batch: patched, still warm
    assert unit_id_sets(executor, table, units, cache) == unit_id_sets(
        executor, table, units, None
    )


def test_lexicographic_range_condition_patches_like_executor():
    """condition_to_expr float-coerces range values before the executor
    stringifies them ("2010" -> "2010.0"); the absorb mirror must
    compare against the same text or patched fragments silently drop
    boundary rows (regression)."""
    database = Database()
    table = database.create_table(small_car_schema())
    for model in ("2010", "2010.5", "1999"):
        table.insert({"make": "honda", "model": model, "color": "blue"})
    cqads = CQAds(database)
    cache = cqads.fragment_cache
    executor = SQLExecutor(database)
    unit = ScoringUnit(conditions=(
        Condition("model", AttributeType.TYPE_I, ConditionOp.LT, "2010"),
    ))
    (cached,) = unit_id_sets(executor, table, [unit], cache)
    assert cached == {1, 3}  # "2010" < "2010.0" lexicographically
    # An unrelated update forces absorb to re-evaluate record 1.
    table.update(1, {"color": "green"})
    (patched,) = unit_id_sets(executor, table, [unit], cache)
    assert patched == unit_id_sets(executor, table, [unit], None)[0]
    assert patched == {1, 3}


def test_record_less_delta_falls_back_to_sweep():
    """A hand-built insert/update delta without its record payload
    cannot be replayed; absorb must refuse so the listener sweeps."""
    from repro.db.table import InsertDelta

    database = Database()
    table = database.create_table(small_car_schema())
    table.insert_many([_random_row(random.Random(69)) for _ in range(10)])
    cqads = CQAds(database)
    cache = cqads.fragment_cache
    executor = SQLExecutor(database)
    units = _storm_units()
    unit_id_sets(executor, table, units, cache)
    assert len(cache) == len(units)
    bare = InsertDelta(table, "insert", 999, table.epoch + 1, record=None)
    assert cache.absorb(bare) is False
    cqads._on_table_mutation(bare)  # listener path: falls back to sweep
    assert len(cache) == 0


def test_absorbed_sets_are_fresh_copies():
    """Copy-on-write: a consumer holding a pre-mutation id-set must not
    see it change under delta absorption."""
    database = Database()
    table = database.create_table(small_car_schema())
    table.insert_many([_random_row(random.Random(65)) for _ in range(10)])
    cqads = CQAds(database)
    cache = cqads.fragment_cache
    executor = SQLExecutor(database)
    unit = ScoringUnit(conditions=(
        Condition("make", AttributeType.TYPE_I, ConditionOp.EQ, "honda"),
        Condition("model", AttributeType.TYPE_I, ConditionOp.EQ, "accord"),
    ),)
    (held,) = unit_id_sets(executor, table, [unit], cache)
    snapshot = set(held)
    inserted = table.insert(
        {"make": "honda", "model": "accord", "color": "blue", "price": 1000}
    )
    assert held == snapshot  # the old set object is untouched
    (patched,) = unit_id_sets(executor, table, [unit], cache)
    assert inserted.record_id in patched


# ----------------------------------------------------------------------
# satellites: shard_of, changed-column memo eviction
# ----------------------------------------------------------------------
def test_shard_of_matches_actual_placement():
    table = Database().create_table(small_car_schema(), shards=4)
    records = table.insert_many(
        [_random_row(random.Random(71)) for _ in range(25)]
    )
    for record in records:
        index = table.shard_of(record.record_id)
        assert table.shards[index].get(record.record_id) is record
        for other, shard in enumerate(table.shards):
            if other != index:
                assert shard.get(record.record_id) is None


def test_reused_record_id_never_serves_ghost_memos():
    """delete + Table.insert(record_id=) resurrecting the id must not
    score the new record with the dead record's memoized key/values."""
    table = Database().create_table(small_car_schema())
    table.insert(
        {"make": "honda", "model": "accord", "color": "blue", "price": 9000}
    )
    resources = _resources_for(table)
    record = table.get(1)
    assert resources.record_key(record) == ("honda", "accord")
    assert resources.lowered_value(record, "color") == "blue"
    table.delete(1)
    reborn = table.insert(
        {"make": "toyota", "model": "corolla", "color": "red", "price": 4000},
        record_id=1,
    )
    assert resources.record_key(reborn) == ("toyota", "corolla")
    assert resources.lowered_value(reborn, "color") == "red"
    # The bulk path evicts too (remove_many emits one BatchDelta).
    resources.record_key(reborn)
    table.remove_many([1])
    reborn_again = table.insert(
        {"make": "mazda", "model": "mx5", "color": "silver"}, record_id=1
    )
    assert resources.record_key(reborn_again) == ("mazda", "mx5")


def test_update_delta_evicts_only_touched_memos():
    table = Database().create_table(small_car_schema())
    table.insert(
        {"make": "honda", "model": "accord", "color": "blue",
         "transmission": "manual", "price": 9000}
    )
    table.insert_many([_random_row(random.Random(72)) for _ in range(4)])
    resources = _resources_for(table)
    record = table.get(1)
    key = resources.record_key(record)
    resources.lowered_value(record, "color")
    resources.lowered_value(record, "transmission")
    # A non-Type-I update keeps the record key and untouched columns.
    table.update(1, {"color": "purple"})
    assert resources._record_keys.get(1) == key
    assert (1, "color") not in resources._lowered_values
    assert (1, "transmission") in resources._lowered_values
    assert resources.lowered_value(record, "color") == "purple"
    # A Type I update evicts the record key.
    table.update(1, {"model": "civic"})
    assert 1 not in resources._record_keys
    assert resources.record_key(record)[1] == "civic"


# ----------------------------------------------------------------------
# the 8-domain churn battery: delta ≡ rebuild on the full pipeline
# ----------------------------------------------------------------------
CHURN_QUESTIONS_PER_DOMAIN = 12


@pytest.fixture(scope="module")
def churn_systems():
    """Two identical builds, differing only in maintenance mode."""
    recipe = dict(
        ads_per_domain=100,
        sessions_per_domain=120,
        corpus_documents=120,
        train_classifier=False,
    )
    return (
        build_system(cache_maintenance="delta", **recipe),
        build_system(cache_maintenance="rebuild", **recipe),
    )


def _answer_signature(answers):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind)
        for a in answers
    ]


def _result_signature(result):
    return (
        result.domain,
        result.sql,
        result.message,
        _answer_signature(result.answers),
        _answer_signature(result.ranked_pool),
    )


@pytest.mark.parametrize("domain", DOMAIN_NAMES)
def test_churn_battery_delta_vs_rebuild(churn_systems, domain):
    """One point mutation per question; both engines answer from their
    (patched vs rebuilt) caches and must agree bit-for-bit."""
    delta_system, rebuild_system = churn_systems
    generator = make_generator(delta_system.domain(domain).dataset, seed=331)
    rebuild_system.domain(domain)  # provision the oracle's copy too
    table_name = delta_system.domain(domain).domain.schema.table_name
    tables = (
        delta_system.database.table(table_name),
        rebuild_system.database.table(table_name),
    )
    services = (delta_system.service(), rebuild_system.service())
    rng = random.Random(332)
    numeric = [
        column.name
        for column in delta_system.domain(domain).domain.schema.columns
        if column.is_numeric
    ]
    for index in range(CHURN_QUESTIONS_PER_DOMAIN):
        # The same point mutation lands on both builds (identical seeds
        # mean identical tables, so ids and donors line up).
        ids = sorted(tables[0].all_ids())
        roll = rng.random()
        if roll < 0.6 and numeric and ids:
            target = rng.choice(ids)
            column = rng.choice(numeric)
            bounds = tables[0].column_bounds(column)
            value = rng.randint(int(bounds[0]), max(int(bounds[1]), 1))
            for table in tables:
                table.update(target, {column: value})
        elif roll < 0.8 and ids:
            donor = dict(tables[0].get(rng.choice(ids)))
            for table in tables:
                table.insert(dict(donor))
        elif ids:
            target = rng.choice(ids)
            for table in tables:
                table.delete(target)
        question = generator.generate()
        request = AnswerRequest(question=question.text, domain=domain)
        delta_result = services[0].answer(request)
        rebuild_result = services[1].answer(request)
        assert _result_signature(delta_result) == _result_signature(
            rebuild_result
        ), f"churn divergence on {question.text!r} (step {index})"


# ----------------------------------------------------------------------
# satellite: partial-batch failure still emits a consistent BatchDelta
# ----------------------------------------------------------------------
def test_insert_many_failure_emits_batch_delta_for_applied_prefix():
    """A mid-batch schema violation leaves the rows before it applied;
    the one BatchDelta that fires must describe exactly that prefix —
    its per-row deltas, the last landed id, the final epoch — so every
    delta consumer (caches, column stores, the WAL) stays consistent
    with the table it just watched mutate."""
    from repro.db.table import BatchDelta, InsertDelta
    from repro.errors import SchemaError

    table = Database().create_table(small_car_schema())
    events = []
    table.add_listener(events.append)
    rows = [
        {"make": "honda", "model": "accord", "price": 9000},
        {"make": "toyota", "model": "corolla", "price": 7000},
        {"make": None, "model": "ghost"},  # Type I violation mid-batch
        {"make": "mazda", "model": "mx5", "price": 11000},
    ]
    with pytest.raises(SchemaError, match="make"):
        table.insert_many(rows)
    # The prefix landed; the failing row and everything after did not.
    assert [record["model"] for record in table.snapshot()] == [
        "accord", "corolla"
    ]
    (delta,) = events
    assert isinstance(delta, BatchDelta) and delta.kind == "insert"
    assert all(isinstance(d, InsertDelta) for d in delta.deltas)
    assert [d.record["model"] for d in delta.deltas] == ["accord", "corolla"]
    assert delta.record_id == 2  # the last row that landed
    assert delta.epoch == table.epoch  # the epoch the table settled at
    assert [d.epoch for d in delta.deltas] == [1, 2]


def test_insert_many_failing_on_first_row_emits_nothing():
    from repro.errors import SchemaError

    table = Database().create_table(small_car_schema())
    events = []
    table.add_listener(events.append)
    before = table.epoch
    with pytest.raises(SchemaError):
        table.insert_many([{"make": None}, {"make": "honda", "model": "x"}])
    assert events == []  # no rows applied -> no delta at all
    assert len(table) == 0 and table.epoch == before


def test_remove_many_unknown_id_notifies_the_deleted_prefix():
    from repro.db.table import BatchDelta, RemoveDelta
    from repro.errors import RecordNotFoundError

    table = Database().create_table(small_car_schema())
    table.insert_many(
        [
            {"make": "honda", "model": "accord"},
            {"make": "toyota", "model": "corolla"},
            {"make": "mazda", "model": "mx5"},
        ]
    )
    events = []
    table.add_listener(events.append)
    with pytest.raises(RecordNotFoundError):
        table.remove_many([1, 999, 3])
    assert sorted(table.all_ids()) == [2, 3]  # 1 deleted, 3 untouched
    (delta,) = events
    assert isinstance(delta, BatchDelta) and delta.kind == "delete"
    assert [d.record.record_id for d in delta.deltas] == [1]
    assert all(isinstance(d, RemoveDelta) for d in delta.deltas)
    assert delta.record_id == 1 and delta.epoch == table.epoch


def test_partial_batch_keeps_fragment_cache_consistent():
    """The applied-prefix BatchDelta must patch a warm fragment cache
    to exactly what a cold evaluation over the settled table returns."""
    from repro.errors import SchemaError

    database = Database()
    table = database.create_table(small_car_schema())
    table.insert_many([_random_row(random.Random(91)) for _ in range(6)])
    cqads = CQAds(database)
    cache = cqads.fragment_cache
    executor = SQLExecutor(database)
    unit = ScoringUnit(conditions=(
        Condition("make", AttributeType.TYPE_I, ConditionOp.EQ, "honda"),
    ))
    unit_id_sets(executor, table, [unit], cache)  # warm
    with pytest.raises(SchemaError):
        table.insert_many(
            [
                {"make": "honda", "model": "prelude", "price": 5000},
                {"make": None, "model": "ghost"},
            ]
        )
    (patched,) = unit_id_sets(executor, table, [unit], cache)
    fresh = {
        record.record_id
        for record in table.snapshot()
        if record["make"] == "honda"
    }
    assert patched == fresh  # includes the landed prefix row
