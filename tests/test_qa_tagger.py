"""Tests for keyword tagging with context switching (Sections 4.1-4.2)."""

from __future__ import annotations

import pytest

from repro.db.schema import AttributeType
from repro.qa.conditions import Condition, ConditionOp, Superlative
from repro.qa.domain import AdsDomain
from repro.qa.tagger import Marker, QuestionTagger

TI = AttributeType.TYPE_I
TII = AttributeType.TYPE_II
TIII = AttributeType.TYPE_III


@pytest.fixture()
def tagger(car_table):
    return QuestionTagger(AdsDomain.from_table("cars", car_table))


def condition_map(tagged):
    return {
        condition.column: condition for condition in tagged.conditions()
    }


class TestPaperExample2:
    """The three questions of the paper's Examples 1-2."""

    def test_q1_two_door_red_bmw(self, tagger):
        # 'doors' isn't a value in the small fixture; color+make suffice
        tagged = tagger.tag("Do you have a red BMW?")
        by_column = condition_map(tagged)
        assert by_column["color"].value == "red"
        assert by_column["make"].value == "bmw"
        assert by_column["make"].attribute_type is TI

    def test_q2_cheapest_with_superlative(self, tagger):
        tagged = tagger.tag("Cheapest toyota with automatic transmission")
        assert tagged.superlatives() == [Superlative("price", maximum=False)]
        by_column = condition_map(tagged)
        assert by_column["make"].value == "toyota"
        assert by_column["transmission"].value == "automatic"

    def test_q3_boundary_with_unit(self, tagger):
        tagged = tagger.tag("I want a camry with less than 20k miles")
        by_column = condition_map(tagged)
        assert by_column["mileage"] == Condition(
            "mileage", TIII, ConditionOp.LT, 20000.0
        )


class TestNumbers:
    def test_currency_binds_to_price(self, tagger):
        tagged = tagger.tag("honda accord less than $2000")
        by_column = condition_map(tagged)
        assert by_column["price"].op is ConditionOp.LT
        assert by_column["price"].value == 2000.0

    def test_unit_after_number(self, tagger):
        tagged = tagger.tag("accord under 5000 dollars")
        assert condition_map(tagged)["price"].value == 5000.0

    def test_attribute_word_before_number(self, tagger):
        tagged = tagger.tag("accord price under 5000")
        assert condition_map(tagged)["price"].op is ConditionOp.LT

    def test_attribute_synonym(self, tagger):
        tagged = tagger.tag("accord cost below 5000")
        assert "price" in condition_map(tagged)

    def test_between(self, tagger):
        tagged = tagger.tag("accord between 2000 and 7000 dollars")
        condition = condition_map(tagged)["price"]
        assert condition.op is ConditionOp.BETWEEN
        assert condition.value == (2000.0, 7000.0)

    def test_between_reversed_bounds_normalized(self, tagger):
        tagged = tagger.tag("accord price between 7000 and 2000")
        assert condition_map(tagged)["price"].value == (2000.0, 7000.0)

    def test_ambiguous_number_is_incomplete(self):
        # With overlapping valid ranges (as in the paper's Example 3),
        # a bare number cannot be resolved and becomes incomplete.
        from tests.conftest import small_car_schema

        domain = AdsDomain.from_values(
            "cars",
            small_car_schema(),
            {"make": ["honda"], "model": ["accord"]},
            numeric_bounds={
                "year": (1985, 2011),
                "price": (500, 80000),
                "mileage": (0, 250000),
            },
        )
        tagged = QuestionTagger(domain).tag("honda accord 2000")
        incomplete = tagged.incomplete()
        assert len(incomplete) == 1
        assert incomplete[0].value == 2000.0
        assert incomplete[0].op is ConditionOp.EQ

    def test_unambiguous_number_resolved_by_bounds(self, tagger):
        # 2000 is below the fixture's observed price minimum (3000), so
        # only year admits it — Section 4.2.2's valid-range analysis.
        tagged = tagger.tag("honda accord 2000")
        assert tagged.incomplete() == []
        assert condition_map(tagged)["year"].value == 2000.0

    def test_context_switch_carries_column(self, tagger):
        # 4000 is in the price bounds, so the bare number inherits the
        # price context from the first clause.
        tagged = tagger.tag("accord price below 7000 and not less than 4000")
        conditions = [c for c in tagged.conditions() if c.column == "price"]
        assert len(conditions) == 2
        assert conditions[1].negated

    def test_year_disambiguated_by_bounds(self, tagger):
        # 150000 is only plausible as mileage in the small fixture
        tagged = tagger.tag("accord less than 150000")
        by_column = condition_map(tagged)
        assert "mileage" in by_column

    def test_unfinished_between_degrades(self, tagger):
        tagged = tagger.tag("accord price within 7000")
        condition = condition_map(tagged)["price"]
        assert condition.op is ConditionOp.LE
        assert condition.value == 7000.0


class TestSuperlatives:
    def test_complete_superlative(self, tagger):
        tagged = tagger.tag("cheapest honda")
        assert tagged.superlatives() == [Superlative("price", False)]

    def test_most_expensive_pair(self, tagger):
        tagged = tagger.tag("most expensive honda")
        assert tagged.superlatives() == [Superlative("price", True)]

    def test_newest_oldest(self, tagger):
        assert tagger.tag("newest camry").superlatives() == [
            Superlative("year", True)
        ]
        assert tagger.tag("oldest camry").superlatives() == [
            Superlative("year", False)
        ]

    def test_partial_superlative_with_attribute(self, tagger):
        tagged = tagger.tag("lowest mileage accord")
        assert tagged.superlatives() == [Superlative("mileage", False)]

    def test_partial_superlative_attribute_first(self, tagger):
        tagged = tagger.tag("accord with mileage lowest")
        assert tagged.superlatives() == [Superlative("mileage", False)]

    def test_max_with_number_reads_as_bound(self, tagger):
        tagged = tagger.tag("accord max $5000")
        condition = condition_map(tagged)["price"]
        assert condition.op is ConditionOp.LE
        assert condition.value == 5000.0


class TestNegationAndBoolean:
    def test_negation_marks_next_condition(self, tagger):
        tagged = tagger.tag("accord not blue")
        assert condition_map(tagged)["color"].negated

    def test_negation_words(self, tagger):
        for word in ("without", "except", "excluding", "no"):
            tagged = tagger.tag(f"accord {word} blue")
            assert condition_map(tagged)["color"].negated, word

    def test_or_marker(self, tagger):
        tagged = tagger.tag("accord or camry")
        assert any(isinstance(item, Marker) and item.operator == "OR"
                   for item in tagged.items)

    def test_and_marker(self, tagger):
        tagged = tagger.tag("blue and red toyota")
        assert any(isinstance(item, Marker) and item.operator == "AND"
                   for item in tagged.items)

    def test_between_and_not_a_marker(self, tagger):
        tagged = tagger.tag("accord between 2000 and 7000 dollars")
        assert not tagged.has_explicit_boolean()


class TestRobustness:
    def test_non_essential_keywords_dropped(self, tagger):
        tagged = tagger.tag("do you maybe possibly have a blue honda")
        assert "maybe" in tagged.dropped_tokens
        assert {c.value for c in tagged.conditions()} == {"blue", "honda"}

    def test_misspelling_corrected_in_stream(self, tagger):
        tagged = tagger.tag("hinda accord")
        assert condition_map(tagged)["make"].value == "honda"
        assert tagged.corrections

    def test_shorthand_expanded(self, tagger):
        tagged = tagger.tag("auto accord")
        assert condition_map(tagged)["transmission"].value == "automatic"

    def test_multiword_value(self, tagger):
        tagged = tagger.tag("bmw 3 series black")
        by_column = condition_map(tagged)
        assert by_column["model"].value == "3 series"
        assert by_column["color"].value == "black"

    def test_empty_question(self, tagger):
        tagged = tagger.tag("")
        assert tagged.items == []

    def test_only_stopwords(self, tagger):
        tagged = tagger.tag("do you have any of the these")
        assert tagged.conditions() == []

    def test_describe_is_stable(self, tagger):
        tagged = tagger.tag("red honda accord under $5000")
        description = tagged.describe()
        assert "color = red" in description
        assert "price < 5000" in description
