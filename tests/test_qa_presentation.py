"""Tests for the Section 4.5 tabular/HTML answer presentation."""

from __future__ import annotations

import pytest

from repro.qa.presentation import answers_as_rows, render_html, render_text


@pytest.fixture(scope="module")
def result_and_schema(cars_system):
    result = cars_system.cqads.answer(
        "Find Honda Accord blue less than 15000 dollars", domain="cars"
    )
    schema = cars_system.domains["cars"].dataset.spec.schema
    return result, schema


class TestRows:
    def test_headers_cover_schema(self, result_and_schema):
        result, schema = result_and_schema
        headers, rows = answers_as_rows(result, schema)
        assert headers[0] == "#"
        assert headers[-2:] == ["match", "Rank_Sim"]
        for column in schema.columns:
            assert column.name in headers
        assert len(rows) == len(result.answers)

    def test_exact_rows_have_blank_score(self, result_and_schema):
        result, schema = result_and_schema
        _, rows = answers_as_rows(result, schema)
        for row, answer in zip(rows, result.answers):
            if answer.exact:
                assert row[-1] == ""
                assert row[-2] == "exact"
            else:
                assert float(row[-1]) == pytest.approx(answer.score, abs=0.01)

    def test_limit(self, result_and_schema):
        result, schema = result_and_schema
        _, rows = answers_as_rows(result, schema, limit=3)
        assert len(rows) == 3


class TestTextRendering:
    def test_contains_question_and_reading(self, result_and_schema):
        result, schema = result_and_schema
        text = render_text(result, schema, limit=5)
        assert result.question in text
        assert "make = honda" in text

    def test_empty_result(self, cars_system):
        result = cars_system.cqads.answer(
            "honda cheaper than 600 and more expensive than 70000",
            domain="cars",
        )
        schema = cars_system.domains["cars"].dataset.spec.schema
        text = render_text(result, schema)
        assert "no results" in text


class TestHTMLRendering:
    def test_well_formed_and_escaped(self, cars_system):
        result = cars_system.cqads.answer(
            "honda <script>alert(1)</script>", domain="cars"
        )
        schema = cars_system.domains["cars"].dataset.spec.schema
        page = render_html(result, schema)
        assert page.startswith("<!DOCTYPE html>")
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page

    def test_row_classes(self, result_and_schema):
        result, schema = result_and_schema
        page = render_html(result, schema)
        if result.exact_answers:
            assert "tr class='exact'" in page
        if result.partial_answers:
            assert "tr class='partial'" in page

    def test_corrections_shown(self, cars_system):
        result = cars_system.cqads.answer("hondaaccord", domain="cars")
        schema = cars_system.domains["cars"].dataset.spec.schema
        page = render_html(result, schema)
        assert "corrections:" in page
        assert "hondaaccord" in page
