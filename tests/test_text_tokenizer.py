"""Tests for repro.text.tokenizer."""

from __future__ import annotations

from repro.text.tokenizer import Token, iter_words, normalize, tokenize, tokenize_with_spans


class TestTokenize:
    def test_plain_words_lowercased(self):
        assert tokenize("Find Honda Accord") == ["find", "honda", "accord"]

    def test_currency_with_commas(self):
        assert tokenize("under $5,000") == ["under", "$5000"]

    def test_currency_with_space_after_sign(self):
        assert tokenize("$ 3000") == ["$3000"]

    def test_currency_with_k_suffix(self):
        assert tokenize("$20k") == ["$20k"]

    def test_bare_number_with_commas_stays_one_token(self):
        assert tokenize("12,400 bucks") == ["12400", "bucks"]

    def test_k_suffix_number(self):
        assert tokenize("20k miles") == ["20k", "miles"]

    def test_alphanumeric_compound_kept(self):
        assert tokenize("2dr mazda") == ["2dr", "mazda"]

    def test_hyphen_splits(self):
        assert tokenize("4-door sedan") == ["4", "door", "sedan"]

    def test_slash_splits(self):
        assert tokenize("automatic/manual") == ["automatic", "manual"]

    def test_punctuation_dropped(self):
        assert tokenize("Do you have a BMW?") == ["do", "you", "have", "a", "bmw"]

    def test_comparison_operators_survive(self):
        assert tokenize("price < 5000") == ["price", "<", "5000"]
        assert tokenize("year >= 2005") == ["year", ">=", "2005"]

    def test_decimal_number(self):
        assert tokenize("1.5 carat") == ["1.5", "carat"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n ") == []


class TestSpans:
    def test_spans_cover_original_text(self):
        text = "red BMW under $5,000"
        tokens = tokenize_with_spans(text)
        assert all(isinstance(token, Token) for token in tokens)
        for token in tokens:
            assert 0 <= token.start < token.end <= len(text)

    def test_spans_are_ordered(self):
        tokens = tokenize_with_spans("cheapest 2dr mazda")
        starts = [token.start for token in tokens]
        assert starts == sorted(starts)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("BMW") == "bmw"

    def test_strips_commas_between_digits(self):
        assert normalize("12,400") == "12400"

    def test_preserves_commas_elsewhere(self):
        # normalize only touches digit,digit commas
        assert normalize("a,b") == "a,b"


class TestIterWords:
    def test_drops_numbers(self):
        assert list(iter_words("honda accord 2000 $5,000")) == ["honda", "accord"]

    def test_keeps_alpha_only(self):
        assert list(iter_words("2dr blue")) == ["blue"]
