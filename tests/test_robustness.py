"""Failure-injection and robustness tests: adversarial questions,
degenerate tables, and the CLI surface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_arg_parser
from repro.db.database import Database
from repro.qa.domain import AdsDomain
from repro.qa.pipeline import CQAds
from tests.conftest import small_car_schema


class TestAdversarialQuestions:
    """The pipeline must never crash on junk input; unknown content is
    non-essential and simply drops out."""

    @pytest.mark.parametrize(
        "question",
        [
            "",
            "   ",
            "?????",
            "!!!",
            "the the the the",
            "0",
            "$",
            "less than",
            "between and",
            "not not not",
            "and or and or",
            "cheapest newest oldest",
            "honda honda honda honda honda",
            "a" * 500,
            "árvíztűrő tükörfúrógép",
            "SELECT * FROM car_ads; DROP TABLE car_ads",
            "🚗 blue honda 🚗",
            "-5000 dollars",
            "99999999999999999999 miles",
            "between 5000",
            "more than less than 3000",
        ],
    )
    def test_never_raises(self, cars_system, question):
        result = cars_system.cqads.answer(question, domain="cars")
        assert result is not None
        assert result.domain == "cars"

    def test_sql_injection_is_just_keywords(self, cars_system):
        result = cars_system.cqads.answer(
            "honda'; DROP TABLE car_ads; --", domain="cars"
        )
        # the table is intact and the question degraded to 'honda'
        assert cars_system.database.has_table("car_ads")
        assert "make = honda" in result.interpretation.describe()

    def test_question_of_only_numbers(self, cars_system):
        result = cars_system.cqads.answer("2005 9000", domain="cars")
        assert result is not None

    def test_repeated_conditions_are_idempotent(self, cars_system):
        once = cars_system.cqads.answer("blue honda", domain="cars")
        thrice = cars_system.cqads.answer(
            "blue blue blue honda honda", domain="cars"
        )
        assert {a.record.record_id for a in once.exact_answers} == {
            a.record.record_id for a in thrice.exact_answers
        }


class TestDegenerateTables:
    def test_empty_table(self):
        database = Database()
        table = database.create_table(small_car_schema())
        domain = AdsDomain.from_table("cars", table)
        cqads = CQAds(database)
        cqads.add_domain(domain)
        result = cqads.answer("blue honda accord", domain="cars")
        assert result.answers == []
        assert result.message == "search retrieved no results"

    def test_single_record_table(self):
        database = Database()
        table = database.create_table(small_car_schema())
        table.insert(
            {"make": "honda", "model": "accord", "color": "blue",
             "price": 9000}
        )
        domain = AdsDomain.from_table("cars", table)
        cqads = CQAds(database)
        cqads.add_domain(domain)
        result = cqads.answer("blue honda accord", domain="cars")
        assert len(result.exact_answers) == 1
        # superlative on the single record
        result = cqads.answer("cheapest honda", domain="cars")
        assert len(result.exact_answers) == 1

    def test_all_null_optional_columns(self):
        """With no color values in the data, "blue" is out of
        vocabulary, drops as non-essential (Section 4.1.4), and the
        question degrades gracefully to "honda"."""
        database = Database()
        table = database.create_table(small_car_schema())
        for index in range(5):
            table.insert({"make": "honda", "model": f"m{index}"})
        domain = AdsDomain.from_table("cars", table)
        cqads = CQAds(database)
        cqads.add_domain(domain)
        result = cqads.answer("blue honda", domain="cars")
        assert "color" not in result.interpretation.describe()
        assert len(result.exact_answers) == 5

    def test_mutating_table_after_registration(self, cars_system):
        """New ads inserted after provisioning are immediately
        queryable (indexes are maintained incrementally)."""
        table = cars_system.domains["cars"].dataset.table
        record = table.insert(
            {"make": "honda", "model": "accord", "color": "maroon",
             "price": 4242, "year": 2003, "mileage": 123456}
        )
        try:
            result = cars_system.cqads.answer(
                "maroon honda accord exactly 4242 dollars", domain="cars"
            )
            assert record.record_id in {
                a.record.record_id for a in result.exact_answers
            }
        finally:
            table.delete(record.record_id)


class TestCLI:
    def test_defaults(self):
        args = build_arg_parser().parse_args(["blue honda accord"])
        assert args.question == "blue honda accord"
        assert args.domain is None
        assert args.ads == 500
        assert args.top == 10

    def test_domain_choice_validated(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["q", "--domain", "boats"])

    def test_domains_list(self):
        args = build_arg_parser().parse_args(
            ["q", "--domains", "cars", "motorcycles", "--ads", "50"]
        )
        assert args.domains == ["cars", "motorcycles"]
        assert args.ads == 50

    def test_main_end_to_end(self, capsys):
        from repro.__main__ import main

        code = main(
            ["cheapest blue honda", "--domain", "cars", "--ads", "60",
             "--show-sql", "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "interpreted:" in out
        assert "sql:" in out
        assert "MIN(price)" in out

    def test_main_contradiction_exit_code(self, capsys):
        from repro.__main__ import main

        code = main(
            ["honda cheaper than 2000 and more expensive than 9000",
             "--domain", "cars", "--ads", "40"]
        )
        assert code == 1
        assert "no results" in capsys.readouterr().out
