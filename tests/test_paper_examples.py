"""End-to-end tests of the paper's own worked examples.

Each test quotes the example from the paper and asserts CQAds
reproduces its documented behaviour against the provisioned cars
system.
"""

from __future__ import annotations

import pytest

from repro.qa.conditions import BooleanOperator, ConditionGroup


@pytest.fixture(scope="module")
def cqads(cars_system):
    return cars_system.cqads


def describe(cqads, question: str) -> str:
    result = cqads.answer(question, domain="cars")
    assert result.interpretation is not None, result.message
    return result.interpretation.describe()


class TestExample1And2:
    """Q1-Q3 of Examples 1-2 (tagging and simplification)."""

    def test_q1(self, cqads):
        rendered = describe(cqads, "Do you have a 2 door red BMW?")
        assert "doors = 2 door" in rendered
        assert "color = red" in rendered
        assert "make = bmw" in rendered

    def test_q2(self, cqads):
        result = cqads.answer(
            "Cheapest 2dr mazda with automatic transmission", domain="cars"
        )
        rendered = result.interpretation.describe()
        assert "doors = 2 door" in rendered
        assert "make = mazda" in rendered
        assert "transmission = automatic" in rendered
        assert "MIN(price)" in rendered

    def test_q3(self, cqads):
        rendered = describe(
            cqads, "I want a 4 wheel drive with less than 20k miles"
        )
        assert "drivetrain = 4 wheel drive" in rendered
        assert "mileage < 20000" in rendered


class TestSection421Spelling:
    def test_hondaaccord(self, cqads):
        result = cqads.answer("Hondaaccord less than $2000", domain="cars")
        assert any(c.kind == "split" for c in result.corrections)
        rendered = result.interpretation.describe()
        assert "make = honda" in rendered
        assert "model = accord" in rendered
        assert "price < 2000" in rendered

    def test_honda_accorr(self, cqads):
        result = cqads.answer("honda accorr less than $2000", domain="cars")
        assert any(c.kind == "respell" for c in result.corrections)
        assert "model = accord" in result.interpretation.describe()


class TestExample3Incomplete:
    def test_honda_accord_2000_unions_candidates(self, cqads):
        """2000 is in the valid range of year, price and mileage, so
        CQAds unions the readings (Example 3)."""
        result = cqads.answer("Honda accord 2000", domain="cars")
        rendered = result.interpretation.describe()
        assert "year = 2000" in rendered
        assert "OR" in rendered

    def test_less_than_4000_excludes_year(self, cqads):
        """4000 is not a valid year, so only price/mileage remain."""
        result = cqads.answer("Honda accord less than 4000", domain="cars")
        rendered = result.interpretation.describe()
        assert "year" not in rendered


class TestSection43EvaluationOrder:
    def test_cheapest_honda(self, cars_system):
        """Evaluating 'cheapest' before 'Honda' would be wrong; the
        answer must be the cheapest Honda, not a cheaper non-Honda."""
        result = cars_system.cqads.answer("cheapest honda", domain="cars")
        exact = result.exact_answers
        assert exact
        table = cars_system.domains["cars"].dataset.table
        honda_prices = [
            record["price"] for record in table if record["make"] == "honda"
        ]
        assert exact[0].record["make"] == "honda"
        assert exact[0].record["price"] == min(honda_prices)


class TestExample6Boolean:
    def test_q1_range_combination(self, cqads):
        rendered = describe(
            cqads, "Any car priced below $7000 and not less than $2000"
        )
        assert "price >= 2000" in rendered
        assert "price < 7000" in rendered

    def test_q2_rule_2_and_4(self, cqads):
        result = cqads.answer(
            "I want a Toyota Corolla or a silver not manual not 2 dr Honda Accord",
            domain="cars",
        )
        tree = result.interpretation.tree
        assert isinstance(tree, ConditionGroup)
        assert tree.operator is BooleanOperator.OR
        rendered = result.interpretation.describe()
        assert "make = toyota" in rendered and "model = corolla" in rendered
        assert "NOT transmission = manual" in rendered
        assert "NOT doors = 2 door" in rendered
        assert "color = silver" in rendered


class TestSection54SurveyQuestions:
    def test_q3_black_silver_mutex(self, cqads):
        """'Show me Black Silver cars' — CQAds changes the implicit AND
        to OR because the values are mutually exclusive."""
        rendered = describe(cqads, "Show me Black Silver cars")
        assert "color = black OR color = silver" in rendered

    def test_q8_models_and_colors(self, cqads):
        rendered = describe(
            cqads, "Focus, Corolla, or Civic. Show only black and grey cars"
        )
        assert "model = focus OR model = corolla OR model = civic" in rendered
        assert "color = black OR color = grey" in rendered


class TestExample7SQL:
    def test_sql_shape(self, cqads):
        result = cqads.answer("Do you have automatic blue cars?", domain="cars")
        assert "record_id IN (SELECT record_id FROM car_ads" in result.sql
        assert "transmission = 'automatic'" in result.sql
        assert "color = 'blue'" in result.sql
        for answer in result.exact_answers:
            assert answer.record["transmission"] == "automatic"
            assert answer.record["color"] == "blue"


class TestTable2:
    def test_partial_ranking_shape(self, cars_system):
        """Table 2: partial answers to the running example, with
        similarity kinds matching the paper's rightmost column."""
        from repro.evaluation.experiments import table2_experiment

        rows = table2_experiment(cars_system)
        assert len(rows) == 5
        scores = [row.score for row in rows]
        assert scores == sorted(scores, reverse=True)
        kinds = {row.similarity_kind for row in rows}
        assert kinds <= {"TI_Sim", "Feat_Sim", "Num_Sim", "mixed"}
        # cross-product rows (TI_Sim) must rank by learned similarity:
        # any same-segment sedan outranks unrelated products
        ti_rows = [row for row in rows if row.similarity_kind == "TI_Sim"]
        for row in ti_rows:
            assert row.identity != "honda accord"
