"""Tests for the async service tier (:mod:`repro.serve`).

The image has no pytest-asyncio, so every async scenario runs inside
``asyncio.run()`` from a plain test function — the ``run`` helper
below.  Deterministic blocking is done with :class:`GatedPipeline`, a
pipeline wrapper that computes its answer and then parks the worker
thread on an event, which lets a test hold a flight open while it
attaches waiters, lands mutations or closes the service.
"""

from __future__ import annotations

import asyncio
import math
import threading

import pytest

from repro.api import AnswerRequest, AnswerService, SystemBuilder
from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    RateLimitedError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from repro.perf.answer_cache import AnswerCache
from repro.qa.pipeline import SERVICE_TIMING_KEYS
from repro.serve import (
    AdmissionGate,
    AsyncAnswerService,
    RateLimiter,
    SingleFlight,
    TokenBucket,
)
from repro.system import build_system

QUESTION = "honda accord blue less than 15000 dollars"


def run(coro):
    """Run one async scenario to completion (no pytest-asyncio here)."""
    return asyncio.run(coro)


async def wait_for_event(event: threading.Event, timeout: float = 10.0) -> None:
    """Await a thread-set event without blocking the loop."""
    for _ in range(int(timeout / 0.005)):
        if event.is_set():
            return
        await asyncio.sleep(0.005)
    raise AssertionError("event was never set")


async def settle(seconds: float = 0.02) -> None:
    """Give freshly-created tasks a few loop passes to reach an await."""
    await asyncio.sleep(seconds)


def _signature(result):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind)
        for a in result.answers
    ]


class FakeClock:
    """A hand-cranked monotonic clock for token-bucket tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class GatedPipeline:
    """Computes the real answer, then blocks until released.

    The answer is computed *before* the block, so a mutation landing
    while the flight is parked happens strictly after the result was
    derived — the result is a genuine pre-mutation snapshot.
    """

    def __init__(self, cqads) -> None:
        self.inner = cqads.pipeline()
        self.release = threading.Event()
        self.computed = threading.Event()
        self.runs = 0
        self._lock = threading.Lock()

    def run(self, cqads, request):
        result = self.inner.run(cqads, request)
        with self._lock:
            self.runs += 1
        self.computed.set()
        if not self.release.wait(timeout=30):
            raise TimeoutError("GatedPipeline was never released")
        return result


class ExplodingPipeline:
    """Blocks like :class:`GatedPipeline`, then raises."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Event()
        self.runs = 0

    def run(self, cqads, request):
        self.runs += 1
        self.entered.set()
        self.release.wait(timeout=30)
        raise ValueError("poisoned question")


@pytest.fixture(scope="module")
def serve_system():
    """A tiny cars-only build shared by the module; mutating tests
    insert a spare row and delete it again (the repo's idiom)."""
    return build_system(
        ["cars"],
        ads_per_domain=60,
        sessions_per_domain=80,
        corpus_documents=80,
    )


# ----------------------------------------------------------------------
# token buckets
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_serves_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_continuously_and_clamps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        clock.advance(0.5)  # 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1000.0)  # burst headroom never exceeds capacity
        assert bucket.available == pytest.approx(4.0)

    def test_retry_after_reports_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=1.0, clock=clock)
        assert bucket.retry_after() == 0.0
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)

    def test_zero_rate_hard_caps(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, capacity=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1e6)
        assert not bucket.try_acquire()
        assert bucket.retry_after() == math.inf

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)


class TestRateLimiter:
    def test_unknown_tenants_share_the_default_bucket(self):
        clock = FakeClock()
        limiter = RateLimiter(default=(0.0, 2.0), clock=clock)
        limiter.admit(None)
        limiter.admit("stranger")  # same bucket as the anonymous call
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.admit("other-stranger")
        # A shared-bucket shed names no tenant: nobody in particular
        # exceeded *their* budget.
        assert excinfo.value.tenant is None
        assert excinfo.value.retry_after == math.inf

    def test_configured_tenant_gets_a_private_bucket(self):
        clock = FakeClock()
        limiter = RateLimiter(
            default=None, per_tenant={"vip": (0.0, 1.0)}, clock=clock
        )
        limiter.admit("vip")
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.admit("vip")
        assert excinfo.value.tenant == "vip"
        # No default bucket: everyone else is unlimited.
        for _ in range(10):
            limiter.admit("anonymous-horde")

    def test_set_tenant_replaces_the_budget(self):
        clock = FakeClock()
        limiter = RateLimiter(per_tenant={"t": (0.0, 1.0)}, clock=clock)
        limiter.admit("t")
        limiter.set_tenant("t", rate=0.0, burst=5.0)
        for _ in range(5):
            limiter.admit("t")
        with pytest.raises(RateLimitedError):
            limiter.admit("t")

    def test_error_taxonomy(self):
        assert issubclass(RateLimitedError, ServiceOverloadError)
        assert issubclass(QueueFullError, ServiceOverloadError)
        assert issubclass(ServiceOverloadError, ServiceError)
        assert issubclass(DeadlineExceededError, ServiceError)
        assert issubclass(ServiceClosedError, ServiceError)
        assert issubclass(ServiceClosedError, RuntimeError)


# ----------------------------------------------------------------------
# the admission gate
# ----------------------------------------------------------------------
class TestAdmissionGate:
    def test_free_slot_admits_immediately(self):
        async def scenario():
            gate = AdmissionGate(slots=2, max_queue=1)
            assert await gate.acquire() == 0.0
            assert gate.in_flight == 1 and gate.queue_depth == 0
            gate.release()
            assert gate.in_flight == 0

        run(scenario())

    def test_queue_bound_sheds_immediately(self):
        async def scenario():
            gate = AdmissionGate(slots=1, max_queue=1)
            await gate.acquire()
            queued = asyncio.create_task(gate.acquire())
            await settle()
            assert gate.queue_depth == 1
            with pytest.raises(QueueFullError) as excinfo:
                await gate.acquire()
            assert excinfo.value.capacity == 1
            gate.release()
            assert await queued > 0.0  # measured time queued
            gate.release()

        run(scenario())

    def test_handoff_is_fifo(self):
        async def scenario():
            gate = AdmissionGate(slots=1, max_queue=4)
            await gate.acquire()
            order: list[str] = []

            async def waiter(name: str) -> None:
                await gate.acquire()
                order.append(name)

            tasks = [
                asyncio.create_task(waiter(name)) for name in ("a", "b", "c")
            ]
            await settle()
            for _ in range(3):
                gate.release()
                await settle()
            await asyncio.gather(*tasks)
            assert order == ["a", "b", "c"]
            gate.release()  # the last waiter still holds the one slot
            assert gate.in_flight == 0

        run(scenario())

    def test_queued_deadline_expires_and_frees_the_place(self):
        async def scenario():
            gate = AdmissionGate(slots=1, max_queue=1)
            await gate.acquire()
            with pytest.raises(DeadlineExceededError) as excinfo:
                await gate.acquire(timeout=0.01)
            assert excinfo.value.phase == "queued"
            assert gate.queue_depth == 0  # the expired waiter left
            with pytest.raises(DeadlineExceededError):
                await gate.acquire(timeout=0.0)  # pre-expired budget
            gate.release()
            assert await gate.acquire() == 0.0

        run(scenario())

    def test_shed_fails_every_queued_waiter(self):
        async def scenario():
            gate = AdmissionGate(slots=1, max_queue=4)
            await gate.acquire()
            tasks = [asyncio.create_task(gate.acquire()) for _ in range(3)]
            await settle()
            assert gate.shed(lambda: ServiceClosedError("gate")) == 3
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(r, ServiceClosedError) for r in results)
            assert gate.queue_depth == 0
            assert gate.in_flight == 1  # the holder is unaffected
            gate.release()

        run(scenario())

    def test_cancelled_waiter_leaves_the_queue(self):
        async def scenario():
            gate = AdmissionGate(slots=1, max_queue=2)
            await gate.acquire()
            task = asyncio.create_task(gate.acquire())
            await settle()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert gate.queue_depth == 0
            gate.release()
            assert gate.in_flight == 0  # slot came back, nobody waiting

        run(scenario())

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdmissionGate(slots=0, max_queue=1)
        with pytest.raises(ValueError):
            AdmissionGate(slots=1, max_queue=-1)


# ----------------------------------------------------------------------
# single-flight coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_duplicates_share_one_engine_invocation(self, serve_system):
        async def scenario():
            gated = GatedPipeline(serve_system.cqads)
            sync = AnswerService(serve_system.cqads, pipeline=gated)
            svc = AsyncAnswerService(sync, workers=2, max_queue=8)
            request = AnswerRequest(question=QUESTION, domain="cars")
            leader = asyncio.create_task(svc.answer(request))
            await wait_for_event(gated.computed)
            waiters = [
                asyncio.create_task(svc.answer(request)) for _ in range(4)
            ]
            await settle()
            assert svc.stats().coalesced == 4
            gated.release.set()
            results = await asyncio.gather(leader, *waiters)
            stats = svc.stats()
            assert gated.runs == 1
            assert stats.executed == 1
            assert stats.submitted == 5 and stats.completed == 5
            assert stats.coalescing_hit_rate == pytest.approx(0.8)
            flags = sorted(r.timings["coalesced"] for r in results)
            assert flags == [False, True, True, True, True]
            first = _signature(results[0])
            assert all(_signature(r) == first for r in results[1:])
            await svc.close()
            sync.close()

        run(scenario())

    def test_distinct_questions_do_not_coalesce(self, serve_system):
        async def scenario():
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads), workers=2, own_service=True
            )
            await asyncio.gather(
                svc.answer(AnswerRequest(question=QUESTION, domain="cars")),
                svc.answer(
                    AnswerRequest(question="red toyota camry", domain="cars")
                ),
            )
            stats = svc.stats()
            assert stats.executed == 2 and stats.coalesced == 0
            await svc.close()

        run(scenario())

    def test_sequential_repeats_start_fresh_flights(self, serve_system):
        async def scenario():
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads), workers=2, own_service=True
            )
            request = AnswerRequest(question=QUESTION, domain="cars")
            await svc.answer(request)
            await svc.answer(request)
            stats = svc.stats()
            # Single-flight collapses *concurrent* repeats only —
            # sequential caching is the answer cache's job.
            assert stats.executed == 2 and stats.coalesced == 0
            assert stats.open_flights == 0
            await svc.close()

        run(scenario())

    def test_failure_fans_out_to_every_caller(self, serve_system):
        async def scenario():
            exploding = ExplodingPipeline()
            sync = AnswerService(serve_system.cqads, pipeline=exploding)
            svc = AsyncAnswerService(sync, workers=2, max_queue=8)
            request = AnswerRequest(question=QUESTION, domain="cars")
            leader = asyncio.create_task(svc.answer(request))
            await wait_for_event(exploding.entered)
            waiters = [
                asyncio.create_task(svc.answer(request)) for _ in range(2)
            ]
            await settle()
            exploding.release.set()
            results = await asyncio.gather(
                leader, *waiters, return_exceptions=True
            )
            assert all(isinstance(r, ValueError) for r in results)
            stats = svc.stats()
            assert exploding.runs == 1 and stats.executed == 1
            assert stats.failed == 3 and stats.completed == 0
            await svc.close()
            sync.close()

        run(scenario())

    def test_coalesce_disabled_runs_every_request(self, serve_system):
        async def scenario():
            gated = GatedPipeline(serve_system.cqads)
            sync = AnswerService(serve_system.cqads, pipeline=gated)
            svc = AsyncAnswerService(
                sync, workers=2, max_queue=8, coalesce=False
            )
            request = AnswerRequest(question=QUESTION, domain="cars")
            tasks = [asyncio.create_task(svc.answer(request)) for _ in range(3)]
            await settle()
            gated.release.set()
            results = await asyncio.gather(*tasks)
            stats = svc.stats()
            assert gated.runs == 3 and stats.executed == 3
            assert stats.coalesced == 0
            assert all(r.timings["coalesced"] is False for r in results)
            await svc.close()
            sync.close()

        run(scenario())

    def test_flight_keys_isolate_options_and_cache_bypass(self, serve_system):
        async def scenario():
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads), workers=1, own_service=True
            )
            from repro.api.requests import ResolvedOptions

            request = AnswerRequest(question=QUESTION, domain="cars")
            base = ResolvedOptions.resolve(request.options, svc.cqads)
            key = svc._flight_key(request, base)
            # Normalization: spacing and case do not split flights.
            variant = AnswerRequest(
                question="  HONDA   accord blue less than 15000 DOLLARS ",
                domain="cars",
            )
            assert svc._flight_key(variant, base) == key
            # An answer-affecting knob splits the flight.
            richer = ResolvedOptions.resolve(
                request.with_options(max_answers=5).options, svc.cqads
            )
            assert svc._flight_key(request, richer) != key
            # So does cache bypass: a use_cache=False caller must not
            # be handed a flight that may resolve from the cache.
            bypass = ResolvedOptions.resolve(
                request.with_options(use_cache=False).options, svc.cqads
            )
            assert svc._flight_key(request, bypass) != key
            # The deadline is caller-local and must NOT split flights.
            hurried = ResolvedOptions.resolve(
                request.with_options(deadline=0.5).options, svc.cqads
            )
            assert svc._flight_key(request, hurried) == key
            await svc.close()

        run(scenario())


# ----------------------------------------------------------------------
# mutation churn (the satellite's headline scenario)
# ----------------------------------------------------------------------
class TestMutationChurn:
    def test_post_mutation_arrival_never_joins_a_stale_flight(
        self, serve_system
    ):
        """A coalesced flight spanning a table mutation: callers
        already attached get the pre-mutation snapshot (sync
        semantics), a caller arriving *after* the mutation gets a
        fresh flight whose answer reflects the new row — and the
        answer cache can only ever serve the fresh result."""

        async def scenario():
            cqads = serve_system.cqads
            gated = GatedPipeline(cqads)
            sync = AnswerService(cqads, pipeline=gated, cache=AnswerCache(32))
            svc = AsyncAnswerService(sync, workers=2, max_queue=8)
            table = cqads.database.table(
                cqads.domain("cars").schema.table_name
            )
            request = AnswerRequest(question=QUESTION, domain="cars")
            # A reference answer (and a donor row known to match it).
            reference = AnswerService(cqads).answer(request)
            donor = dict(reference.answers[0].record)
            spare = None
            try:
                leader = asyncio.create_task(svc.answer(request))
                await wait_for_event(gated.computed)  # snapshot taken
                early = asyncio.create_task(svc.answer(request))
                await settle()
                assert svc.stats().coalesced == 1
                # The mutation lands mid-flight: generations bump, the
                # open flight's key becomes unreachable.
                spare = table.insert(donor)
                late = asyncio.create_task(svc.answer(request))
                await settle()
                assert svc.stats().coalesced == 1  # late did NOT join
                assert svc.stats().open_flights == 2
                gated.release.set()
                first, second, third = await asyncio.gather(
                    leader, early, late
                )
                assert second.timings["coalesced"] is True
                assert third.timings["coalesced"] is False
                assert gated.runs == 2  # one stale flight, one fresh
                ids = lambda result: {
                    a.record.record_id for a in result.answers
                }
                # Attached callers share the pre-mutation snapshot.
                assert _signature(first) == _signature(second)
                assert spare.record_id not in ids(first)
                # The post-mutation caller sees the new row, exactly
                # as an uncached engine run does.
                fresh = AnswerService(cqads).answer(request)
                assert spare.record_id in ids(third)
                assert _signature(third) == _signature(fresh)
                # No stale-resurrect: the cache serves only the fresh
                # result (the stale store landed under an unreachable
                # pre-mutation generation).
                followup = sync.answer(request)
                assert followup.timings["cache"] is True
                assert _signature(followup) == _signature(fresh)
                await svc.close()
                sync.close()
            finally:
                if spare is not None:
                    table.delete(spare.record_id)

        run(scenario())

    def test_flight_key_generations_track_mutations(self, serve_system):
        async def scenario():
            cqads = serve_system.cqads
            svc = AsyncAnswerService(
                AnswerService(cqads), workers=1, own_service=True
            )
            from repro.api.requests import ResolvedOptions

            table = cqads.database.table(
                cqads.domain("cars").schema.table_name
            )
            routed = AnswerRequest(question=QUESTION, domain="cars")
            classified = AnswerRequest(question=QUESTION)
            resolved = ResolvedOptions.resolve(routed.options, cqads)
            routed_before = svc._flight_key(routed, resolved)
            classified_before = svc._flight_key(classified, resolved)
            donor = dict(next(iter(table)))
            spare = table.insert(donor)
            try:
                # Both the per-domain and the global generation moved.
                assert svc._flight_key(routed, resolved) != routed_before
                assert (
                    svc._flight_key(classified, resolved)
                    != classified_before
                )
            finally:
                table.delete(spare.record_id)
            # The delete bumped generations again: keys are monotonic,
            # never reused.
            assert svc._flight_key(routed, resolved) != routed_before
            await svc.close()

        run(scenario())


# ----------------------------------------------------------------------
# shed paths: rate limits, queue bounds, deadlines
# ----------------------------------------------------------------------
class TestShedPaths:
    def test_rate_limited_requests_shed_with_retry_hint(self, serve_system):
        async def scenario():
            clock = FakeClock()
            limiter = RateLimiter(default=(1.0, 2.0), clock=clock)
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads),
                workers=2,
                rate_limiter=limiter,
                own_service=True,
            )
            request = AnswerRequest(question=QUESTION, domain="cars")
            await svc.answer(request)
            await svc.answer(request)
            with pytest.raises(RateLimitedError) as excinfo:
                await svc.answer(request)
            assert excinfo.value.tenant is None  # shared default bucket
            assert excinfo.value.retry_after == pytest.approx(1.0)
            clock.advance(1.0)  # one token refilled
            await svc.answer(request)
            stats = svc.stats()
            assert stats.rate_limited == 1
            assert stats.submitted == 4 and stats.completed == 3
            assert stats.shed == 1
            await svc.close()

        run(scenario())

    def test_tenant_budgets_are_private(self, serve_system):
        async def scenario():
            clock = FakeClock()
            limiter = RateLimiter(
                default=(0.0, 1.0),
                per_tenant={"vip": (0.0, 3.0)},
                clock=clock,
            )
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads),
                workers=2,
                rate_limiter=limiter,
                own_service=True,
            )
            request = AnswerRequest(question=QUESTION, domain="cars")
            for _ in range(3):
                await svc.answer(request, tenant="vip")
            with pytest.raises(RateLimitedError) as excinfo:
                await svc.answer(request, tenant="vip")
            assert excinfo.value.tenant == "vip"
            # The default bucket was untouched by vip's spending.
            await svc.answer(request, tenant="anonymous")
            with pytest.raises(RateLimitedError) as excinfo:
                await svc.answer(request, tenant="someone-else")
            assert excinfo.value.tenant is None
            await svc.close()

        run(scenario())

    def test_queue_full_sheds_beyond_the_bound(self, serve_system):
        async def scenario():
            gated = GatedPipeline(serve_system.cqads)
            sync = AnswerService(serve_system.cqads, pipeline=gated)
            svc = AsyncAnswerService(sync, workers=1, max_queue=1)
            running = asyncio.create_task(
                svc.answer(AnswerRequest(question=QUESTION, domain="cars"))
            )
            await wait_for_event(gated.computed)
            queued = asyncio.create_task(
                svc.answer(
                    AnswerRequest(question="red toyota camry", domain="cars")
                )
            )
            await settle()
            assert svc.stats().queue_depth == 1
            with pytest.raises(QueueFullError) as excinfo:
                await svc.answer(
                    AnswerRequest(question="blue honda civic", domain="cars")
                )
            assert excinfo.value.capacity == 1
            gated.release.set()
            first, second = await asyncio.gather(running, queued)
            assert second.timings["queue_wait"] > 0.0
            assert first.timings["queue_wait"] == 0.0
            stats = svc.stats()
            assert stats.queue_full == 1 and stats.completed == 2
            assert stats.submitted == stats.completed + stats.shed
            await svc.close()
            sync.close()

        run(scenario())

    def test_deadline_expires_while_queued(self, serve_system):
        async def scenario():
            gated = GatedPipeline(serve_system.cqads)
            sync = AnswerService(serve_system.cqads, pipeline=gated)
            svc = AsyncAnswerService(sync, workers=1, max_queue=4)
            running = asyncio.create_task(
                svc.answer(AnswerRequest(question=QUESTION, domain="cars"))
            )
            await wait_for_event(gated.computed)
            hurried = AnswerRequest(
                question="red toyota camry", domain="cars"
            ).with_options(deadline=0.05)
            with pytest.raises(DeadlineExceededError) as excinfo:
                await svc.answer(hurried)
            assert excinfo.value.phase == "queued"
            assert excinfo.value.deadline == pytest.approx(0.05)
            gated.release.set()
            await running
            assert svc.stats().deadline_expired == 1
            await svc.close()
            sync.close()

        run(scenario())

    def test_deadline_expires_awaiting_but_waiter_outlives_leader(
        self, serve_system
    ):
        async def scenario():
            gated = GatedPipeline(serve_system.cqads)
            sync = AnswerService(serve_system.cqads, pipeline=gated)
            svc = AsyncAnswerService(sync, workers=2, max_queue=4)
            request = AnswerRequest(question=QUESTION, domain="cars")
            leader = asyncio.create_task(
                svc.answer(request.with_options(deadline=0.05))
            )
            await wait_for_event(gated.computed)
            patient = asyncio.create_task(svc.answer(request))
            await settle()
            with pytest.raises(DeadlineExceededError) as excinfo:
                await leader
            # The leader held a slot: its budget died awaiting the
            # engine, not queued for admission.
            assert excinfo.value.phase == "awaiting"
            gated.release.set()
            # The engine call is not abandoned — the patient waiter
            # still collects the result the leader paid for.
            result = await patient
            assert result.timings["coalesced"] is True
            assert gated.runs == 1
            stats = svc.stats()
            assert stats.deadline_expired == 1 and stats.completed == 1
            await svc.close()
            sync.close()

        run(scenario())

    def test_deadline_between_admission_and_dispatch_is_awaiting(
        self, serve_system
    ):
        """A flight can win its gate slot and still die before the
        executor thread picks it up.  That budget expired *awaiting*
        (the slot was held), not *queued* — and the request must be
        terminal exactly once: the orphaned flight finishing later may
        not retro-count it as completed."""

        async def scenario():
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads),
                workers=1,
                max_queue=4,
                own_service=True,
            )
            release = threading.Event()
            # Park the sole executor thread *without* holding a gate
            # slot: admission succeeds, dispatch stalls behind it.
            parked = svc._executor.submit(release.wait, 10.0)
            hurried = AnswerRequest(
                question=QUESTION, domain="cars"
            ).with_options(deadline=0.05)
            with pytest.raises(DeadlineExceededError) as excinfo:
                await svc.answer(hurried)
            assert excinfo.value.phase == "awaiting"
            release.set()
            assert parked.result(timeout=10.0)
            await svc.close()  # drains the orphaned flight
            stats = svc.stats()
            assert stats.deadline_expired == 1
            assert stats.completed == 0 and stats.failed == 0
            assert stats.submitted == stats.completed + stats.shed == 1
            assert stats.executed == 1  # the flight itself did run

        run(scenario())

    def test_default_deadline_applies_when_options_carry_none(
        self, serve_system
    ):
        async def scenario():
            gated = GatedPipeline(serve_system.cqads)
            sync = AnswerService(serve_system.cqads, pipeline=gated)
            svc = AsyncAnswerService(
                sync, workers=1, max_queue=4, default_deadline=0.05
            )
            with pytest.raises(DeadlineExceededError):
                await svc.answer(AnswerRequest(question=QUESTION, domain="cars"))
            gated.release.set()  # let the orphaned flight finish
            await svc.close()
            sync.close()

        run(scenario())

    def test_invalid_deadlines_are_rejected_up_front(self, serve_system):
        async def scenario():
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads), workers=1, own_service=True
            )
            request = AnswerRequest(question=QUESTION, domain="cars")
            with pytest.raises(ValueError):
                await svc.answer(request.with_options(deadline=0.0))
            await svc.close()

        run(scenario())
        with pytest.raises(ValueError):
            AsyncAnswerService(
                AnswerService(serve_system.cqads), default_deadline=-1.0
            )
        with pytest.raises(ValueError):
            AsyncAnswerService(AnswerService(serve_system.cqads), workers=0)


# ----------------------------------------------------------------------
# lifecycle: drain, shed, idempotence
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_closed_service_refuses_new_work(self, serve_system):
        async def scenario():
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads), workers=1, own_service=True
            )
            await svc.ask(QUESTION, domain="cars")
            await svc.close()
            await svc.close()  # idempotent
            with pytest.raises(ServiceClosedError):
                await svc.answer(QUESTION)
            # Owned sync service was released with it.
            with pytest.raises(ServiceClosedError):
                svc.service.answer(QUESTION)

        run(scenario())

    def test_async_context_manager_closes_on_exit(self, serve_system):
        async def scenario():
            async with AsyncAnswerService(
                AnswerService(serve_system.cqads), workers=1, own_service=True
            ) as svc:
                result = await svc.ask(QUESTION, domain="cars")
                assert result.answers
            with pytest.raises(ServiceClosedError):
                await svc.answer(QUESTION)

        run(scenario())

    def test_drain_close_waits_for_running_flights(self, serve_system):
        async def scenario():
            gated = GatedPipeline(serve_system.cqads)
            sync = AnswerService(serve_system.cqads, pipeline=gated)
            svc = AsyncAnswerService(sync, workers=1, max_queue=4)
            request = AnswerRequest(question=QUESTION, domain="cars")
            running = asyncio.create_task(svc.answer(request))
            await wait_for_event(gated.computed)
            closing = asyncio.create_task(svc.close())
            await settle()
            assert not closing.done()  # draining, not abandoning
            with pytest.raises(ServiceClosedError):
                await svc.answer(request)  # but new work is refused
            gated.release.set()
            await closing
            result = await running
            assert result.answers is not None
            assert svc.stats().completed == 1
            sync.close()

        run(scenario())

    def test_shed_close_fails_queued_flights_with_typed_error(
        self, serve_system
    ):
        async def scenario():
            gated = GatedPipeline(serve_system.cqads)
            sync = AnswerService(serve_system.cqads, pipeline=gated)
            svc = AsyncAnswerService(sync, workers=1, max_queue=4)
            running = asyncio.create_task(
                svc.answer(AnswerRequest(question=QUESTION, domain="cars"))
            )
            await wait_for_event(gated.computed)
            queued = asyncio.create_task(
                svc.answer(
                    AnswerRequest(question="red toyota camry", domain="cars")
                )
            )
            await settle()
            assert svc.stats().queue_depth == 1
            closing = asyncio.create_task(svc.close(drain=False))
            with pytest.raises(ServiceClosedError):
                await queued  # shed from the queue, typed
            assert not closing.done()  # the running flight still drains
            gated.release.set()
            await closing
            result = await running  # running work was never abandoned
            assert result.answers is not None
            stats = svc.stats()
            assert stats.closed_while_queued == 1
            assert stats.completed == 1
            assert gated.runs == 1  # the shed flight never ran
            sync.close()

        run(scenario())

    def test_wrapping_a_bare_engine_owns_the_service(self, serve_system):
        async def scenario():
            svc = AsyncAnswerService(serve_system.cqads, workers=2)
            result = await svc.ask(QUESTION, domain="cars")
            assert result.answers
            inner = svc.service
            await svc.close()
            with pytest.raises(ServiceClosedError):
                inner.answer(QUESTION)

        run(scenario())


# ----------------------------------------------------------------------
# the answer-cache timing flag (satellite: timings["cache"])
# ----------------------------------------------------------------------
class TestCacheTimingFlag:
    def test_sync_service_reports_hit_and_miss(self, serve_system):
        service = AnswerService(serve_system.cqads, cache=AnswerCache(16))
        request = AnswerRequest(question=QUESTION, domain="cars")
        miss = service.answer(request)
        hit = service.answer(request)
        assert miss.timings["cache"] is False
        assert hit.timings["cache"] is True
        assert _signature(miss) == _signature(hit)
        service.close()

    def test_flag_does_not_pollute_elapsed_seconds(self, serve_system):
        service = AnswerService(serve_system.cqads, cache=AnswerCache(16))
        request = AnswerRequest(question=QUESTION, domain="cars")
        result = service.answer(request)
        stage_total = sum(
            seconds
            for stage, seconds in result.timings.items()
            if stage not in SERVICE_TIMING_KEYS
        )
        assert result.elapsed_seconds == pytest.approx(stage_total)
        # A boolean flag naively summed would add ~1.0s; elapsed must
        # stay in engine territory (well under a second on 60 ads).
        assert result.elapsed_seconds < 0.9
        service.close()

    def test_cacheless_and_bypassing_requests_leave_flag_unset(
        self, serve_system
    ):
        bare = AnswerService(serve_system.cqads)
        assert "cache" not in bare.answer(
            AnswerRequest(question=QUESTION, domain="cars")
        ).timings
        cached = AnswerService(serve_system.cqads, cache=AnswerCache(16))
        bypass = cached.answer(
            AnswerRequest(question=QUESTION, domain="cars").with_options(
                use_cache=False
            )
        )
        assert "cache" not in bypass.timings
        bare.close()
        cached.close()

    def test_async_service_surfaces_all_three_flags(self, serve_system):
        async def scenario():
            sync = AnswerService(serve_system.cqads, cache=AnswerCache(16))
            svc = AsyncAnswerService(sync, workers=2)
            request = AnswerRequest(question=QUESTION, domain="cars")
            first = await svc.answer(request)
            second = await svc.answer(request)
            assert first.timings["cache"] is False
            assert second.timings["cache"] is True  # answer-cache hit
            assert second.timings["coalesced"] is False  # not concurrent
            assert second.timings["queue_wait"] == 0.0
            # Service metadata never inflates the engine-time report.
            assert second.elapsed_seconds == first.elapsed_seconds
            await svc.close()
            sync.close()

        run(scenario())


# ----------------------------------------------------------------------
# wiring: BuiltSystem, SystemBuilder, batch and stats surfaces
# ----------------------------------------------------------------------
class TestWiring:
    def test_built_system_async_service(self, serve_system):
        async def scenario():
            svc = serve_system.async_service(cache=16, workers=2, max_queue=4)
            assert svc.workers == 2
            assert svc.service.cache is not None
            result = await svc.ask(QUESTION, domain="cars")
            assert result.timings["cache"] is False
            inner = svc.service
            await svc.close()  # owns the sync service it built
            with pytest.raises(ServiceClosedError):
                inner.answer(QUESTION)

        run(scenario())

    def test_builder_collects_async_limits(self):
        async def scenario():
            builder = (
                SystemBuilder()
                .with_domains("cars")
                .ads_per_domain(40)
                .sessions_per_domain(60)
                .corpus_documents(60)
                .answer_cache(8)
                .async_limits(workers=2, max_queue=4)
            )
            svc = builder.build_async_service(default_deadline=5.0)
            try:
                assert svc.workers == 2
                assert svc.default_deadline == 5.0
                assert svc._gate.max_queue == 4
                assert svc.service.cache is not None
                result = await svc.ask(QUESTION, domain="cars")
                assert result.answers is not None
            finally:
                await svc.close()

        run(scenario())

    def test_answer_batch_coalesces_duplicates(self, serve_system):
        async def scenario():
            gated = GatedPipeline(serve_system.cqads)
            sync = AnswerService(serve_system.cqads, pipeline=gated)
            svc = AsyncAnswerService(sync, workers=1, max_queue=8)
            gated.release.set()  # no holding: plain concurrent batch
            questions = [QUESTION, QUESTION, QUESTION, "red toyota camry"]
            results = await svc.answer_batch(
                AnswerRequest(question=q, domain="cars") for q in questions
            )
            assert [r.question for r in results] == questions
            assert _signature(results[0]) == _signature(results[1])
            stats = svc.stats()
            # One flight for the triplicate, one for the straggler.
            assert stats.executed == 2 and stats.coalesced == 2
            await svc.close()
            sync.close()

        run(scenario())

    def test_answer_batch_returns_typed_sheds_in_place(self, serve_system):
        async def scenario():
            clock = FakeClock()
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads),
                workers=2,
                rate_limiter=RateLimiter(default=(0.0, 2.0), clock=clock),
                own_service=True,
            )
            requests = [
                AnswerRequest(question=QUESTION, domain="cars")
                for _ in range(3)
            ]
            results = await svc.answer_batch(
                requests, return_exceptions=True
            )
            kinds = [type(r) for r in results]
            assert kinds.count(RateLimitedError) == 1
            assert sum(1 for r in results if not isinstance(r, Exception)) == 2
            await svc.close()

        run(scenario())

    def test_stats_snapshot_shape(self, serve_system):
        async def scenario():
            svc = AsyncAnswerService(
                AnswerService(serve_system.cqads), workers=1, own_service=True
            )
            await svc.ask(QUESTION, domain="cars")
            stats = svc.stats()
            payload = stats.as_dict()
            assert payload["submitted"] == 1 and payload["completed"] == 1
            assert payload["shed"] == 0 and payload["shed_rate"] == 0.0
            assert payload["queue_depth"] == 0 and payload["in_flight"] == 0
            assert payload["open_flights"] == 0
            assert stats.coalescing_hit_rate == 0.0
            with pytest.raises(Exception):
                stats.submitted = 99  # frozen snapshot
            await svc.close()

        run(scenario())

    def test_single_flight_registry_is_reusable(self):
        async def scenario():
            flights = SingleFlight()
            flight = flights.begin("k")
            assert flights.get("k") is flight
            assert flight.callers == 2
            with pytest.raises(AssertionError):
                flights.begin("k")
            flights.finish(flight)
            flights.finish(flight)  # idempotent
            assert flights.get("k") is None
            assert len(flights) == 0
            fresh = flights.begin("k")  # key is immediately reusable
            assert fresh is not flight
            flights.finish(fresh)

        run(scenario())
