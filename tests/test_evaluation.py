"""Tests for metrics, appraisers and the boolean survey."""

from __future__ import annotations

import random

import pytest

from repro.datagen.latent import LatentSimilarity
from repro.datagen.vocab import build_domain_spec
from repro.evaluation.appraiser import (
    AppraiserPanel,
    SimulatedAppraiser,
    latent_relatedness,
)
from repro.evaluation.boolean_survey import BooleanSurvey, make_distractors
from repro.evaluation.metrics import (
    accuracy,
    mean_reciprocal_rank,
    precision_at_k,
    precision_recall_f1,
)
from repro.db.schema import AttributeType
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
    Interpretation,
)

TI = AttributeType.TYPE_I
TII = AttributeType.TYPE_II
TIII = AttributeType.TYPE_III


class TestAccuracy:
    def test_basic(self):
        assert accuracy(9, 10) == 0.9
        assert accuracy(0, 10) == 0.0
        assert accuracy(0, 0) == 0.0


class TestPRF:
    def test_perfect(self):
        prf = precision_recall_f1({1, 2, 3}, {1, 2, 3})
        assert prf.precision == prf.recall == prf.f_measure == 1.0

    def test_partial(self):
        prf = precision_recall_f1({1, 2, 3, 4}, {1, 2})
        assert prf.precision == 0.5
        assert prf.recall == 1.0
        assert prf.f_measure == pytest.approx(2 / 3)

    def test_cap_bounds_recall(self):
        # 100 relevant, 30 retrieved (all correct), cap 30 -> recall 1.0
        retrieved = set(range(30))
        relevant = set(range(100))
        prf = precision_recall_f1(retrieved, relevant, cap=30)
        assert prf.recall == 1.0

    def test_empty_relevant_empty_retrieved_is_perfect(self):
        prf = precision_recall_f1(set(), set())
        assert prf.precision == 1.0
        assert prf.recall == 1.0

    def test_empty_relevant_nonempty_retrieved_is_zero(self):
        prf = precision_recall_f1({1}, set())
        assert prf.precision == 0.0

    def test_nothing_retrieved(self):
        prf = precision_recall_f1(set(), {1, 2})
        assert prf.precision == 0.0
        assert prf.recall == 0.0
        assert prf.f_measure == 0.0


class TestPAtK:
    def test_eq7(self):
        judgments = [[True, True, False, False, True],
                     [False, True, True, True, True]]
        assert precision_at_k(judgments, 1) == pytest.approx(0.5)
        assert precision_at_k(judgments, 5) == pytest.approx((3 / 5 + 4 / 5) / 2)

    def test_short_lists_divide_by_k(self):
        assert precision_at_k([[True]], 5) == pytest.approx(0.2)

    def test_empty(self):
        assert precision_at_k([], 5) == 0.0


class TestMRR:
    def test_eq8(self):
        judgments = [[False, True], [True], [False, False]]
        # 1/2 + 1/1 + 0 over 3
        assert mean_reciprocal_rank(judgments) == pytest.approx((0.5 + 1.0) / 3)

    def test_empty(self):
        assert mean_reciprocal_rank([]) == 0.0


@pytest.fixture(scope="module")
def latent():
    return LatentSimilarity(build_domain_spec("cars"))


def car_interpretation():
    return Interpretation(
        tree=ConditionGroup(
            BooleanOperator.AND,
            [
                Condition("make", TI, ConditionOp.EQ, "honda"),
                Condition("model", TI, ConditionOp.EQ, "accord"),
                Condition("color", TII, ConditionOp.EQ, "blue"),
            ],
        )
    )


class TestLatentRelatedness:
    def test_exact_record_is_one(self, latent, cars_system):
        table = cars_system.domains["cars"].dataset.table
        exact = [
            r
            for r in table
            if r["model"] == "accord" and r.get("color") == "blue"
        ]
        if not exact:
            pytest.skip("no blue accord in this draw")
        assert latent_relatedness(latent, car_interpretation(), exact[0]) == 1.0

    def test_min_aggregation(self, latent, cars_system):
        """A record failing one condition badly is unrelated overall,
        regardless of how many conditions it satisfies."""
        table = cars_system.domains["cars"].dataset.table
        wrong_segment = [
            r
            for r in table
            if r["model"] == "corvette" and r.get("color") == "blue"
        ]
        if not wrong_segment:
            pytest.skip("no blue corvette in this draw")
        score = latent_relatedness(latent, car_interpretation(), wrong_segment[0])
        assert score < 0.5

    def test_same_segment_related(self, latent, cars_system):
        table = cars_system.domains["cars"].dataset.table
        camry = [
            r for r in table if r["model"] == "camry" and r.get("color") == "blue"
        ]
        if not camry:
            pytest.skip("no blue camry in this draw")
        score = latent_relatedness(latent, car_interpretation(), camry[0])
        assert score >= 0.7


class TestAppraisers:
    def test_noiseless_appraiser_deterministic(self, latent, cars_system):
        table = cars_system.domains["cars"].dataset.table
        appraiser = SimulatedAppraiser(
            latent, rng=random.Random(1), noise=0.0
        )
        record = next(iter(table))
        votes = {appraiser.judge(car_interpretation(), record) for _ in range(5)}
        assert len(votes) == 1

    def test_panel_majority_smooths_noise(self, latent, cars_system):
        table = cars_system.domains["cars"].dataset.table
        panel = AppraiserPanel(latent, size=5, base_noise=0.05)
        exact = [
            r for r in table if r["model"] == "accord" and r.get("color") == "blue"
        ]
        if not exact:
            pytest.skip("no blue accord")
        assert panel.judge(car_interpretation(), exact[0])

    def test_judge_ranking_shape(self, latent, cars_system):
        table = cars_system.domains["cars"].dataset.table
        panel = AppraiserPanel(latent)
        records = list(table)[:5]
        judgments = panel.judge_ranking(car_interpretation(), records)
        assert len(judgments) == 5
        assert all(isinstance(j, bool) for j in judgments)

    def test_cs_jobs_gets_extra_noise(self):
        jobs_latent = LatentSimilarity(build_domain_spec("cs_jobs"))
        panel = AppraiserPanel(jobs_latent, base_noise=0.05)
        assert panel.appraisers[0].noise == pytest.approx(0.20)


class TestBooleanSurvey:
    def test_distractors_differ_from_original(self):
        interpretation = car_interpretation()
        distractors = make_distractors(interpretation)
        assert len(distractors) == 2
        for distractor in distractors:
            assert distractor.describe() != ""

    def test_or_to_and_swap(self):
        tree = ConditionGroup(
            BooleanOperator.OR,
            [
                Condition("color", TII, ConditionOp.EQ, "black"),
                Condition("color", TII, ConditionOp.EQ, "silver"),
            ],
        )
        distractors = make_distractors(Interpretation(tree=tree))
        assert "AND" in distractors[0].describe()

    def test_survey_favors_correct_interpretation(self, cars_system):
        """When CQAds' reading equals the ground truth, the simulated
        respondents overwhelmingly pick it."""
        from repro.datagen.questions import make_generator

        built = cars_system.domains["cars"]
        generator = make_generator(built.dataset, seed=77)
        question = generator.generate("explicit_or")
        survey = BooleanSurvey(
            database=cars_system.database,
            domain=built.domain,
            rng=random.Random(7),
            respondents=60,
        )
        outcome = survey.run_question(question, question.interpretation)
        assert outcome.accuracy > 0.85

    def test_survey_zero_votes_when_no_reading(self, cars_system):
        from repro.datagen.questions import make_generator

        built = cars_system.domains["cars"]
        generator = make_generator(built.dataset, seed=78)
        question = generator.generate("mutex")
        survey = BooleanSurvey(
            database=cars_system.database,
            domain=built.domain,
            rng=random.Random(8),
        )
        outcome = survey.run_question(question, None)
        assert outcome.accuracy == 0.0

    def test_mutex_dissenters(self, cars_system):
        """A fixed fraction of respondents genuinely hold the literal
        AND reading (the paper's 22% on Q3/Q8)."""
        from repro.datagen.questions import make_generator

        built = cars_system.domains["cars"]
        generator = make_generator(built.dataset, seed=79)
        question = generator.generate("mutex")
        survey = BooleanSurvey(
            database=cars_system.database,
            domain=built.domain,
            rng=random.Random(9),
            respondents=200,
        )
        outcome = survey.run_question(question, question.interpretation)
        assert 0.6 < outcome.accuracy < 0.92
