"""Tests for the schema layer (Type I/II/III attribute model)."""

from __future__ import annotations

import pytest

from repro.db.schema import AttributeType, Column, ColumnKind, TableSchema
from repro.errors import SchemaError, UnknownColumnError
from tests.conftest import small_car_schema


class TestColumn:
    def test_lowercase_names_enforced(self):
        with pytest.raises(SchemaError):
            Column("Make", AttributeType.TYPE_I)

    def test_numeric_must_be_type_iii(self):
        with pytest.raises(SchemaError):
            Column("price", AttributeType.TYPE_II, ColumnKind.NUMERIC)

    def test_inverted_range_rejected(self):
        with pytest.raises(SchemaError):
            Column(
                "price",
                AttributeType.TYPE_III,
                ColumnKind.NUMERIC,
                valid_range=(100, 10),
            )

    def test_is_numeric(self):
        schema = small_car_schema()
        assert schema.column("price").is_numeric
        assert not schema.column("make").is_numeric


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema(
                table_name="t",
                columns=[
                    Column("make", AttributeType.TYPE_I),
                    Column("make", AttributeType.TYPE_II),
                ],
            )

    def test_requires_a_type_i_column(self):
        with pytest.raises(SchemaError, match="Type I"):
            TableSchema(
                table_name="t",
                columns=[Column("color", AttributeType.TYPE_II)],
            )

    def test_column_lookup_case_insensitive(self):
        schema = small_car_schema()
        assert schema.column("MAKE").name == "make"

    def test_unknown_column_raises(self):
        schema = small_car_schema()
        with pytest.raises(UnknownColumnError) as excinfo:
            schema.column("engine")
        assert excinfo.value.column == "engine"
        assert excinfo.value.table == "car_ads"

    def test_columns_of_type_partition(self):
        schema = small_car_schema()
        names_i = [c.name for c in schema.type_i_columns]
        names_ii = [c.name for c in schema.type_ii_columns]
        names_iii = [c.name for c in schema.type_iii_columns]
        assert names_i == ["make", "model"]
        assert names_ii == ["color", "transmission"]
        assert names_iii == ["year", "price", "mileage"]
        assert len(names_i) + len(names_ii) + len(names_iii) == len(
            schema.columns
        )


class TestValidateRecord:
    def test_normalizes_categorical_to_lowercase(self):
        schema = small_car_schema()
        record = schema.validate_record(
            {"make": " Honda ", "model": "Accord", "price": 5000}
        )
        assert record["make"] == "honda"
        assert record["model"] == "accord"

    def test_coerces_numeric_strings(self):
        schema = small_car_schema()
        record = schema.validate_record(
            {"make": "honda", "model": "accord", "price": "5000"}
        )
        assert record["price"] == 5000
        assert isinstance(record["price"], int)

    def test_float_values_preserved(self):
        schema = small_car_schema()
        record = schema.validate_record(
            {"make": "honda", "model": "accord", "price": 5000.5}
        )
        assert record["price"] == 5000.5

    def test_type_i_required(self):
        schema = small_car_schema()
        with pytest.raises(SchemaError, match="required"):
            schema.validate_record({"make": "honda", "price": 5000})

    def test_unknown_column_rejected(self):
        schema = small_car_schema()
        with pytest.raises(UnknownColumnError):
            schema.validate_record(
                {"make": "honda", "model": "accord", "engine": "v6"}
            )

    def test_non_numeric_value_in_numeric_column(self):
        schema = small_car_schema()
        with pytest.raises(SchemaError):
            schema.validate_record(
                {"make": "honda", "model": "accord", "price": "cheap"}
            )

    def test_none_allowed_for_optional_columns(self):
        schema = small_car_schema()
        record = schema.validate_record(
            {"make": "honda", "model": "accord", "color": None}
        )
        assert record["color"] is None

    def test_bool_rejected_for_numeric(self):
        schema = small_car_schema()
        with pytest.raises(SchemaError):
            schema.validate_record(
                {"make": "honda", "model": "accord", "price": True}
            )
