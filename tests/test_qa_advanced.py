"""Tests for the advanced interpretation paths: OR dividers (Q10
scope), comparative adjectives, complex explicit questions, and the
wide-negation survey machinery."""

from __future__ import annotations

import pytest

from repro.datagen.questions import make_generator
from repro.db.schema import AttributeType
from repro.evaluation.boolean_survey import make_distractors, _widen_negations
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
    Interpretation,
)

TI = AttributeType.TYPE_I
TII = AttributeType.TYPE_II


class TestQ10Scope:
    """The paper's Q10: negations stay inside their OR clause."""

    def test_negation_does_not_cross_or(self, cars_system):
        result = cars_system.cqads.answer(
            "Black mustang exclude 2 wheel drive or a yellow corvette "
            "without gas",
            domain="cars",
        )
        tree = result.interpretation.tree
        assert isinstance(tree, ConditionGroup)
        assert tree.operator is BooleanOperator.OR
        assert len(tree.children) == 2
        first, second = tree.children
        first_negated = {
            str(c.value) for c in first.iter_conditions() if c.negated
        }
        second_negated = {
            str(c.value) for c in second.iter_conditions() if c.negated
        }
        assert first_negated == {"2 wheel drive"}
        assert second_negated == {"gas"}

    def test_properties_attach_within_segment(self, cars_system):
        result = cars_system.cqads.answer(
            "blue honda accord or red toyota camry", domain="cars"
        )
        rendered = result.interpretation.describe()
        # blue with the accord clause, red with the camry clause
        accord_clause = rendered.split(" OR ")[0]
        assert "blue" in accord_clause
        assert "red" not in accord_clause

    def test_mutex_survives_or_between_values(self, cars_system):
        result = cars_system.cqads.answer(
            "blue or red camry automatic", domain="cars"
        )
        rendered = result.interpretation.describe()
        assert "color = blue OR color = red" in rendered
        assert "transmission = automatic" in rendered


class TestComparativeAdjectives:
    @pytest.mark.parametrize(
        ("phrase", "op"), [("longer than", ">"), ("shorter than", "<")]
    )
    def test_dimension_comparatives(self, cars_system, phrase, op):
        result = cars_system.cqads.answer(
            f"honda accord mileage {phrase} 50000", domain="cars"
        )
        rendered = result.interpretation.describe()
        assert f"mileage {op} 50000" in rendered

    def test_bigger_maps_to_greater(self, cars_system):
        result = cars_system.cqads.answer(
            "honda price bigger than 9000", domain="cars"
        )
        assert "price > 9000" in result.interpretation.describe()


class TestExplicitComplexGeneration:
    def test_shape(self, cars_dataset):
        generator = make_generator(cars_dataset, seed=91)
        question = generator.generate("explicit_complex")
        assert question.boolean_kind == "explicit"
        assert " or " in question.text
        tree = question.interpretation.tree
        assert isinstance(tree, ConditionGroup)
        assert tree.operator is BooleanOperator.OR
        negations = [
            c for c in question.interpretation.conditions() if c.negated
        ]
        assert len(negations) == 2  # one per clause

    def test_cqads_reads_it_correctly(self, cars_system):
        """Most generated complex questions parse to the intended
        answer set (the survey's ~71% comes from dissenters, not from
        parser failures)."""
        from repro.qa.sql_generation import evaluate_interpretation

        built = cars_system.domains["cars"]
        generator = make_generator(built.dataset, seed=92)
        matches = 0
        total = 8
        for _ in range(total):
            question = generator.generate("explicit_complex")
            result = cars_system.cqads.answer(question.text, domain="cars")
            truth = {
                r.record_id
                for r in evaluate_interpretation(
                    cars_system.database, built.domain, question.interpretation
                )
            }
            got = {
                r.record_id
                for r in evaluate_interpretation(
                    cars_system.database, built.domain, result.interpretation
                )
            }
            if got == truth:
                matches += 1
        assert matches >= total - 2


class TestWidenNegations:
    def tree(self):
        return ConditionGroup(
            BooleanOperator.OR,
            [
                ConditionGroup(
                    BooleanOperator.AND,
                    [
                        Condition("model", TI, ConditionOp.EQ, "mustang"),
                        Condition(
                            "drivetrain", TII, ConditionOp.EQ,
                            "2 wheel drive", negated=True,
                        ),
                    ],
                ),
                ConditionGroup(
                    BooleanOperator.AND,
                    [Condition("model", TI, ConditionOp.EQ, "corvette")],
                ),
            ],
        )

    def test_negation_copied_to_other_branch(self):
        widened = _widen_negations(self.tree())
        assert isinstance(widened, ConditionGroup)
        second = widened.children[1]
        negated = [c for c in second.iter_conditions() if c.negated]
        assert len(negated) == 1
        assert negated[0].value == "2 wheel drive"

    def test_branch_already_having_negation_unchanged(self):
        widened = _widen_negations(self.tree())
        first = widened.children[0]
        negated = [c for c in first.iter_conditions() if c.negated]
        assert len(negated) == 1

    def test_no_negations_is_identity(self):
        tree = ConditionGroup(
            BooleanOperator.OR,
            [
                Condition("model", TI, ConditionOp.EQ, "mustang"),
                Condition("model", TI, ConditionOp.EQ, "corvette"),
            ],
        )
        assert _widen_negations(tree) is tree

    def test_distractors_for_complex_kind_include_widened(self):
        interpretation = Interpretation(tree=self.tree())
        distractors = make_distractors(interpretation, kind="explicit_complex")
        assert len(distractors) == 2
        widened_rendering = distractors[1].describe()
        assert widened_rendering.count("NOT") == 2
