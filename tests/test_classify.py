"""Tests for the Naive Bayes classifiers (Section 3)."""

from __future__ import annotations

import math

import pytest

from repro.classify.features import NUMBER_FEATURE, question_features
from repro.classify.naive_bayes import (
    BetaBinomialNaiveBayes,
    MultinomialNaiveBayes,
)
from repro.errors import ClassificationError

CAR_DOCS = [
    "2004 honda accord blue automatic sedan low mileage clean title",
    "toyota camry silver 4 door great condition new tires",
    "ford mustang convertible manual transmission garage kept",
    "chevy malibu automatic power windows cruise control",
]
JOB_DOCS = [
    "senior java developer full time salary benefits remote",
    "python data engineer contract position health insurance",
    "frontend javascript engineer startup stock options",
    "qa engineer automation testing onsite full time",
]


def trained(classifier):
    for text in CAR_DOCS:
        classifier.add_document("cars", text)
    for text in JOB_DOCS:
        classifier.add_document("cs_jobs", text)
    classifier.train()
    return classifier


class TestFeatures:
    def test_stopwords_removed_and_stemmed(self):
        features = question_features("Cheapest mazda with automatic transmission")
        assert "with" not in features
        assert "cheapest" in features

    def test_numbers_map_to_shared_feature(self):
        features = question_features("honda accord 2004 under $5,000")
        assert features[NUMBER_FEATURE] == 2

    def test_counts(self):
        features = question_features("blue blue car")
        assert features["blue"] == 2


@pytest.mark.parametrize(
    "classifier_class", [MultinomialNaiveBayes, BetaBinomialNaiveBayes]
)
class TestSharedBehaviour:
    def test_classifies_held_out_questions(self, classifier_class):
        classifier = trained(classifier_class())
        assert classifier.classify("blue honda accord under 5000") == "cars"
        assert classifier.classify("remote java developer position") == "cs_jobs"

    def test_posteriors_normalized(self, classifier_class):
        classifier = trained(classifier_class())
        posteriors = classifier.posteriors("automatic toyota")
        assert math.isclose(sum(posteriors.values()), 1.0, rel_tol=1e-9)
        assert all(0.0 <= p <= 1.0 for p in posteriors.values())

    def test_unseen_words_do_not_crash(self, classifier_class):
        classifier = trained(classifier_class())
        # entirely out-of-vocabulary question still classifies
        label = classifier.classify("zyzzyva qwerty plugh")
        assert label in ("cars", "cs_jobs")

    def test_untrained_raises(self, classifier_class):
        classifier = classifier_class()
        classifier.add_document("cars", "honda")
        with pytest.raises(ClassificationError):
            classifier.classify("honda")

    def test_no_documents_raises(self, classifier_class):
        with pytest.raises(ClassificationError):
            classifier_class().train()

    def test_classes_sorted(self, classifier_class):
        classifier = trained(classifier_class())
        assert classifier.classes() == ["cars", "cs_jobs"]

    def test_train_accepts_inline_documents(self, classifier_class):
        classifier = classifier_class()
        classifier.train([("a", "foo bar"), ("b", "baz qux")])
        assert classifier.classes() == ["a", "b"]

    def test_deterministic(self, classifier_class):
        classifier = trained(classifier_class())
        labels = {classifier.classify("blue sedan automatic") for _ in range(5)}
        assert len(labels) == 1


class TestBetaBinomialSpecifics:
    def test_burstiness_helps_repeated_words(self):
        """JBBSM models burstiness: a repeated topical word should not
        scale log-probability linearly the way multinomial NB does."""
        jbbsm = trained(BetaBinomialNaiveBayes())
        single = jbbsm.log_posteriors("honda")["cars"]
        repeated = jbbsm.log_posteriors("honda honda honda honda")["cars"]
        multinomial = trained(MultinomialNaiveBayes())
        m_single = multinomial.log_posteriors("honda")["cars"]
        m_repeated = multinomial.log_posteriors(
            "honda honda honda honda"
        )["cars"]
        # Multinomial treats each occurrence as independent evidence;
        # the beta-binomial discounts repeats relative to that.
        multinomial_drop = m_single - m_repeated
        jbbsm_drop = single - repeated
        assert jbbsm_drop < multinomial_drop * 4

    def test_full_system_accuracy(self, two_domain_system):
        """On the generated data, the classifier reaches the paper's
        upper-80s-to-90s band for cars/motorcycles."""
        from repro.datagen.questions import make_generator

        correct = 0
        total = 0
        for name, built in two_domain_system.domains.items():
            generator = make_generator(built.dataset, seed=99)
            for question in generator.generate_many(40):
                total += 1
                if two_domain_system.cqads.classify_question(question.text) == name:
                    correct += 1
        assert correct / total >= 0.8
