"""Tests for the implicit/explicit Boolean rules (Section 4.4)."""

from __future__ import annotations

import pytest

from repro.db.schema import AttributeType
from repro.errors import ContradictionError
from repro.qa.boolean_rules import build_interpretation, merge_type_iii
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
)
from repro.qa.domain import AdsDomain
from repro.qa.incomplete import candidate_columns, expand_incomplete
from repro.qa.tagger import IncompleteNumeric, QuestionTagger

TI = AttributeType.TYPE_I
TII = AttributeType.TYPE_II
TIII = AttributeType.TYPE_III


@pytest.fixture()
def domain(car_table):
    return AdsDomain.from_table("cars", car_table)


@pytest.fixture()
def interpret(domain):
    tagger = QuestionTagger(domain)

    def _interpret(question: str):
        return build_interpretation(tagger.tag(question), domain)

    return _interpret


def c3(op, value, negated=False):
    return Condition("price", TIII, op, value, negated=negated)


class TestRule1:
    def test_rule_1a_negated_complement(self):
        # "not less than $2000" -> price >= 2000
        merged = merge_type_iii("price", [c3(ConditionOp.LT, 2000, negated=True)])
        assert merged == [c3(ConditionOp.GE, 2000)]

    def test_rule_1a_negated_between_stays_excluded_range(self):
        # "not between 2000 and 5000" has no single-comparison
        # complement: it survives as its own negated ANDed leaf
        # (regression: this used to crash constructing NE with a tuple).
        excluded = c3(ConditionOp.BETWEEN, (2000.0, 5000.0), negated=True)
        merged = merge_type_iii("price", [excluded])
        assert merged == [excluded]

    def test_rule_1a_negated_between_combines_with_bounds(self):
        excluded = c3(ConditionOp.BETWEEN, (2000.0, 5000.0), negated=True)
        merged = merge_type_iii(
            "price", [c3(ConditionOp.LT, 9000), excluded]
        )
        assert merged == [c3(ConditionOp.LT, 9000), excluded]

    def test_rule_1b_two_less_thans_keep_lower(self):
        merged = merge_type_iii(
            "price", [c3(ConditionOp.LT, 7000), c3(ConditionOp.LT, 5000)]
        )
        assert merged == [c3(ConditionOp.LT, 5000)]

    def test_rule_1b_two_more_thans_keep_higher(self):
        merged = merge_type_iii(
            "price", [c3(ConditionOp.GT, 2000), c3(ConditionOp.GT, 4000)]
        )
        assert merged == [c3(ConditionOp.GT, 4000)]

    def test_rule_1c_combine_into_between(self):
        merged = merge_type_iii(
            "price", [c3(ConditionOp.GE, 2000), c3(ConditionOp.LE, 7000)]
        )
        assert merged == [c3(ConditionOp.BETWEEN, (2000.0, 7000.0))]

    def test_rule_1c_mixed_inclusivity_stays_two_bounds(self):
        merged = merge_type_iii(
            "price", [c3(ConditionOp.GE, 2000), c3(ConditionOp.LT, 7000)]
        )
        assert merged == [c3(ConditionOp.GE, 2000), c3(ConditionOp.LT, 7000)]

    def test_rule_1c_contradiction(self):
        with pytest.raises(ContradictionError, match="no results"):
            merge_type_iii(
                "price", [c3(ConditionOp.LT, 2000), c3(ConditionOp.GT, 7000)]
            )

    def test_equal_within_range_kept(self):
        merged = merge_type_iii(
            "price", [c3(ConditionOp.EQ, 5000), c3(ConditionOp.LT, 7000)]
        )
        assert merged == [c3(ConditionOp.EQ, 5000)]

    def test_equal_outside_range_contradicts(self):
        with pytest.raises(ContradictionError):
            merge_type_iii(
                "price", [c3(ConditionOp.EQ, 9000), c3(ConditionOp.LT, 7000)]
            )

    def test_two_equals_become_range(self):
        merged = merge_type_iii(
            "price", [c3(ConditionOp.EQ, 3000), c3(ConditionOp.EQ, 5000)]
        )
        assert merged == [c3(ConditionOp.BETWEEN, (3000.0, 5000.0))]

    def test_negated_equal_survives_as_ne(self):
        merged = merge_type_iii(
            "price",
            [c3(ConditionOp.LT, 7000), c3(ConditionOp.EQ, 5000, negated=True)],
        )
        assert c3(ConditionOp.NE, 5000) in merged

    def test_paper_q1(self, interpret):
        # "Any car priced below $7000 and not less than $2000" (Example 6)
        interpretation = interpret(
            "any car priced below $7000 and not less than $4000"
        )
        conditions = interpretation.conditions()
        ops = {(c.op, c.value) for c in conditions}
        assert (ConditionOp.GE, 4000.0) in ops
        assert (ConditionOp.LT, 7000.0) in ops


class TestRule2AndAnchors:
    def test_negated_type_ii_anded(self, interpret):
        interpretation = interpret("accord not blue not automatic")
        for condition in interpretation.conditions():
            if condition.attribute_type is TII:
                assert condition.negated
        # all ANDed: tree contains no OR groups
        assert "OR" not in interpretation.describe()

    def test_mutex_type_ii_ored(self, interpret):
        interpretation = interpret("blue red camry")
        description = interpretation.describe()
        assert "color = blue OR color = red" in description

    def test_non_mutex_type_ii_anded(self, interpret):
        interpretation = interpret("blue automatic camry")
        assert "OR" not in interpretation.describe()

    def test_right_association(self, interpret):
        # properties attach to the nearest (following) Type I anchor
        interpretation = interpret("silver honda accord")
        description = interpretation.describe()
        assert "color = silver" in description
        assert "make = honda" in description


class TestRule4:
    def test_paper_q2(self, interpret):
        """Example 6's Q2: two product groups ORed (Rule 4)."""
        interpretation = interpret(
            "I want a toyota corolla or a silver not automatic honda accord"
        )
        tree = interpretation.tree
        assert isinstance(tree, ConditionGroup)
        assert tree.operator is BooleanOperator.OR
        assert len(tree.children) == 2
        rendered = interpretation.describe()
        assert "make = toyota" in rendered
        assert "NOT transmission = automatic" in rendered

    def test_same_column_anchor_stays_one_group(self, interpret):
        # the paper's Q8: "Focus, Corolla, or Civic ... black and grey"
        interpretation = interpret(
            "focus corolla or civic black and silver cars"
        )
        rendered = interpretation.describe()
        assert "model = focus OR model = corolla OR model = civic" in rendered
        assert "color = black OR color = silver" in rendered


class TestExplicit:
    def test_pure_or_evaluated_as_is(self, interpret):
        interpretation = interpret("accord or camry or corolla")
        tree = interpretation.tree
        assert isinstance(tree, ConditionGroup)
        assert tree.operator is BooleanOperator.OR
        assert len(tree.children) == 3

    def test_pure_and_stripped(self, interpret):
        interpretation = interpret("blue and automatic accord")
        assert interpretation.is_pure_conjunction() or (
            "OR" not in interpretation.describe()
        )

    def test_mixed_operators_fall_back_to_implicit(self, interpret):
        interpretation = interpret("blue or red camry and automatic")
        rendered = interpretation.describe()
        assert "color = blue OR color = red" in rendered
        assert "transmission = automatic" in rendered


class TestIncompleteExpansion:
    def test_candidate_columns_respect_bounds(self, domain):
        item = IncompleteNumeric(value=2000.0, op=ConditionOp.EQ)
        # fixture bounds: year 1999-2008 only
        assert candidate_columns(domain, item) == ["year"]

    def test_currency_restricts_to_price(self, domain):
        item = IncompleteNumeric(value=5000.0, op=ConditionOp.EQ, currency=True)
        assert candidate_columns(domain, item) == ["price"]

    def test_expand_single_candidate(self, domain):
        item = IncompleteNumeric(value=2000.0, op=ConditionOp.EQ)
        node = expand_incomplete(domain, item)
        assert isinstance(node, Condition)
        assert node.column == "year"

    def test_expand_no_candidates(self, domain):
        item = IncompleteNumeric(value=999999999.0, op=ConditionOp.EQ)
        assert expand_incomplete(domain, item) is None

    def test_expand_multiple_candidates_or_group(self):
        from tests.conftest import small_car_schema

        domain = AdsDomain.from_values(
            "cars",
            small_car_schema(),
            {"make": ["honda"], "model": ["accord"]},
        )
        item = IncompleteNumeric(value=2000.0, op=ConditionOp.EQ)
        node = expand_incomplete(domain, item)
        assert isinstance(node, ConditionGroup)
        assert node.operator is BooleanOperator.OR
        columns = {c.column for c in node.iter_conditions()}
        assert columns == {"year", "price", "mileage"}

    def test_between_expansion(self, domain):
        item = IncompleteNumeric(
            value=2000.0, op=ConditionOp.BETWEEN, high_value=2005.0
        )
        node = expand_incomplete(domain, item)
        assert isinstance(node, Condition)
        assert node.op is ConditionOp.BETWEEN
        assert node.value == (2000.0, 2005.0)


class TestSuperlativePlacement:
    def test_superlative_survives_interpretation(self, interpret):
        interpretation = interpret("cheapest blue honda")
        assert interpretation.superlative is not None
        assert interpretation.superlative.column == "price"

    def test_superlative_only_question(self, interpret):
        interpretation = interpret("cheapest")
        assert interpretation.tree is None
        assert interpretation.superlative is not None
