"""Shared fixtures.

Heavy artifacts (a provisioned system, per-domain datasets) are
session-scoped: they are deterministic (fixed seeds throughout), so
sharing them across tests changes nothing about isolation, only about
runtime.  Tests that mutate state build their own small fixtures.
"""

from __future__ import annotations

import random

import pytest

from repro.datagen.ads import build_dataset
from repro.db.database import Database
from repro.db.schema import AttributeType, Column, ColumnKind, TableSchema
from repro.system import build_system


def small_car_schema() -> TableSchema:
    """A compact hand-built cars schema for substrate-level tests."""
    return TableSchema(
        table_name="car_ads",
        columns=[
            Column("make", AttributeType.TYPE_I),
            Column("model", AttributeType.TYPE_I),
            Column("color", AttributeType.TYPE_II),
            Column("transmission", AttributeType.TYPE_II),
            Column(
                "year",
                AttributeType.TYPE_III,
                ColumnKind.NUMERIC,
                valid_range=(1985, 2011),
            ),
            Column(
                "price",
                AttributeType.TYPE_III,
                ColumnKind.NUMERIC,
                unit_words=("usd", "dollars", "$"),
                synonyms=("price", "cost"),
                valid_range=(500, 80000),
            ),
            Column(
                "mileage",
                AttributeType.TYPE_III,
                ColumnKind.NUMERIC,
                unit_words=("miles", "mi"),
                synonyms=("mileage",),
                valid_range=(0, 250000),
            ),
        ],
    )


SMALL_CAR_ROWS = [
    {"make": "honda", "model": "accord", "color": "blue",
     "transmission": "automatic", "year": 2004, "price": 9000, "mileage": 90000},
    {"make": "honda", "model": "accord", "color": "red",
     "transmission": "manual", "year": 2001, "price": 5000, "mileage": 140000},
    {"make": "honda", "model": "civic", "color": "blue",
     "transmission": "automatic", "year": 2007, "price": 11000, "mileage": 60000},
    {"make": "toyota", "model": "camry", "color": "blue",
     "transmission": "automatic", "year": 2005, "price": 8500, "mileage": 95000},
    {"make": "toyota", "model": "corolla", "color": "white",
     "transmission": "manual", "year": 1999, "price": 3000, "mileage": 180000},
    {"make": "chevy", "model": "malibu", "color": "blue",
     "transmission": "automatic", "year": 2003, "price": 5900, "mileage": 110000},
    {"make": "ford", "model": "focus", "color": "silver",
     "transmission": "automatic", "year": 2006, "price": 6800, "mileage": 80000},
    {"make": "bmw", "model": "3 series", "color": "black",
     "transmission": "manual", "year": 2008, "price": 22000, "mileage": 45000},
]


@pytest.fixture()
def car_table():
    """A fresh small cars table (function-scoped: tests may mutate)."""
    database = Database()
    table = database.create_table(small_car_schema())
    table.insert_many(SMALL_CAR_ROWS)
    return table


@pytest.fixture()
def car_database(car_table):
    """The database owning :func:`car_table` (same instance)."""
    # The table fixture created its own database; expose it.
    database = Database()
    table = database.create_table(small_car_schema())
    table.insert_many(SMALL_CAR_ROWS)
    return database


@pytest.fixture(scope="session")
def cars_system():
    """A provisioned single-domain system (read-only in tests)."""
    return build_system(
        ["cars"],
        ads_per_domain=250,
        sessions_per_domain=300,
        corpus_documents=200,
    )


@pytest.fixture(scope="session")
def two_domain_system():
    """Cars + motorcycles, for classification and routing tests."""
    return build_system(
        ["cars", "motorcycles"],
        ads_per_domain=200,
        sessions_per_domain=250,
        corpus_documents=200,
    )


@pytest.fixture(scope="session")
def cars_dataset():
    database = Database()
    return build_dataset("cars", database, ads_per_domain=200, seed=7)


@pytest.fixture()
def rng():
    return random.Random(12345)
