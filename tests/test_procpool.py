"""Process-scatter tier: shared-memory segments, workers, fallbacks.

Four layers:

* **segment export** — a shard's columnar image round-trips through a
  shared-memory segment bit-for-bit (record ids, numeric + NULL
  masks, categorical codebooks, Type-I keys), numeric point mutations
  patch the live segment in place under the seqlock (no re-export),
  and anything else marks it dirty for the next publish;
* **worker mirror** — :class:`~repro.shard.procpool._ShadowStore`
  evaluates relaxation-unit id-sets exactly like the SQL executor's
  leaf semantics (the ``condition_matches`` oracle), including the
  NULL/negation corners, and its generation handshake rejects stale
  epochs;
* **parity** (the PR's acceptance bar) — a ``scatter_mode="process"``
  build answers bit-identically to the thread-mode and unsharded
  builds of the same recipe, before and after mutations, with the
  worker pool demonstrably engaged;
* **fallbacks** — killed workers and unexportable layouts degrade to
  the thread path mid-call with correct answers, never an error.

Everything here skips on platforms without POSIX shared memory or a
spawn context (``process_scatter_supported()``).
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.datagen.questions import make_generator
from repro.db.database import Database
from repro.db.schema import AttributeType
from repro.perf.fragment_cache import condition_matches
from repro.qa.conditions import Condition, ConditionOp
from repro.ranking.rank_sim import ScoringUnit
from repro.shard import ProcessScatterPool, ShardedTable, process_scatter_supported
from repro.shard.procpool import _export_shard, _ShadowStore
from repro.system import build_system

from tests.conftest import SMALL_CAR_ROWS, small_car_schema

pytestmark = pytest.mark.skipif(
    not process_scatter_supported(),
    reason="platform lacks shared memory or a spawn context",
)

SYSTEM_SCALE = dict(
    ads_per_domain=120,
    sessions_per_domain=100,
    corpus_documents=80,
    train_classifier=False,
)
PARITY_QUESTIONS = 20


def _seed_table(shards: int = 1, **kwargs) -> ShardedTable:
    table = ShardedTable(small_car_schema(), shards, **kwargs)
    table.insert_many(dict(row) for row in SMALL_CAR_ROWS)
    return table


def _type_i_names(table) -> list[str]:
    return [column.name for column in table.schema.type_i_columns]


# ----------------------------------------------------------------------
# segment export and in-place maintenance
# ----------------------------------------------------------------------
class TestSegmentExport:
    def test_export_roundtrips_every_region(self):
        database = Database()
        table = database.create_table(small_car_schema())
        table.insert_many(dict(row) for row in SMALL_CAR_ROWS)
        image = _export_shard("cars", 0, table, _type_i_names(table))
        assert image is not None
        try:
            shadow = _ShadowStore(image.shm)
            records = sorted(table, key=lambda r: r.record_id)
            assert shadow.record_ids == [r.record_id for r in records]
            for name in ("price", "mileage", "year"):
                assert shadow.numeric[name] == [
                    float(r[name]) for r in records
                ]
            for name in ("make", "model", "color", "transmission"):
                assert shadow.categorical[name] == [
                    r.get(name) for r in records
                ]
            assert shadow.keys == [
                tuple(
                    str(r.get(column, "") or "")
                    for column in _type_i_names(table)
                )
                for r in records
            ]
            assert shadow.epoch == image.epoch
        finally:
            image.destroy()

    def test_null_numeric_values_export_as_nulls(self):
        database = Database()
        table = database.create_table(small_car_schema())
        table.insert({"make": "kia", "model": "rio", "price": None})
        table.insert({"make": "kia", "model": "rio", "price": 4000})
        image = _export_shard("cars", 0, table, _type_i_names(table))
        assert image is not None
        try:
            shadow = _ShadowStore(image.shm)
            assert shadow.numeric["price"] == [None, 4000.0]
            assert shadow.numeric["mileage"] == [None, None]
        finally:
            image.destroy()

    def test_numeric_update_patches_segment_in_place(self):
        table = _seed_table(shards=2)
        pool = ProcessScatterPool(table, 1)
        table.add_listener(pool.on_mutation)
        try:
            published = pool.publish()
            assert published is not None
            names_before = [name for name, _epoch in published]

            record_id = next(iter(table)).record_id
            shard_index = table.shard_of(record_id)
            old_epoch = pool._images[shard_index].epoch
            table.update(record_id, {"price": 12345.0})

            image = pool._images[shard_index]
            assert not image.dirty  # patched, not re-exported
            assert image.epoch == old_epoch + 1
            shadow = _ShadowStore(image.shm)
            assert (
                shadow.numeric["price"][shadow.row_of[record_id]] == 12345.0
            )
            # publish() keeps the patched segments: same names, new epoch.
            republished = pool.publish()
            assert [name for name, _epoch in republished] == names_before
        finally:
            pool.close()
            table.close()

    def test_memoized_condition_sets_repair_across_patches(self):
        # Point patches must not stale (or needlessly drop) memoized
        # numeric condition sets: the changed rows are re-judged and
        # the cached sets patched in place, untouched columns keep
        # their memos identically.
        table = _seed_table(shards=1)
        pool = ProcessScatterPool(table, 1)
        table.add_listener(pool.on_mutation)
        try:
            pool.publish()
            image = pool._images[0]
            shadow = _ShadowStore(image.shm)
            lt = Condition(
                "price", AttributeType.TYPE_III, ConditionOp.LT, 10000.0
            )
            not_lt = Condition(
                "price",
                AttributeType.TYPE_III,
                ConditionOp.LT,
                10000.0,
                negated=True,
            )
            mileage_ge = Condition(
                "mileage", AttributeType.TYPE_III, ConditionOp.GE, 0.0
            )
            before = set(shadow.condition_id_set(lt))
            shadow.condition_id_set(not_lt)
            mileage_set = shadow.condition_id_set(mileage_ge)

            ids = shadow.record_ids
            table.update(ids[0], {"price": 1.0})  # joins lt
            table.update(ids[1], {"price": 99999.0})  # leaves lt
            table.update(ids[2], {"price": None})  # NULL: negated side
            assert image.epoch == shadow.epoch + 3  # all patched in place
            assert shadow.refresh(image.epoch)

            oracle = _ShadowStore(image.shm)  # memo-free recompute
            for condition in (lt, not_lt, mileage_ge):
                assert shadow.condition_id_set(
                    condition
                ) == oracle.condition_id_set(condition)
            assert shadow.condition_id_set(lt) != before  # non-vacuous
            # The kept memos are the same objects — repaired, not rebuilt.
            assert shadow._condition_sets_numeric[mileage_ge] is mileage_set
            assert lt in shadow._condition_sets_numeric
        finally:
            pool.close()
            table.close()

    def test_categorical_update_and_insert_force_reexport(self):
        table = _seed_table(shards=2)
        pool = ProcessScatterPool(table, 1)
        table.add_listener(pool.on_mutation)
        try:
            published = pool.publish()
            record_id = next(iter(table)).record_id
            shard_index = table.shard_of(record_id)
            table.update(record_id, {"color": "green"})
            assert pool._images[shard_index].dirty

            republished = pool.publish()
            assert republished[shard_index][0] != published[shard_index][0]
            assert republished[shard_index][1] == table.shards[shard_index].epoch

            inserted = table.insert(dict(SMALL_CAR_ROWS[0]))
            target = table.shard_of(inserted.record_id)
            assert pool._images[target].dirty
        finally:
            pool.close()
            table.close()

    def test_type_i_update_reexports_even_when_numeric(self):
        # A Type-I column can never be patched in place: the key
        # codebook is static for a segment's lifetime.
        table = _seed_table(shards=1)
        pool = ProcessScatterPool(table, 1)
        table.add_listener(pool.on_mutation)
        try:
            pool.publish()
            record_id = next(iter(table)).record_id
            table.update(record_id, {"make": "saab"})
            assert pool._images[0].dirty
        finally:
            pool.close()
            table.close()

    def test_stale_epoch_handshake(self):
        table = _seed_table(shards=1)
        pool = ProcessScatterPool(table, 1)
        table.add_listener(pool.on_mutation)
        try:
            pool.publish()
            image = pool._images[0]
            shadow = _ShadowStore(image.shm)
            old_epoch = image.epoch
            record_id = next(iter(table)).record_id
            table.update(record_id, {"mileage": 1.0})
            # The segment moved on: the old generation is refused, the
            # current one accepted (and sees the patched value).
            fresh = _ShadowStore(image.shm)
            assert fresh.refresh(old_epoch) is False
            assert fresh.refresh(image.epoch) is True
            assert fresh.numeric["mileage"][fresh.row_of[record_id]] == 1.0
            assert shadow.epoch == old_epoch  # untouched by the refusal
        finally:
            pool.close()
            table.close()


# ----------------------------------------------------------------------
# worker-side unit evaluation mirrors the executor
# ----------------------------------------------------------------------
CONDITION_BATTERY = [
    Condition("color", AttributeType.TYPE_II, ConditionOp.EQ, "blue"),
    Condition("color", AttributeType.TYPE_II, ConditionOp.EQ, "blue", negated=True),
    Condition("color", AttributeType.TYPE_II, ConditionOp.NE, "blue"),
    Condition("color", AttributeType.TYPE_II, ConditionOp.EQ, None),
    Condition("color", AttributeType.TYPE_II, ConditionOp.NE, None),
    Condition("make", AttributeType.TYPE_I, ConditionOp.EQ, "honda"),
    Condition("price", AttributeType.TYPE_III, ConditionOp.LT, 9000),
    Condition("price", AttributeType.TYPE_III, ConditionOp.LE, 9000),
    Condition("price", AttributeType.TYPE_III, ConditionOp.GT, 9000),
    Condition("price", AttributeType.TYPE_III, ConditionOp.GE, 9000),
    Condition("price", AttributeType.TYPE_III, ConditionOp.EQ, 9000),
    Condition("price", AttributeType.TYPE_III, ConditionOp.NE, 9000),
    Condition("price", AttributeType.TYPE_III, ConditionOp.EQ, None),
    Condition("price", AttributeType.TYPE_III, ConditionOp.NE, None),
    Condition(
        "price", AttributeType.TYPE_III, ConditionOp.BETWEEN, (5000, 9000)
    ),
    Condition(
        "price",
        AttributeType.TYPE_III,
        ConditionOp.BETWEEN,
        (5000, 9000),
        negated=True,
    ),
    Condition("year", AttributeType.TYPE_III, ConditionOp.GE, 2004),
]


class TestShadowMirror:
    @pytest.fixture()
    def shadow_pair(self):
        database = Database()
        table = database.create_table(small_car_schema())
        table.insert_many(dict(row) for row in SMALL_CAR_ROWS)
        # A NULL-bearing row exercises every NULL corner of the mirror.
        table.insert({"make": "kia", "model": "rio", "price": None})
        image = _export_shard("cars", 0, table, _type_i_names(table))
        assert image is not None
        yield table, _ShadowStore(image.shm)
        image.destroy()

    @pytest.mark.parametrize(
        "condition", CONDITION_BATTERY, ids=lambda c: f"{c.column}-{c.op.value}"
        f"{'-neg' if c.negated else ''}-{c.value}"
    )
    def test_condition_id_set_matches_executor_mirror(
        self, shadow_pair, condition
    ):
        table, shadow = shadow_pair
        expected = {
            record.record_id
            for record in table
            if condition_matches(table.schema, condition, record)
        }
        assert shadow.condition_id_set(condition) == expected

    def test_unknown_column_returns_none(self, shadow_pair):
        _table, shadow = shadow_pair
        bogus = Condition("nope", AttributeType.TYPE_III, ConditionOp.EQ, 1)
        assert shadow.condition_id_set(bogus) is None
        unit = ScoringUnit(conditions=(bogus,))
        assert shadow.unit_id_set(unit) is None

    def test_unit_id_set_all_intersects_and_any_unions(self, shadow_pair):
        table, shadow = shadow_pair
        blue = Condition("color", AttributeType.TYPE_II, ConditionOp.EQ, "blue")
        cheap = Condition("price", AttributeType.TYPE_III, ConditionOp.LT, 9000)
        both = ScoringUnit(conditions=(blue, cheap))
        either = ScoringUnit(conditions=(blue, cheap), mode="any")
        blue_ids = shadow.condition_id_set(blue)
        cheap_ids = shadow.condition_id_set(cheap)
        assert shadow.unit_id_set(both) == blue_ids & cheap_ids
        assert shadow.unit_id_set(either) == blue_ids | cheap_ids


# ----------------------------------------------------------------------
# end-to-end parity (the acceptance bar)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mode_builds():
    """The same cars recipe unsharded, thread-sharded and
    process-sharded; torn down as a unit."""
    builds = {
        "single": build_system(["cars"], **SYSTEM_SCALE),
        "thread": build_system(["cars"], shards=4, **SYSTEM_SCALE),
        "process": build_system(
            ["cars"], shards=4, scatter_mode="process", **SYSTEM_SCALE
        ),
    }
    yield builds
    for build in builds.values():
        build.close()


def _signature(result):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind)
        for a in result.partial_answers
    ]


def _questions(build, count, seed=11):
    generator = make_generator(build.domain("cars").dataset, seed=seed)
    return [generator.generate().text for _ in range(count)]


def _assert_parity(builds, questions):
    for question in questions:
        reference = None
        for mode, build in builds.items():
            signature = _signature(build.cqads.answer(question, domain="cars"))
            if reference is None:
                reference = signature
            else:
                assert signature == reference, (
                    f"{mode} diverged on {question!r}"
                )


class TestProcessParity:
    def test_answers_bit_identical_and_pool_engaged(self, mode_builds):
        questions = _questions(mode_builds["single"], PARITY_QUESTIONS)
        _assert_parity(mode_builds, questions)

        table = mode_builds["process"].database.table("car_ads")
        assert table.scatter_mode == "process"
        pool = table.process_pool()
        assert pool is not None
        assert not pool.broken and not pool.unsupported
        assert pool.worker_pids()  # workers actually spawned and served

    def test_parity_survives_mutations(self, mode_builds):
        record_id = next(
            iter(mode_builds["single"].database.table("car_ads"))
        ).record_id
        for build in mode_builds.values():
            table = build.database.table("car_ads")
            price = table.get(record_id).get("price") or 0
            table.update(record_id, {"price": float(price) + 1.0})
        _assert_parity(
            mode_builds, _questions(mode_builds["single"], 6, seed=23)
        )

    def test_parity_survives_topology_changes(self, mode_builds):
        table = mode_builds["process"].database.table("car_ads")
        new_shard = table.split_shard(0)
        moved = table.merge_shard(1, new_shard)
        assert 1 in table.retired_shards
        assert len(table.shards[1]) == 0 and moved >= 0
        table.rebalance()
        _assert_parity(
            mode_builds, _questions(mode_builds["single"], 6, seed=37)
        )
        pool = table.process_pool()
        assert pool is not None and not pool.broken


# ----------------------------------------------------------------------
# fallbacks: every failure mode lands on the thread path
# ----------------------------------------------------------------------
class TestFallbacks:
    def _small_pair(self, **process_kwargs):
        scale = dict(SYSTEM_SCALE, ads_per_domain=60, sessions_per_domain=60)
        single = build_system(["cars"], **scale)
        proc = build_system(
            ["cars"], shards=2, scatter_mode="process", **scale, **process_kwargs
        )
        return single, proc

    def test_killed_workers_degrade_midcall_with_correct_answers(self):
        single, proc = self._small_pair()
        try:
            questions = _questions(single, 4, seed=5)
            _assert_parity({"single": single, "process": proc}, questions)
            table = proc.database.table("car_ads")
            pool = table.process_pool()
            assert pool is not None
            pids = pool.worker_pids()
            assert pids
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            # The dead pool is detected in-flight; answers stay correct.
            _assert_parity({"single": single, "process": proc}, questions)
            assert pool.broken
            # The facade recycles the broken pool (bounded respawns).
            fresh = table.process_pool()
            assert fresh is not pool
        finally:
            proc.close()
            single.close()

    def test_unexportable_layout_degrades_to_thread_mode(self, monkeypatch):
        import repro.shard.procpool as procpool

        monkeypatch.setattr(
            procpool, "_export_shard", lambda *args, **kwargs: None
        )
        single, proc = self._small_pair()
        try:
            questions = _questions(single, 4, seed=5)
            _assert_parity({"single": single, "process": proc}, questions)
            table = proc.database.table("car_ads")
            # The publish failure marked the tier unsupported; the
            # facade degrades permanently to threads.
            assert table.process_pool() is None
            assert table.scatter_mode == "thread"
        finally:
            proc.close()
            single.close()


# ----------------------------------------------------------------------
# wiring: env override, builder and CLI
# ----------------------------------------------------------------------
class TestWiring:
    def test_env_override_sizes_scatter_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCATTER_WORKERS", "3")
        table = ShardedTable(small_car_schema(), 8)
        assert table.scatter_workers == 3
        table.close()
        # Still capped by the shard count.
        table = ShardedTable(small_car_schema(), 2)
        assert table.scatter_workers == 2
        table.close()
        # An explicit argument wins over the environment.
        table = ShardedTable(small_car_schema(), 8, scatter_workers=5)
        assert table.scatter_workers == 5
        table.close()
        # Garbage values fall back to the cpu-count default.
        monkeypatch.setenv("REPRO_SCATTER_WORKERS", "banana")
        table = ShardedTable(small_car_schema(), 8)
        assert table.scatter_workers == min(8, os.cpu_count() or 1)
        table.close()

    def test_builder_forwards_scatter_mode(self):
        from repro.api.builder import SystemBuilder

        system = (
            SystemBuilder()
            .with_domains("cars")
            .ads_per_domain(60)
            .sessions_per_domain(60)
            .corpus_documents(60)
            .train_classifier(False)
            .shards(2, scatter_mode="process")
            .build()
        )
        try:
            table = system.database.table("car_ads")
            assert table.scatter_mode == "process"
        finally:
            system.close()

    def test_cli_parses_and_forwards_scatter_mode(self, monkeypatch):
        import repro.__main__ as cli

        args = cli.build_arg_parser().parse_args(
            ["--shards", "2", "--scatter-mode", "process",
             "--domain", "cars", "honda"]
        )
        assert args.scatter_mode == "process"

        calls = {}

        class RecordingBuilder:
            def __getattr__(self, name):
                def record(*call_args, **call_kwargs):
                    calls[name] = (call_args, call_kwargs)
                    return self

                return record

        monkeypatch.setattr(cli, "SystemBuilder", RecordingBuilder)
        cli._provision_service(args)
        assert calls["shards"][0] == (2,)
        assert calls["shards"][1].get("scatter_mode") == "process"
