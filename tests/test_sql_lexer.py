"""Tests for the SQL tokenizer."""

from __future__ import annotations

import pytest

from repro.db.sql.lexer import SQLToken, tokenize_sql
from repro.errors import SQLSyntaxError


def kinds(sql: str) -> list[str]:
    return [token.kind for token in tokenize_sql(sql)]


def texts(sql: str) -> list[str]:
    return [token.text for token in tokenize_sql(sql)]


class TestTokenKinds:
    def test_keywords_lowercased(self):
        tokens = tokenize_sql("SELECT * FROM cars")
        assert tokens[0] == SQLToken("keyword", "select", 0)
        assert texts("SELECT * FROM cars") == ["select", "*", "from", "cars"]

    def test_identifiers_keep_case(self):
        assert texts("select Price from Cars") == [
            "select", "Price", "from", "Cars",
        ]

    def test_numbers(self):
        tokens = tokenize_sql("1 2.5 3000")
        assert [t.kind for t in tokens] == ["number"] * 3
        assert [t.text for t in tokens] == ["1", "2.5", "3000"]

    def test_string_literal(self):
        tokens = tokenize_sql("'blue'")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "blue"

    def test_string_with_escaped_quote(self):
        tokens = tokenize_sql("'o''brien'")
        assert tokens[0].text == "o'brien"

    def test_quoted_identifier(self):
        tokens = tokenize_sql('`weird name` "other"')
        assert tokens[0] == SQLToken("identifier", "weird name", 0)
        assert tokens[1].kind == "identifier"

    def test_operators(self):
        assert texts("a <= 1 and b >= 2 or c != 3 and d <> 4") == [
            "a", "<=", "1", "and", "b", ">=", "2", "or",
            "c", "!=", "3", "and", "d", "<>", "4",
        ]

    def test_punctuation(self):
        assert kinds("( ) , * .") == ["punct"] * 5


class TestLexerErrors:
    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError, match="unterminated string"):
            tokenize_sql("select 'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SQLSyntaxError, match="quoted identifier"):
            tokenize_sql("select `oops")

    def test_stray_bang(self):
        with pytest.raises(SQLSyntaxError):
            tokenize_sql("a ! b")

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize_sql("select #")
        assert excinfo.value.position == 7

    def test_positions_recorded(self):
        tokens = tokenize_sql("select price")
        assert tokens[1].position == 7
