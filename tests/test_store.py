"""Durable storage (:mod:`repro.store`): WAL, snapshots, recovery.

The contract under test, in three layers:

* **frames** — length-prefixed CRC32 JSON records; a reader walks the
  valid prefix and stops at the first torn/corrupt frame;
* **the backend** — every typed mutation delta becomes WAL frames,
  periodic atomic snapshots rotate the generation, and recovery
  (newest valid snapshot + WAL-tail replay) reproduces the database
  **bit-for-bit** (records, indexes, epochs, id allocators — the
  :func:`~repro.store.parity.database_fingerprint` definition);
* **the catalog** — ``drop_table`` is a mutation like any other
  (satellite: listeners detached, plan/fragment/answer caches swept,
  drop-then-recreate never serves stale state).

Randomized crash schedules live in ``test_store_faults.py``; this file
covers the deterministic surface.
"""

from __future__ import annotations

import io
import os

import pytest

from repro.api import AnswerRequest, AnswerService, SystemBuilder
from repro.db.database import Database
from repro.db.table import MutationEvent
from repro.errors import StorageError, UnknownTableError
from repro.perf.answer_cache import AnswerCache
from repro.qa.pipeline import CQAds
from repro.shard.partition import ModuloPartitioner
from repro.store import (
    FileSystem,
    MemoryBackend,
    StorageBackend,
    WalBackend,
    database_fingerprint,
    open_database,
    recover_database,
)
from repro.store.faults import FaultPlan, FaultyFS, Transient
from repro.store.snapshot import (
    list_generations,
    snapshot_path,
    wal_path,
)
from repro.store.wal import (
    MAX_FRAME_BYTES,
    WalWriter,
    encode_frame,
    read_frames,
    scan_frames,
)
from repro.system import build_system
from tests.conftest import SMALL_CAR_ROWS, small_car_schema


def fingerprint(database: Database) -> str:
    return database_fingerprint(database)


def mutate_a_little(table) -> None:
    """A representative mutation mix: single rows, batches, updates
    (including a no-op update, which still bumps the epoch), deletes."""
    records = table.insert_many(
        [dict(row) for row in SMALL_CAR_ROWS]
    )
    table.update(records[0].record_id, {"price": 7777})
    table.update(records[1].record_id, {})  # no-op: epoch-only
    table.delete(records[2].record_id)
    table.remove_many([records[3].record_id, records[4].record_id])
    table.insert({"make": "saab", "model": "9-3", "price": 4100})


# ----------------------------------------------------------------------
# frames: the valid-prefix contract
# ----------------------------------------------------------------------
class TestFrames:
    def test_round_trip_preserves_payload_and_order(self):
        payloads = [{"t": "ins", "id": 1, "v": {"a": 1, "b": None}},
                    {"t": "del", "id": 2}]
        blob = b"".join(encode_frame(p) for p in payloads)
        scan = scan_frames(io.BytesIO(blob))
        assert scan.frames == payloads
        assert scan.valid_bytes == len(blob)
        assert scan.damage is None

    def test_torn_header_truncates(self):
        blob = encode_frame({"t": "del", "id": 1}) + b"\x00\x01"
        scan = scan_frames(io.BytesIO(blob))
        assert scan.frames == [{"t": "del", "id": 1}]
        assert scan.damage == "torn header"
        assert scan.valid_bytes == len(encode_frame({"t": "del", "id": 1}))

    def test_torn_body_truncates(self):
        whole = encode_frame({"t": "del", "id": 7})
        scan = scan_frames(io.BytesIO(whole + whole[:-3]))
        assert scan.frames == [{"t": "del", "id": 7}]
        assert scan.damage == "torn body"

    def test_checksum_mismatch_truncates(self):
        frame = bytearray(encode_frame({"t": "del", "id": 9}))
        frame[-1] ^= 0xFF  # corrupt the body, keep the length intact
        scan = scan_frames(io.BytesIO(bytes(frame)))
        assert scan.frames == [] and scan.damage == "bad checksum"
        assert scan.valid_bytes == 0

    def test_absurd_length_is_corruption_not_data(self):
        import struct

        header = struct.pack(">II", MAX_FRAME_BYTES + 1, 0)
        scan = scan_frames(io.BytesIO(header + b"x" * 64))
        assert scan.damage == "bad length" and scan.frames == []

    def test_checksummed_garbage_still_truncates(self):
        import struct
        import zlib

        body = b"\xff\xfe"  # invalid UTF-8, valid CRC
        header = struct.pack(">II", len(body), zlib.crc32(body) & 0xFFFFFFFF)
        scan = scan_frames(io.BytesIO(header + body))
        assert scan.damage == "undecodable body" and scan.frames == []


# ----------------------------------------------------------------------
# the WAL writer: policies and transient-error retry
# ----------------------------------------------------------------------
class TestWalWriter:
    def test_appends_are_readable_and_position_advances(self, tmp_path):
        fs = FileSystem()
        path = str(tmp_path / "wal.log")
        writer = WalWriter(fs, path, fsync="always")
        writer.append({"t": "del", "id": 1})
        writer.append({"t": "del", "id": 2})
        assert writer.frames_appended == 2
        assert writer.position > 0
        writer.close()
        scan = read_frames(fs, path)
        assert [f["id"] for f in scan.frames] == [1, 2]
        assert scan.valid_bytes == writer.position

    def test_interval_policy_syncs_on_the_clock(self, tmp_path):
        clock = {"now": 0.0}
        syncs = []

        class CountingFS(FileSystem):
            def fsync(self, handle):
                syncs.append(clock["now"])
                super().fsync(handle)

        writer = WalWriter(
            CountingFS(),
            str(tmp_path / "wal.log"),
            fsync="interval",
            fsync_interval_s=1.0,
            clock=lambda: clock["now"],
        )
        writer.append({"t": "del", "id": 1})  # within the interval
        assert syncs == []
        clock["now"] = 1.5
        writer.append({"t": "del", "id": 2})  # interval elapsed
        assert len(syncs) == 1

    def test_off_policy_never_syncs_on_append(self, tmp_path):
        calls = []

        class CountingFS(FileSystem):
            def fsync(self, handle):
                calls.append(1)
                super().fsync(handle)

        writer = WalWriter(
            CountingFS(), str(tmp_path / "wal.log"), fsync="off"
        )
        for index in range(10):
            writer.append({"t": "del", "id": index})
        writer.close()
        assert calls == []  # close under "off" skips the final sync too

    def test_transient_error_rewinds_and_retries(self, tmp_path):
        plan = FaultPlan({2: Transient()})  # second write fails halfway
        fs = FaultyFS(FileSystem(), plan)
        writer = WalWriter(
            fs, str(tmp_path / "wal.log"), fsync="off",
            sleep=lambda seconds: None,
        )
        writer.append({"t": "del", "id": 1})
        writer.append({"t": "del", "id": 2})  # retried internally
        writer.close()
        assert writer.retries == 1
        scan = read_frames(FileSystem(), str(tmp_path / "wal.log"))
        assert scan.damage is None  # the partial first attempt was cut
        assert [f["id"] for f in scan.frames] == [1, 2]

    def test_exhausted_retry_budget_raises_storage_error(self, tmp_path):
        plan = FaultPlan({1: Transient(), 2: Transient(), 3: Transient()})
        writer = WalWriter(
            FaultyFS(FileSystem(), plan),
            str(tmp_path / "wal.log"),
            fsync="off",
            retry_attempts=2,
            sleep=lambda seconds: None,
        )
        with pytest.raises(StorageError, match="after 3 attempts"):
            writer.append({"t": "del", "id": 1})

    def test_resume_position_truncates_the_damaged_tail(self, tmp_path):
        fs = FileSystem()
        path = str(tmp_path / "wal.log")
        writer = WalWriter(fs, path, fsync="off")
        writer.append({"t": "del", "id": 1})
        good = writer.position
        writer.close()
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef")  # torn garbage tail
        resumed = WalWriter(fs, path, position=good, fsync="off")
        resumed.append({"t": "del", "id": 2})
        resumed.close()
        scan = read_frames(fs, path)
        assert scan.damage is None
        assert [f["id"] for f in scan.frames] == [1, 2]

    def test_rejects_unknown_policy(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WalWriter(FileSystem(), str(tmp_path / "w.log"), fsync="maybe")


# ----------------------------------------------------------------------
# backend round trips: recovered state is bit-identical
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_plain_table_recovers_bit_identical(self, tmp_path):
        directory = str(tmp_path / "store")
        database = Database(storage=WalBackend(directory, fsync="off"))
        mutate_a_little(database.create_table(small_car_schema()))
        database.storage.close()
        recovered, report = recover_database(directory)
        assert fingerprint(recovered) == fingerprint(database)
        assert report.truncated == {}
        assert report.records == len(database.table("car_ads"))

    @pytest.mark.parametrize("partitioner", [None, ModuloPartitioner()])
    def test_sharded_table_recovers_bit_identical(self, tmp_path, partitioner):
        directory = str(tmp_path / "store")
        database = Database(storage=WalBackend(directory, fsync="off"))
        table = database.create_table(
            small_car_schema(),
            substring_gram=2,
            shards=3,
            partitioner=partitioner,
        )
        mutate_a_little(table)
        database.storage.snapshot()
        table.insert({"make": "fiat", "model": "500", "price": 3000})
        database.storage.close()
        recovered, report = recover_database(directory)
        assert fingerprint(recovered) == fingerprint(database)
        # Configuration survived, not just rows.
        rebuilt = recovered.table("car_ads")
        assert rebuilt.shard_count == 3
        assert type(rebuilt.partitioner) is type(table.partitioner)
        gram = next(iter(rebuilt.shards[0]._substring_indexes.values()))
        assert gram.gram_length == 2

    def test_drop_and_recreate_replay(self, tmp_path):
        directory = str(tmp_path / "store")
        database = Database(storage=WalBackend(directory, fsync="off"))
        first = database.create_table(small_car_schema())
        first.insert(dict(SMALL_CAR_ROWS[0]))
        database.drop_table("car_ads")
        second = database.create_table(small_car_schema(), shards=2)
        second.insert(dict(SMALL_CAR_ROWS[1]))
        database.storage.close()
        recovered, _ = recover_database(directory)
        assert fingerprint(recovered) == fingerprint(database)
        assert recovered.table("car_ads").shard_count == 2

    def test_open_database_resumes_appending(self, tmp_path):
        directory = str(tmp_path / "store")
        database, backend, report = open_database(directory, fsync="off")
        assert report is None  # fresh directory
        mutate_a_little(database.create_table(small_car_schema()))
        backend.close()
        reopened, backend, report = open_database(directory, fsync="off")
        assert report is not None
        assert fingerprint(reopened) == fingerprint(database)
        reopened.table("car_ads").insert(
            {"make": "vw", "model": "golf", "price": 5200}
        )
        backend.snapshot()
        backend.close()
        final, report = recover_database(directory)
        assert fingerprint(final) == fingerprint(reopened)
        assert report.base_generation == report.generation  # snapshot base

    def test_custom_partitioner_cannot_be_persisted(self, tmp_path):
        class Custom:
            def shard_for(self, record_id, shard_count):
                return 0

        database = Database(
            storage=WalBackend(str(tmp_path / "store"), fsync="off")
        )
        with pytest.raises(StorageError, match="cannot persist partitioner"):
            database.create_table(
                small_car_schema(), shards=2, partitioner=Custom()
            )


# ----------------------------------------------------------------------
# snapshots: rotation, fallback, cleanup
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_auto_snapshot_rotates_and_retires_generations(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = WalBackend(
            directory, fsync="off", snapshot_every=10, keep_generations=1
        )
        database = Database(storage=backend)
        table = database.create_table(small_car_schema())
        for index in range(45):
            table.insert(
                {"make": "honda", "model": "fit", "price": 1000 + index}
            )
        assert backend.stats.snapshots_written >= 3
        snapshots, wals = list_generations(FileSystem(), directory)
        # Retention: current and previous generation pairs only.
        assert snapshots == [backend.generation - 1, backend.generation]
        assert wals == [backend.generation - 1, backend.generation]
        backend.close()
        recovered, report = recover_database(directory)
        assert fingerprint(recovered) == fingerprint(database)
        assert report.base_generation == backend.generation

    def test_corrupt_newest_snapshot_falls_back_a_generation(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = WalBackend(directory, fsync="off", snapshot_every=None)
        database = Database(storage=backend)
        table = database.create_table(small_car_schema())
        table.insert(dict(SMALL_CAR_ROWS[0]))
        backend.snapshot()  # generation 1
        table.insert(dict(SMALL_CAR_ROWS[1]))
        backend.snapshot()  # generation 2
        table.insert(dict(SMALL_CAR_ROWS[2]))
        backend.close()
        newest = snapshot_path(directory, 2)
        blob = bytearray(open(newest, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(newest, "wb") as handle:
            handle.write(bytes(blob))
        recovered, report = recover_database(directory)
        # The older snapshot plus BOTH newer WALs reproduce everything:
        # a corrupt snapshot costs replay time, never data.
        assert fingerprint(recovered) == fingerprint(database)
        assert report.base_generation == 1
        assert len(report.snapshots_rejected) == 1
        assert wal_path(directory, 1) in report.wals_replayed
        assert wal_path(directory, 2) in report.wals_replayed

    def test_unloggable_event_forces_an_immediate_snapshot(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = WalBackend(directory, fsync="off", snapshot_every=None)
        database = Database(storage=backend)
        table = database.create_table(small_car_schema())
        table.insert(dict(SMALL_CAR_ROWS[0]))
        before = backend.stats.snapshots_written
        # A hand-built untyped event has no frame representation; the
        # backend must capture the state some other way — a snapshot.
        table._emit(MutationEvent(table, "mystery", -1, table.epoch))
        assert backend.stats.unloggable_events == 1
        assert backend.stats.snapshots_written == before + 1
        backend.close()
        recovered, _ = recover_database(directory)
        assert fingerprint(recovered) == fingerprint(database)

    def test_stray_tmp_files_are_reclaimed_on_attach(self, tmp_path):
        directory = str(tmp_path / "store")
        database = Database(storage=WalBackend(directory, fsync="off"))
        database.create_table(small_car_schema())
        database.storage.close()
        stray = snapshot_path(directory, 9) + ".tmp"
        with open(stray, "wb") as handle:
            handle.write(b"half a snapshot")
        _, backend, _ = open_database(directory, fsync="off")
        backend.close()
        assert not FileSystem().exists(stray)


# ----------------------------------------------------------------------
# recovery edges
# ----------------------------------------------------------------------
class TestRecovery:
    def test_torn_wal_tail_is_truncated_and_writable_again(self, tmp_path):
        directory = str(tmp_path / "store")
        database = Database(storage=WalBackend(directory, fsync="off"))
        table = database.create_table(small_car_schema())
        table.insert(dict(SMALL_CAR_ROWS[0]))
        database.storage.close()
        live = fingerprint(database)
        path = wal_path(directory, 0)
        clean_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(encode_frame({"t": "del"})[:5])  # torn append
        recovered, report = recover_database(directory)
        assert fingerprint(recovered) == live
        assert report.truncated == {path: ("torn header", clean_size)}
        # repair=True cut the file, so a resumed writer appends cleanly.
        reopened, backend, _ = open_database(directory, fsync="off")
        reopened.table("car_ads").insert(dict(SMALL_CAR_ROWS[1]))
        backend.close()
        final, report = recover_database(directory)
        assert report.truncated == {}
        assert len(final.table("car_ads")) == 2

    def test_no_repair_reports_without_touching_the_file(self, tmp_path):
        directory = str(tmp_path / "store")
        database = Database(storage=WalBackend(directory, fsync="off"))
        database.create_table(small_car_schema())
        database.storage.close()
        path = wal_path(directory, 0)
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        size_before = len(open(path, "rb").read())
        _, report = recover_database(directory, repair=False)
        assert path in report.truncated
        assert len(open(path, "rb").read()) == size_before

    def test_empty_directory_has_nothing_to_recover(self, tmp_path):
        with pytest.raises(StorageError, match="nothing to recover"):
            recover_database(str(tmp_path / "void"))

    def test_unreachable_history_raises(self, tmp_path):
        # A WAL chain that does not start at generation 0 and has no
        # loadable snapshot cannot reproduce the database.
        directory = str(tmp_path / "store")
        FileSystem().makedirs(directory)
        with open(wal_path(directory, 3), "wb") as handle:
            handle.write(encode_frame({"t": "del", "table": "x", "id": 1}))
        with pytest.raises(StorageError, match="no loadable snapshot"):
            recover_database(directory)


# ----------------------------------------------------------------------
# lifecycle and the backend protocol
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_fresh_attach_refuses_a_directory_with_state(self, tmp_path):
        directory = str(tmp_path / "store")
        database = Database(storage=WalBackend(directory, fsync="off"))
        database.create_table(small_car_schema())
        database.storage.close()
        with pytest.raises(StorageError, match="open_database"):
            Database(storage=WalBackend(directory, fsync="off"))

    def test_closed_backend_makes_further_mutations_raise(self, tmp_path):
        database = Database(
            storage=WalBackend(str(tmp_path / "store"), fsync="off")
        )
        table = database.create_table(small_car_schema())
        table.insert(dict(SMALL_CAR_ROWS[0]))
        database.storage.close()
        database.storage.close()  # idempotent
        # The catalog listener was removed with the backend, so normal
        # row mutations keep working in memory...
        table.insert(dict(SMALL_CAR_ROWS[1]))
        # ...but creating a table still consults the dead storage.
        schema = small_car_schema()
        schema = type(schema)(
            table_name="other_ads", columns=schema.columns
        )
        with pytest.raises(StorageError, match="closed"):
            database.create_table(schema)

    def test_one_backend_per_database(self, tmp_path):
        database = Database(
            storage=WalBackend(str(tmp_path / "a"), fsync="off")
        )
        with pytest.raises(ValueError, match="already has a storage"):
            database.attach_storage(WalBackend(str(tmp_path / "b")))
        database.storage.close()

    def test_memory_backend_satisfies_the_protocol(self):
        assert isinstance(MemoryBackend(), StorageBackend)
        assert isinstance(WalBackend("/nonexistent"), StorageBackend)
        database = Database(storage=MemoryBackend())
        table = database.create_table(small_car_schema())
        table.insert(dict(SMALL_CAR_ROWS[0]))  # no-op durability
        database.storage.close()
        table.insert(dict(SMALL_CAR_ROWS[1]))  # still fine

    def test_keep_generations_must_leave_a_fallback(self):
        with pytest.raises(ValueError, match="keep_generations"):
            WalBackend("/tmp/x", keep_generations=0)


# ----------------------------------------------------------------------
# wiring: build_system, SystemBuilder, BuiltSystem
# ----------------------------------------------------------------------
class TestWiring:
    def test_build_system_accepts_a_directory_path(self, tmp_path):
        directory = tmp_path / "store"
        system = build_system(
            ["cars"],
            ads_per_domain=15,
            sessions_per_domain=20,
            corpus_documents=20,
            storage=directory,  # PathLike -> WalBackend
        )
        assert isinstance(system.storage, WalBackend)
        live = fingerprint(system.database)
        system.close()  # closes the backend too
        recovered, report = recover_database(str(directory))
        assert fingerprint(recovered) == live
        assert report.records == 15

    def test_builder_storage_builds_a_fresh_backend_per_build(
        self, tmp_path
    ):
        builder = (
            SystemBuilder()
            .with_domains("cars")
            .ads_per_domain(10)
            .sessions_per_domain(20)
            .corpus_documents(20)
            .storage(str(tmp_path / "one"), fsync="off", snapshot_every=None)
        )
        first = builder.build()
        assert first.storage is not None
        assert first.storage.fsync_policy == "off"
        first.close()
        # Re-pointing and rebuilding opens an independent backend.
        builder.storage(str(tmp_path / "two"), fsync="off")
        second = builder.build()
        assert second.storage.directory == str(tmp_path / "two")
        second.close()
        assert fingerprint(
            recover_database(str(tmp_path / "one"))[0]
        ) == fingerprint(recover_database(str(tmp_path / "two"))[0])

    def test_builder_accepts_a_backend_instance_once(self, tmp_path):
        backend = WalBackend(str(tmp_path / "store"), fsync="off")
        builder = (
            SystemBuilder()
            .with_domains("cars")
            .ads_per_domain(8)
            .sessions_per_domain(20)
            .corpus_documents(20)
            .storage(backend)
        )
        system = builder.build()
        assert system.storage is backend
        system.close()
        rebuild = builder.build()  # the instance was consumed
        assert rebuild.storage is None
        rebuild.close()

    def test_builder_rejects_options_with_an_instance(self, tmp_path):
        backend = WalBackend(str(tmp_path / "store"))
        with pytest.raises(TypeError, match="storage options"):
            SystemBuilder().storage(backend, fsync="off")

    def test_builder_storage_none_clears(self, tmp_path):
        builder = SystemBuilder().storage(str(tmp_path / "store"))
        builder.storage(None)
        assert builder._storage_for_build() is None


# ----------------------------------------------------------------------
# satellite: drop_table is a real mutation
# ----------------------------------------------------------------------
class TestDropTable:
    def test_drop_emits_a_catalog_event_and_detaches_listeners(self):
        database = Database()
        table = database.create_table(small_car_schema())
        events = []
        database.add_listener(events.append)
        database.drop_table("car_ads")
        assert [e.kind for e in events] == ["drop"]
        assert events[0].table is table and events[0].record_id == -1
        # Catalog listeners were detached from the dead object: a
        # stale-reference mutation no longer reaches them.
        table.insert(dict(SMALL_CAR_ROWS[0]))
        assert [e.kind for e in events] == ["drop"]

    def test_drop_unknown_table_raises(self):
        with pytest.raises(UnknownTableError):
            Database().drop_table("ghost_ads")

    def test_drop_sweeps_the_default_plan_cache(self):
        from repro.db.sql.plan_cache import DEFAULT_PLAN_CACHE
        from repro.db.sql.executor import SQLExecutor

        database = Database()
        table = database.create_table(small_car_schema())
        table.insert(dict(SMALL_CAR_ROWS[0]))
        executor = SQLExecutor(database)
        sql = "SELECT * FROM car_ads WHERE make = 'honda'"
        executor.execute_sql(sql)
        assert sql in DEFAULT_PLAN_CACHE
        database.drop_table("car_ads")
        assert sql not in DEFAULT_PLAN_CACHE

    def test_drop_sweeps_fragment_cache_and_detaches_resources(self):
        database = Database()
        table = database.create_table(small_car_schema())
        table.insert_many([dict(row) for row in SMALL_CAR_ROWS])
        cqads = CQAds(database)
        cache = cqads.fragment_cache
        assert cache is not None
        from repro.db.sql.executor import SQLExecutor
        from repro.perf.subplan import unit_id_sets
        from repro.qa.conditions import Condition, ConditionOp
        from repro.db.schema import AttributeType
        from repro.ranking.rank_sim import ScoringUnit

        unit = ScoringUnit(conditions=(
            Condition("make", AttributeType.TYPE_I, ConditionOp.EQ, "honda"),
        ))
        unit_id_sets(SQLExecutor(database), table, [unit], cache)
        assert len(cache) == 1
        database.drop_table("car_ads")
        # Wholesale sweep: a recreated table restarts its epochs, so
        # epoch-keyed staleness checks cannot be trusted across a drop.
        assert len(cache) == 0

    def test_drop_then_recreate_never_serves_stale_answers(self):
        system = build_system(
            ["cars"],
            ads_per_domain=30,
            sessions_per_domain=40,
            corpus_documents=40,
        )
        service = AnswerService(system.cqads, cache=AnswerCache(16))
        request = AnswerRequest(
            question="honda accord blue", domain="cars"
        )
        before = service.answer(request)
        assert service.answer(request).timings["cache"] is True
        table_name = system.cqads.domain("cars").schema.table_name
        old_table = system.database.table(table_name)
        rows = [dict(record) for record in old_table.snapshot()]
        system.database.drop_table(table_name)
        # Recreate under the same name with one matching row removed.
        schema = old_table.schema
        fresh = system.database.create_table(schema)
        gone = {
            answer.record.record_id for answer in before.answers
        }
        for record, row in zip(old_table.snapshot(), rows):
            if record.record_id not in gone:
                fresh.insert(row, record_id=record.record_id)
        after = service.answer(request)
        assert after.timings["cache"] is False  # never the stale entry
        answered = {a.record.record_id for a in after.answers}
        assert not (answered & gone)
        service.close()

    def test_drop_on_durable_database_is_logged(self, tmp_path):
        directory = str(tmp_path / "store")
        database = Database(storage=WalBackend(directory, fsync="off"))
        table = database.create_table(small_car_schema())
        table.insert(dict(SMALL_CAR_ROWS[0]))
        database.drop_table("car_ads")
        database.storage.close()
        recovered, _ = recover_database(directory)
        assert len(recovered) == 0
        assert fingerprint(recovered) == fingerprint(database)


# ----------------------------------------------------------------------
# CLI: snapshot / recover subcommands
# ----------------------------------------------------------------------
class TestCli:
    def _seed_directory(self, directory: str) -> str:
        database = Database(storage=WalBackend(directory, fsync="off"))
        mutate_a_little(database.create_table(small_car_schema()))
        database.storage.close()
        return fingerprint(database)

    def test_recover_prints_report_and_fingerprint(self, tmp_path, capsys):
        from repro.__main__ import main

        directory = str(tmp_path / "store")
        live = self._seed_directory(directory)
        assert main(["recover", directory, "--verify"]) == 0
        out = capsys.readouterr().out
        assert live in out
        assert directory in out

    def test_recover_json_payload(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        directory = str(tmp_path / "store")
        self._seed_directory(directory)
        assert main(["recover", directory, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == directory
        assert payload["tables"] == 1
        assert payload["frames_replayed"] > 0

    def test_recover_missing_directory_fails_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["recover", str(tmp_path / "void")]) == 1
        assert "recovery failed" in capsys.readouterr().err

    def test_snapshot_rotates_an_existing_directory(self, tmp_path, capsys):
        from repro.__main__ import main

        directory = str(tmp_path / "store")
        live = self._seed_directory(directory)
        assert main(["snapshot", directory, "--fsync", "off"]) == 0
        assert "generation:  1" in capsys.readouterr().out
        snapshots, _ = list_generations(FileSystem(), directory)
        assert snapshots == [1]
        recovered, report = recover_database(directory)
        assert fingerprint(recovered) == live
        assert report.base_generation == 1
