"""Cache correctness: plan cache, answer cache, concurrency.

Covers the cache requirements of the perf subsystem:

* plan-cache eviction (bounded LRU, oldest statement leaves first) and
  epoch-driven table invalidation;
* answer-cache **auto**-invalidation after a table mutation (the
  service subscribes to mutation epochs — no manual call needed; the
  manual ``invalidate_cache`` stays as a compatible override);
* thread-safety of concurrent ``answer_batch`` calls against a warm
  cache (and of the underlying LRU).
"""

from __future__ import annotations

import threading

import pytest

from repro.api.requests import AnswerRequest
from repro.api.service import AnswerService
from repro.db.sql.executor import SQLExecutor
from repro.db.sql.plan_cache import PlanCache
from repro.perf.answer_cache import AnswerCache
from repro.perf.lru import LRUCache
from repro.system import build_system


@pytest.fixture(scope="module")
def small_system():
    """A tiny cars-only build; tests that mutate copy state carefully."""
    return build_system(
        ["cars"],
        ads_per_domain=60,
        sessions_per_domain=80,
        corpus_documents=80,
    )


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b, the least recently used
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_pop_where(self):
        cache = LRUCache(8)
        for index in range(5):
            cache.put(index, index * 10)
        dropped = cache.pop_where(lambda key, value: key % 2 == 0)
        assert dropped == 3
        assert len(cache) == 2

    def test_concurrent_hammer_stays_bounded(self):
        cache = LRUCache(32)
        errors: list[Exception] = []

        def worker(offset: int) -> None:
            try:
                for index in range(500):
                    cache.put((offset, index % 64), index)
                    cache.get((offset, (index * 7) % 64))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(offset,)) for offset in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32


class TestPlanCache:
    def test_hit_returns_same_parsed_statement(self):
        cache = PlanCache(capacity=4)
        sql = "SELECT * FROM car_ads WHERE make = 'honda' LIMIT 5"
        first = cache.get(sql)
        second = cache.get(sql)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction(self):
        cache = PlanCache(capacity=2)
        statements = [f"SELECT * FROM t WHERE price < {n}" for n in range(3)]
        for sql in statements:
            cache.get(sql)
        assert len(cache) == 2
        assert statements[0] not in cache  # oldest evicted
        assert statements[1] in cache and statements[2] in cache
        assert cache.evictions == 1

    def test_parse_errors_are_not_cached(self):
        cache = PlanCache(capacity=2)
        with pytest.raises(Exception):
            cache.get("SELECT FROM WHERE")
        assert len(cache) == 0

    def test_executor_routes_execute_sql_through_cache(self, car_database):
        cache = PlanCache(capacity=8)
        executor = SQLExecutor(car_database, plan_cache=cache)
        sql = "SELECT * FROM car_ads WHERE make = 'honda'"
        first = executor.execute_sql(sql)
        second = executor.execute_sql(sql)
        assert cache.hits == 1 and cache.misses == 1
        assert [r.record_id for r in first.records] == [
            r.record_id for r in second.records
        ]

    def test_invalidate_table_drops_matching_plans(self):
        cache = PlanCache(capacity=8)
        cache.get("SELECT * FROM car_ads WHERE make = 'honda'")
        cache.get("SELECT * FROM job_ads WHERE title = 'cook'")
        assert cache.invalidate_table("car_ads") == 1
        assert len(cache) == 1
        assert "SELECT * FROM job_ads WHERE title = 'cook'" in cache

    def test_default_cache_auto_invalidated_by_mutation(self, car_database):
        from repro.db.sql.plan_cache import DEFAULT_PLAN_CACHE

        executor = SQLExecutor(car_database)
        sql = "SELECT * FROM car_ads WHERE color = 'blue'"
        executor.execute_sql(sql)
        assert sql in DEFAULT_PLAN_CACHE
        table = car_database.table("car_ads")
        donor = next(iter(table))
        inserted = table.insert(dict(donor))
        assert sql not in DEFAULT_PLAN_CACHE
        table.delete(inserted.record_id)


def _signature(result):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind)
        for a in result.answers
    ]


class TestAnswerCache:
    QUESTION = "honda accord blue less than 15000 dollars"

    def test_repeat_is_served_from_cache(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(16))
        first = service.answer(AnswerRequest(question=self.QUESTION, domain="cars"))
        second = service.answer(
            AnswerRequest(question=self.QUESTION, domain="cars")
        )
        assert service.cache.hits == 1 and service.cache.misses == 1
        assert _signature(first) == _signature(second)

    def test_normalized_question_hits_and_keeps_raw_text(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(16))
        service.answer(AnswerRequest(question=self.QUESTION, domain="cars"))
        variant = "  HONDA   accord blue less than 15000 dollars "
        result = service.answer(AnswerRequest(question=variant, domain="cars"))
        assert service.cache.hits == 1
        assert result.question == variant  # raw text restored on hits

    def test_use_cache_false_bypasses(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(16))
        request = AnswerRequest(question=self.QUESTION, domain="cars")
        service.answer(request.with_options(use_cache=False))
        assert len(service.cache) == 0
        assert service.cache.hits == 0 and service.cache.misses == 0

    def test_options_change_misses(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(16))
        request = AnswerRequest(question=self.QUESTION, domain="cars")
        service.answer(request)
        service.answer(request.with_options(max_answers=5))
        assert service.cache.hits == 0
        assert len(service.cache) == 2

    def test_mutation_auto_invalidates(self, small_system):
        """A table mutation refreshes cached answers by itself — no
        ``invalidate_cache`` call anywhere (the retired contract)."""
        cqads = small_system.cqads
        service = AnswerService(cqads, cache=AnswerCache(16))
        request = AnswerRequest(question=self.QUESTION, domain="cars")
        service.answer(request)
        assert len(service.cache) == 1
        table_name = cqads.domain("cars").schema.table_name
        table = cqads.database.table(table_name)
        donor = next(iter(table))
        inserted = table.insert(dict(donor))
        # The insert's mutation epoch dropped the domain's entries.
        assert len(service.cache) == 0
        fresh = service.answer(request)
        uncached = AnswerService(cqads).answer(request)
        assert _signature(fresh) == _signature(uncached)
        # The delete (cleanup) auto-invalidates again symmetrically.
        table.delete(inserted.record_id)
        assert len(service.cache) == 0
        assert _signature(service.answer(request)) == _signature(
            AnswerService(cqads).answer(request)
        )

    def test_manual_invalidation_still_supported(self, small_system):
        """The manual hook remains a compatible override (by domain
        name, table name, or everything) even though mutations no
        longer require it."""
        cqads = small_system.cqads
        service = AnswerService(cqads, cache=AnswerCache(16))
        service.answer(AnswerRequest(question=self.QUESTION, domain="cars"))
        table_name = cqads.domain("cars").schema.table_name
        assert service.invalidate_cache(table_name) == 1
        service.answer(AnswerRequest(question=self.QUESTION, domain="cars"))
        service.answer(AnswerRequest(question="red honda civic", domain="cars"))
        assert service.invalidate_cache() == 2
        assert len(service.cache) == 0

    def test_concurrent_batches_on_warm_cache(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(64))
        questions = [
            "honda accord blue",
            "red honda civic",
            "toyota under 10000 dollars",
            "cheapest honda",
        ]
        requests = [
            AnswerRequest(question=text, domain="cars") for text in questions
        ]
        warm = {
            request.question: _signature(service.answer(request))
            for request in requests
        }
        errors: list[Exception] = []

        def worker() -> None:
            try:
                results = service.answer_batch(requests * 5, workers=4)
                for request, result in zip(requests * 5, results):
                    assert _signature(result) == warm[request.question]
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.cache.hits > 0
        assert len(service.cache) == len(questions)


class TestMutationRaces:
    """Regression tests for the mutation/cache interleavings."""

    def test_stale_store_after_invalidation_is_unreachable(self, small_system):
        """A result computed before a mutation but stored after the
        invalidation sweep (the answer_batch race) must never be
        served: the key's generation component versions it out."""
        from repro.api.requests import ResolvedOptions

        cqads = small_system.cqads
        service = AnswerService(cqads, cache=AnswerCache(16))
        request = AnswerRequest(
            question="honda accord blue less than 15000 dollars", domain="cars"
        )
        options = ResolvedOptions.resolve(request.options, cqads)
        # Simulate the racing thread: key captured, pipeline run...
        stale_key = service._cache_key(request, options)
        stale_result = service.pipeline.run(cqads, request)
        # ... then the mutation lands (bumps generation, sweeps cache),
        table = cqads.database.table("car_ads")
        inserted = table.insert(
            {"make": "honda", "model": "accord", "color": "blue", "price": 100}
        )
        # ... and the racing thread stores its pre-mutation result.
        service.cache.store(stale_key, stale_result.domain, stale_result)
        fresh = service.answer(request)
        assert inserted.record_id in [
            a.record.record_id for a in fresh.ranked_pool
        ]
        table.delete(inserted.record_id)

    def test_insert_many_notifies_listeners_once(self, small_system):
        table = small_system.cqads.database.table("car_ads")
        donor = dict(next(iter(table)))
        events = []
        listener = events.append
        table.add_listener(listener)
        try:
            epoch_before = table.epoch
            inserted = table.insert_many([dict(donor) for _ in range(5)])
            assert table.epoch == epoch_before + 5  # versioning per row
            assert len(events) == 1  # one invalidation sweep per batch
            assert events[0].kind == "insert"
            assert events[0].record_id == inserted[-1].record_id
            assert events[0].epoch == table.epoch
        finally:
            table.remove_listener(listener)
            for record in inserted:
                table.delete(record.record_id)

    def test_cqads_close_detaches_database_listener(self):
        from repro.db.database import Database
        from repro.qa.pipeline import CQAds
        from tests.conftest import small_car_schema

        database = Database()
        engine = CQAds(database)
        assert engine._on_table_mutation in database._listeners
        engine.close()
        engine.close()  # idempotent
        assert engine._on_table_mutation not in database._listeners
        # A table created later must not re-acquire the dead engine.
        table = database.create_table(small_car_schema())
        assert engine._on_table_mutation not in table._listeners

    def test_cqads_close_detaches_resources_listeners(self):
        system = build_system(
            ["cars"],
            ads_per_domain=40,
            sessions_per_domain=40,
            corpus_documents=40,
        )
        cqads = system.cqads
        resources = cqads.context("cars").resources
        table = cqads.database.table("car_ads")
        assert resources._on_mutation in table._listeners
        cqads.close()
        assert resources._on_mutation not in table._listeners
        assert resources.table is None
        # The engine stays usable: context() re-attaches on next use.
        assert cqads.answer("honda", domain="cars").answers
        assert resources.table is table
        assert resources._on_mutation in table._listeners

    def test_per_domain_generations_keep_other_domains_cached(self):
        system = build_system(
            ["cars", "motorcycles"],
            ads_per_domain=50,
            sessions_per_domain=60,
            corpus_documents=60,
        )
        service = AnswerService(system.cqads, cache=AnswerCache(32))
        cars = AnswerRequest(question="honda accord blue", domain="cars")
        bikes = AnswerRequest(question="yamaha", domain="motorcycles")
        service.answer(cars)
        service.answer(bikes)
        table = system.cqads.database.table("car_ads")
        donor = dict(next(iter(table)))
        inserted = table.insert(donor)
        # The cars entry is gone; the motorcycles entry is untouched
        # AND still reachable (its domain generation did not move).
        assert len(service.cache) == 1
        hits_before = service.cache.hits
        service.answer(bikes)
        assert service.cache.hits == hits_before + 1
        table.delete(inserted.record_id)

    def test_mutations_while_serving_do_not_crash(self):
        """Concurrent answering + mutating: the snapshot-based column
        store rebuild and listener sweeps must never raise (answers
        during the overlap may reflect either table state)."""
        system = build_system(
            ["cars"],
            ads_per_domain=60,
            sessions_per_domain=60,
            corpus_documents=60,
        )
        service = AnswerService(system.cqads, cache=AnswerCache(32))
        table = system.cqads.database.table("car_ads")
        donor = dict(next(iter(table)))
        errors: list[Exception] = []
        stop = threading.Event()

        def asker() -> None:
            questions = [
                "honda accord blue less than 15000 dollars",
                "red toyota camry",
                "cheapest honda",
            ]
            try:
                while not stop.is_set():
                    for question in questions:
                        service.answer(
                            AnswerRequest(question=question, domain="cars")
                        )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=asker) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(30):
                record = table.insert(donor)
                table.update(record.record_id, {"color": "green"})
                table.delete(record.record_id)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors

    def test_reattach_after_detached_mutation_is_fresh(self):
        """Updates made while an engine is close()d fire no listener;
        the lazy re-attach must start the per-record memos clean."""
        system = build_system(
            ["cars"],
            ads_per_domain=40,
            sessions_per_domain=40,
            corpus_documents=40,
        )
        cqads = system.cqads
        resources = cqads.context("cars").resources
        table = cqads.database.table("car_ads")
        record = table.insert(
            {"make": "honda", "model": "accord", "color": "blue", "price": 900}
        )
        # Warm the per-record memo, detach, mutate in the blind window.
        assert resources.lowered_value(record, "color") == "blue"
        cqads.close()
        table.update(record.record_id, {"color": "red"})
        # Re-attach (lazily, via context()) and re-read: no stale blue.
        cqads.context("cars")
        assert resources.lowered_value(record, "color") == "red"
        table.delete(record.record_id)
