"""Cache correctness: plan cache, answer cache, concurrency.

Covers the three satellite requirements of the perf subsystem:

* plan-cache eviction (bounded LRU, oldest statement leaves first);
* answer-cache invalidation after a table mutation (the explicit
  contract: stale until invalidated, fresh afterwards);
* thread-safety of concurrent ``answer_batch`` calls against a warm
  cache (and of the underlying LRU).
"""

from __future__ import annotations

import threading

import pytest

from repro.api.requests import AnswerRequest
from repro.api.service import AnswerService
from repro.db.sql.executor import SQLExecutor
from repro.db.sql.plan_cache import PlanCache
from repro.perf.answer_cache import AnswerCache
from repro.perf.lru import LRUCache
from repro.system import build_system


@pytest.fixture(scope="module")
def small_system():
    """A tiny cars-only build; tests that mutate copy state carefully."""
    return build_system(
        ["cars"],
        ads_per_domain=60,
        sessions_per_domain=80,
        corpus_documents=80,
    )


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b, the least recently used
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_pop_where(self):
        cache = LRUCache(8)
        for index in range(5):
            cache.put(index, index * 10)
        dropped = cache.pop_where(lambda key, value: key % 2 == 0)
        assert dropped == 3
        assert len(cache) == 2

    def test_concurrent_hammer_stays_bounded(self):
        cache = LRUCache(32)
        errors: list[Exception] = []

        def worker(offset: int) -> None:
            try:
                for index in range(500):
                    cache.put((offset, index % 64), index)
                    cache.get((offset, (index * 7) % 64))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(offset,)) for offset in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32


class TestPlanCache:
    def test_hit_returns_same_parsed_statement(self):
        cache = PlanCache(capacity=4)
        sql = "SELECT * FROM car_ads WHERE make = 'honda' LIMIT 5"
        first = cache.get(sql)
        second = cache.get(sql)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction(self):
        cache = PlanCache(capacity=2)
        statements = [f"SELECT * FROM t WHERE price < {n}" for n in range(3)]
        for sql in statements:
            cache.get(sql)
        assert len(cache) == 2
        assert statements[0] not in cache  # oldest evicted
        assert statements[1] in cache and statements[2] in cache
        assert cache.evictions == 1

    def test_parse_errors_are_not_cached(self):
        cache = PlanCache(capacity=2)
        with pytest.raises(Exception):
            cache.get("SELECT FROM WHERE")
        assert len(cache) == 0

    def test_executor_routes_execute_sql_through_cache(self, car_database):
        cache = PlanCache(capacity=8)
        executor = SQLExecutor(car_database, plan_cache=cache)
        sql = "SELECT * FROM car_ads WHERE make = 'honda'"
        first = executor.execute_sql(sql)
        second = executor.execute_sql(sql)
        assert cache.hits == 1 and cache.misses == 1
        assert [r.record_id for r in first.records] == [
            r.record_id for r in second.records
        ]


def _signature(result):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind)
        for a in result.answers
    ]


class TestAnswerCache:
    QUESTION = "honda accord blue less than 15000 dollars"

    def test_repeat_is_served_from_cache(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(16))
        first = service.answer(AnswerRequest(question=self.QUESTION, domain="cars"))
        second = service.answer(
            AnswerRequest(question=self.QUESTION, domain="cars")
        )
        assert service.cache.hits == 1 and service.cache.misses == 1
        assert _signature(first) == _signature(second)

    def test_normalized_question_hits_and_keeps_raw_text(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(16))
        service.answer(AnswerRequest(question=self.QUESTION, domain="cars"))
        variant = "  HONDA   accord blue less than 15000 dollars "
        result = service.answer(AnswerRequest(question=variant, domain="cars"))
        assert service.cache.hits == 1
        assert result.question == variant  # raw text restored on hits

    def test_use_cache_false_bypasses(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(16))
        request = AnswerRequest(question=self.QUESTION, domain="cars")
        service.answer(request.with_options(use_cache=False))
        assert len(service.cache) == 0
        assert service.cache.hits == 0 and service.cache.misses == 0

    def test_options_change_misses(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(16))
        request = AnswerRequest(question=self.QUESTION, domain="cars")
        service.answer(request)
        service.answer(request.with_options(max_answers=5))
        assert service.cache.hits == 0
        assert len(service.cache) == 2

    def test_invalidation_after_table_mutation(self, small_system):
        cqads = small_system.cqads
        service = AnswerService(cqads, cache=AnswerCache(16))
        request = AnswerRequest(question=self.QUESTION, domain="cars")
        stale = service.answer(request)
        table_name = cqads.domain("cars").schema.table_name
        table = cqads.database.table(table_name)
        donor = next(iter(table))
        inserted = table.insert(dict(donor))
        try:
            # Without invalidation the cache keeps serving the old pool.
            assert _signature(service.answer(request)) == _signature(stale)
            # The hook accepts the *table* name (what db-layer callers
            # hold); dropping the domain's entries refreshes the answer.
            dropped = service.invalidate_cache(table_name)
            assert dropped == 1
            fresh = service.answer(request)
            uncached = AnswerService(cqads).answer(request)
            assert _signature(fresh) == _signature(uncached)
        finally:
            table.delete(inserted.record_id)
            service.invalidate_cache()

    def test_invalidate_all(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(16))
        service.answer(AnswerRequest(question=self.QUESTION, domain="cars"))
        service.answer(AnswerRequest(question="red honda civic", domain="cars"))
        assert service.invalidate_cache() == 2
        assert len(service.cache) == 0

    def test_concurrent_batches_on_warm_cache(self, small_system):
        service = AnswerService(small_system.cqads, cache=AnswerCache(64))
        questions = [
            "honda accord blue",
            "red honda civic",
            "toyota under 10000 dollars",
            "cheapest honda",
        ]
        requests = [
            AnswerRequest(question=text, domain="cars") for text in questions
        ]
        warm = {
            request.question: _signature(service.answer(request))
            for request in requests
        }
        errors: list[Exception] = []

        def worker() -> None:
            try:
                results = service.answer_batch(requests * 5, workers=4)
                for request, result in zip(requests * 5, results):
                    assert _signature(result) == warm[request.question]
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.cache.hits > 0
        assert len(service.cache) == len(questions)
