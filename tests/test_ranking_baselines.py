"""Tests for the four comparison rankers of Section 5.5.2."""

from __future__ import annotations

import pytest

from repro.db.schema import AttributeType
from repro.qa.conditions import Condition, ConditionOp
from repro.ranking.baselines import (
    AIMQRanker,
    CosineRanker,
    FAQFinderRanker,
    RandomRanker,
)

TI = AttributeType.TYPE_I
TII = AttributeType.TYPE_II
TIII = AttributeType.TYPE_III


def car_conditions():
    return [
        Condition("make", TI, ConditionOp.EQ, "honda"),
        Condition("model", TI, ConditionOp.EQ, "accord"),
        Condition("color", TII, ConditionOp.EQ, "blue"),
        Condition("price", TIII, ConditionOp.LT, 10000),
    ]


class TestRandomRanker:
    def test_permutation(self, car_table):
        records = list(car_table)
        ranked = RandomRanker(seed=1).rank(records, car_conditions())
        assert sorted(r.record_id for r in ranked) == sorted(
            r.record_id for r in records
        )

    def test_seeded_determinism(self, car_table):
        records = list(car_table)
        first = RandomRanker(seed=1).rank(records, car_conditions())
        second = RandomRanker(seed=1).rank(records, car_conditions())
        assert [r.record_id for r in first] == [r.record_id for r in second]

    def test_top_k(self, car_table):
        ranked = RandomRanker(seed=1).rank(
            list(car_table), car_conditions(), top_k=3
        )
        assert len(ranked) == 3


class TestCosineRanker:
    def test_score_is_sqrt_fraction(self, car_table):
        ranker = CosineRanker()
        record = car_table.get(1)  # satisfies all 4
        assert ranker.score(record, car_conditions()) == pytest.approx(1.0)
        record = car_table.get(4)  # camry: blue + price ok = 2 of 4
        assert ranker.score(record, car_conditions()) == pytest.approx(
            (2 / 4) ** 0.5
        )

    def test_rank_by_satisfied_count(self, car_table):
        ranked = CosineRanker().rank(list(car_table), car_conditions())
        assert ranked[0].record_id == 1  # the exact match leads

    def test_no_conditions(self, car_table):
        assert CosineRanker().score(car_table.get(1), []) == 0.0

    def test_zero_satisfied(self, car_table):
        conditions = [Condition("make", TI, ConditionOp.EQ, "porsche")]
        assert CosineRanker().score(car_table.get(1), conditions) == 0.0


class TestAIMQRanker:
    def test_supertuple_jaccard_identity(self, car_table):
        ranker = AIMQRanker(car_table)
        assert ranker._v_sim("make", "honda", "honda") == 1.0

    def test_supertuple_jaccard_overlap(self, car_table):
        ranker = AIMQRanker(car_table)
        # honda and toyota co-occur with overlapping colors/transmissions
        sim = ranker._v_sim("make", "honda", "toyota")
        assert 0.0 < sim < 1.0

    def test_unknown_value(self, car_table):
        ranker = AIMQRanker(car_table)
        assert ranker._v_sim("make", "honda", "porsche") == 0.0

    def test_numeric_similarity_query_normalized(self, car_table):
        # AIMQ's Eq. 9: 1 - |Q - A| / Q
        assert AIMQRanker._numeric_sim(10000, 9000) == pytest.approx(0.9)
        assert AIMQRanker._numeric_sim(10000, 25000) == 0.0

    def test_exact_match_scores_highest(self, car_table):
        ranker = AIMQRanker(car_table)
        ranked = ranker.rank(list(car_table), car_conditions())
        assert ranked[0].record_id == 1

    def test_missing_values_contribute_zero(self, car_table):
        record = car_table.insert({"make": "honda", "model": "accord"})
        ranker = AIMQRanker(car_table)
        score = ranker.score(record, [Condition("color", TII, ConditionOp.EQ, "blue")])
        assert score == 0.0


class TestFAQFinderRanker:
    def test_exact_text_match_leads(self, car_table):
        ranker = FAQFinderRanker(car_table)
        ranked = ranker.rank(
            list(car_table),
            car_conditions(),
            question_text="blue honda accord automatic",
        )
        top = ranked[0]
        assert top["make"] == "honda"
        assert top["model"] == "accord"

    def test_numbers_not_compared(self, car_table):
        """The paper's criticism: numeric constraints carry no signal."""
        ranker = FAQFinderRanker(car_table)
        with_price = ranker.rank(
            list(car_table), [], question_text="honda accord under 9500"
        )
        without_price = ranker.rank(
            list(car_table), [], question_text="honda accord"
        )
        assert [r.record_id for r in with_price[:2]] == [
            r.record_id for r in without_price[:2]
        ]

    def test_empty_question_falls_back_to_conditions(self, car_table):
        ranker = FAQFinderRanker(car_table)
        ranked = ranker.rank(list(car_table), car_conditions(), question_text="")
        assert ranked[0]["make"] == "honda"

    def test_score_zero_for_unrelated(self, car_table):
        ranker = FAQFinderRanker(car_table)
        assert ranker.score(car_table.get(1), "zebra crossing") == 0.0

    def test_record_added_after_indexing(self, car_table):
        ranker = FAQFinderRanker(car_table)
        record = car_table.insert(
            {"make": "kia", "model": "rio", "color": "green"}
        )
        assert ranker.score(record, "green kia rio") > 0.0
