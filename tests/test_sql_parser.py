"""Tests for the SQL parser and AST round-tripping."""

from __future__ import annotations

import pytest

from repro.db.sql.ast import (
    Aggregate,
    BetweenExpr,
    BinaryExpr,
    ColumnRef,
    Comparison,
    InExpr,
    LikeExpr,
    Literal,
    NotExpr,
)
from repro.db.sql.parser import parse_select
from repro.errors import SQLSyntaxError


class TestBasicSelect:
    def test_select_star(self):
        statement = parse_select("SELECT * FROM car_ads")
        assert statement.table == "car_ads"
        assert statement.select_items == ("*",)
        assert statement.where is None

    def test_select_columns(self):
        statement = parse_select("SELECT make, model FROM car_ads")
        assert statement.select_items == (
            ColumnRef("make"), ColumnRef("model"),
        )

    def test_alias_and_qualified_columns(self):
        statement = parse_select(
            "SELECT * FROM car_ads c WHERE c.color = 'blue'"
        )
        assert statement.alias == "c"
        assert statement.where == Comparison(
            ColumnRef("color", qualifier="c"), "=", Literal("blue")
        )

    def test_aggregates(self):
        statement = parse_select("SELECT MIN(price), MAX(price) FROM car_ads")
        assert statement.select_items == (
            Aggregate("MIN", ColumnRef("price")),
            Aggregate("MAX", ColumnRef("price")),
        )

    def test_limit(self):
        assert parse_select("SELECT * FROM t LIMIT 30").limit == 30

    def test_order_by_desc(self):
        statement = parse_select("SELECT * FROM t ORDER BY price DESC")
        assert statement.order_by[0].column == ColumnRef("price")
        assert statement.order_by[0].descending

    def test_group_by(self):
        statement = parse_select("SELECT * FROM t GROUP BY year DESC")
        assert statement.group_by[0].descending


class TestPredicates:
    def where(self, clause: str):
        return parse_select(f"SELECT * FROM t WHERE {clause}").where

    def test_comparisons(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            expr = self.where(f"price {op} 5000")
            assert isinstance(expr, Comparison)
            assert expr.operator == op

    def test_between(self):
        expr = self.where("price BETWEEN 2000 AND 7000")
        assert expr == BetweenExpr(
            ColumnRef("price"), Literal(2000), Literal(7000)
        )

    def test_like(self):
        expr = self.where("model LIKE '%cor%'")
        assert expr == LikeExpr(ColumnRef("model"), "%cor%")

    def test_in_value_list(self):
        expr = self.where("color IN ('blue', 'red')")
        assert isinstance(expr, InExpr)
        assert expr.values == (Literal("blue"), Literal("red"))

    def test_in_subquery(self):
        expr = self.where(
            "record_id IN (SELECT record_id FROM t WHERE color = 'blue')"
        )
        assert isinstance(expr, InExpr)
        assert expr.subquery is not None
        assert expr.subquery.table == "t"

    def test_is_null(self):
        expr = self.where("color IS NULL")
        assert expr == Comparison(ColumnRef("color"), "=", Literal(None))

    def test_is_not_null(self):
        expr = self.where("color IS NOT NULL")
        assert isinstance(expr, NotExpr)

    def test_not_predicate(self):
        expr = self.where("NOT color = 'blue'")
        assert isinstance(expr, NotExpr)

    def test_precedence_and_binds_tighter_than_or(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryExpr)
        assert expr.operator == "OR"
        assert isinstance(expr.right, BinaryExpr)
        assert expr.right.operator == "AND"

    def test_parentheses_override(self):
        expr = self.where("(a = 1 OR b = 2) AND c = 3")
        assert expr.operator == "AND"
        assert expr.left.operator == "OR"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM car_ads",
            "SELECT * FROM car_ads WHERE make = 'honda' AND price < 15000",
            "SELECT * FROM car_ads WHERE price BETWEEN 2000 AND 7000 LIMIT 30",
            "SELECT * FROM car_ads WHERE record_id IN "
            "(SELECT record_id FROM car_ads WHERE color = 'blue')",
            "SELECT * FROM car_ads WHERE NOT (color = 'blue') ORDER BY price DESC",
            "SELECT MIN(price), MAX(price) FROM car_ads",
            "SELECT * FROM car_ads WHERE model LIKE '%cor%'",
        ],
    )
    def test_parse_render_parse_fixpoint(self, sql):
        first = parse_select(sql)
        rendered = first.to_sql()
        second = parse_select(rendered)
        assert second.to_sql() == rendered


class TestParserErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE price <",
            "SELECT * FROM t WHERE price BETWEEN 1",
            "SELECT * FROM t WHERE color IN ()",
            "SELECT * FROM t LIMIT x",
            "SELECT * FROM t trailing garbage",
        ],
    )
    def test_rejected(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse_select(sql)

    def test_in_subquery_requires_select(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM t WHERE a IN (FROM t)")
