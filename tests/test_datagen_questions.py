"""Tests for the question generator (the synthetic survey)."""

from __future__ import annotations

import pytest

from repro.datagen.questions import QUESTION_KINDS, make_generator
from repro.db.schema import AttributeType
from repro.qa.conditions import BooleanOperator, ConditionGroup, ConditionOp


@pytest.fixture(scope="module")
def generator(cars_dataset):
    return make_generator(cars_dataset, noise_rate=0.0, seed=17)


@pytest.fixture(scope="module")
def noisy_generator(cars_dataset):
    return make_generator(cars_dataset, noise_rate=1.0, seed=19)


class TestGroundTruth:
    @pytest.mark.parametrize("kind", QUESTION_KINDS)
    def test_every_kind_generates(self, generator, kind):
        question = generator.generate(kind)
        assert question.text
        assert question.domain == "cars"
        assert question.interpretation.conditions()

    def test_simple_anchored_on_record(self, generator):
        question = generator.generate("simple")
        record = question.source_record
        assert record is not None
        for condition in question.interpretation.conditions():
            if condition.attribute_type is AttributeType.TYPE_I:
                assert record[condition.column] == condition.value

    def test_most_questions_satisfiable(self, generator, cars_dataset):
        """Questions are anchored on records, so the intended answer set
        is non-empty for the non-Boolean kinds."""
        from repro.db.database import Database

        database = Database()
        # rebuild the same dataset table under a fresh database handle
        for kind in ("simple", "boundary", "between", "superlative"):
            for _ in range(5):
                question = generator.generate(kind)
                # evaluate against the dataset's own table via its database
                records = [
                    record
                    for record in cars_dataset.records
                    if all(
                        _satisfies(record, condition)
                        for condition in question.interpretation.conditions()
                    )
                ]
                assert records, question.text

    def test_boundary_has_type_iii_condition(self, generator):
        question = generator.generate("boundary")
        ops = {c.op for c in question.interpretation.conditions()}
        assert ops & {ConditionOp.LT, ConditionOp.GT}

    def test_between_bounds_ordered(self, generator):
        question = generator.generate("between")
        between = [
            c
            for c in question.interpretation.conditions()
            if c.op is ConditionOp.BETWEEN
        ]
        assert between
        low, high = between[0].value
        assert low < high

    def test_superlative_set(self, generator):
        question = generator.generate("superlative")
        assert question.interpretation.superlative is not None

    def test_negation_flag(self, generator):
        question = generator.generate("negation")
        assert any(c.negated for c in question.interpretation.conditions())

    def test_mutex_is_or_group(self, generator):
        question = generator.generate("mutex")
        tree = question.interpretation.tree
        assert isinstance(tree, ConditionGroup)
        or_groups = [
            child
            for child in tree.children
            if isinstance(child, ConditionGroup)
            and child.operator is BooleanOperator.OR
        ]
        assert or_groups

    def test_boolean_kind_labels(self, generator):
        assert generator.generate("mutex").boolean_kind == "implicit"
        assert generator.generate("explicit_or").boolean_kind == "explicit"
        assert generator.generate("simple").boolean_kind == "none"

    def test_explicit_or_mentions_or(self, generator):
        question = generator.generate("explicit_or")
        assert " or " in question.text

    def test_deterministic(self, cars_dataset):
        first = make_generator(cars_dataset, seed=3).generate_many(10)
        second = make_generator(cars_dataset, seed=3).generate_many(10)
        assert [q.text for q in first] == [q.text for q in second]


class TestNoise:
    def test_noise_recorded(self, noisy_generator):
        noisy = [noisy_generator.generate("simple") for _ in range(20)]
        assert any(q.noise for q in noisy)
        for question in noisy:
            if question.noise:
                assert question.text != question.clean_text

    def test_clean_text_preserved(self, noisy_generator):
        question = noisy_generator.generate("boundary")
        assert question.clean_text
        # the interpretation refers to the clean intent regardless
        assert question.interpretation.conditions()


def _satisfies(record, condition) -> bool:
    from repro.ranking.rank_sim import condition_satisfied

    return condition_satisfied(condition, record)
