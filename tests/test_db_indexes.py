"""Tests for hash, sorted and substring indexes."""

from __future__ import annotations

from repro.db.indexes import HashIndex, SortedIndex, SubstringIndex


class TestHashIndex:
    def test_lookup_after_add(self):
        index = HashIndex("color")
        index.add("blue", 1)
        index.add("blue", 2)
        index.add("red", 3)
        assert index.lookup("blue") == {1, 2}
        assert index.lookup("red") == {3}
        assert index.lookup("green") == set()

    def test_remove(self):
        index = HashIndex("color")
        index.add("blue", 1)
        index.add("blue", 2)
        index.remove("blue", 1)
        assert index.lookup("blue") == {2}
        index.remove("blue", 2)
        assert index.lookup("blue") == set()

    def test_remove_missing_is_noop(self):
        index = HashIndex("color")
        index.remove("blue", 1)  # no error
        assert index.lookup("blue") == set()

    def test_none_values_not_indexed(self):
        index = HashIndex("color")
        index.add(None, 1)
        assert len(index) == 0

    def test_distinct_values(self):
        index = HashIndex("color")
        for record_id, value in enumerate(["blue", "red", "blue"]):
            index.add(value, record_id)
        assert sorted(index.distinct_values()) == ["blue", "red"]

    def test_lookup_returns_copy(self):
        index = HashIndex("color")
        index.add("blue", 1)
        result = index.lookup("blue")
        result.add(99)
        assert index.lookup("blue") == {1}


class TestSortedIndex:
    def make(self):
        index = SortedIndex("price")
        for record_id, value in enumerate([5000, 9000, 3000, 9000, 22000], 1):
            index.add(value, record_id)
        return index

    def test_range_inclusive(self):
        assert self.make().range(3000, 9000) == {1, 2, 3, 4}

    def test_range_exclusive_bounds(self):
        index = self.make()
        assert index.range(3000, 9000, include_low=False) == {1, 2, 4}
        assert index.range(3000, 9000, include_high=False) == {1, 3}

    def test_open_ended_ranges(self):
        index = self.make()
        assert index.range(None, 5000) == {1, 3}
        assert index.range(9000, None) == {2, 4, 5}
        assert index.range(None, None) == {1, 2, 3, 4, 5}

    def test_equal(self):
        assert self.make().equal(9000) == {2, 4}
        assert self.make().equal(1) == set()

    def test_min_max(self):
        index = self.make()
        assert index.min_value() == 3000
        assert index.max_value() == 22000
        assert index.min_ids() == {3}
        assert index.max_ids() == {5}

    def test_empty_index(self):
        index = SortedIndex("price")
        assert index.min_value() is None
        assert index.max_value() is None
        assert index.min_ids() == set()
        assert index.range(0, 100) == set()

    def test_remove(self):
        index = self.make()
        index.remove(9000, 2)
        assert index.equal(9000) == {4}
        assert len(index) == 4

    def test_none_ignored(self):
        index = SortedIndex("price")
        index.add(None, 1)
        assert len(index) == 0


class TestSubstringIndex:
    def make(self):
        index = SubstringIndex("model", gram_length=3)
        for record_id, value in enumerate(
            ["accord", "corolla", "camry", "cobalt"], 1
        ):
            index.add(value, record_id)
        return index

    def test_search_exact_substring(self):
        assert self.make().search("cor") == {1, 2}  # acCORd, CORolla
        assert self.make().search("accord") == {1}

    def test_search_short_needle_falls_back(self):
        # needles shorter than the gram length still work (full scan):
        # acCOrd, COrolla, CObalt all contain "co"
        assert self.make().search("co") == {1, 2, 4}

    def test_search_missing(self):
        assert self.make().search("zzz") == set()

    def test_candidates_is_superset(self):
        index = self.make()
        for needle in ("cor", "oll", "acc"):
            assert index.search(needle) <= index.candidates(needle)

    def test_short_strings_indexed_whole(self):
        index = SubstringIndex("model", gram_length=3)
        index.add("m3", 1)
        assert index.search("m3") == {1}

    def test_remove(self):
        index = self.make()
        index.remove("accord", 1)
        assert index.search("accord") == set()
        assert index.search("cor") == {2}

    def test_case_insensitive(self):
        index = SubstringIndex("model")
        index.add("Accord", 1)
        assert index.search("ACCORD") == {1}
