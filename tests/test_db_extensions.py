"""Tests for the Section 6 future-work features: schema inference and
near-duplicate removal."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.dedup import deduplicate, find_duplicate_groups
from repro.db.schema import AttributeType
from repro.db.schema_inference import infer_schema, profile_columns
from repro.errors import DataGenerationError
from tests.conftest import SMALL_CAR_ROWS, small_car_schema

RAW_ADS = [
    {"make": "honda", "model": "accord", "color": "blue",
     "price": "9,000", "year": 2004, "mileage": 90000},
    {"make": "honda", "model": "civic", "color": "red",
     "price": "$5,500", "year": 2001, "mileage": 140000},
    {"make": "toyota", "model": "camry", "price": 8500,
     "year": 2005, "mileage": 95000},
    {"make": "ford", "model": "focus", "color": "silver",
     "price": 6800, "year": 2006, "mileage": 80000},
    {"make": "bmw", "model": "3 series", "color": "black",
     "price": 22000, "year": 2008, "mileage": 45000},
]


class TestProfiles:
    def test_presence_and_cardinality(self):
        profiles = profile_columns(RAW_ADS)
        assert profiles["make"].presence_ratio == 1.0
        assert profiles["color"].presence_ratio < 1.0
        assert profiles["model"].cardinality == 5
        assert profiles["make"].cardinality == 4

    def test_numeric_detection_with_noise(self):
        profiles = profile_columns(RAW_ADS)
        # "9,000" and "$5,500" still parse as numbers
        assert profiles["price"].numeric_ratio == 1.0
        assert profiles["price"].numeric_min == 5500
        assert profiles["price"].numeric_max == 22000

    def test_empty_input_rejected(self):
        with pytest.raises(DataGenerationError):
            profile_columns([])


class TestInferSchema:
    def test_type_classification(self):
        schema = infer_schema(RAW_ADS, table_name="car_ads")
        by_name = {column.name: column for column in schema.columns}
        assert by_name["make"].attribute_type is AttributeType.TYPE_I
        assert by_name["model"].attribute_type is AttributeType.TYPE_I
        assert by_name["color"].attribute_type is AttributeType.TYPE_II
        for numeric in ("price", "year", "mileage"):
            assert by_name[numeric].attribute_type is AttributeType.TYPE_III
            assert by_name[numeric].is_numeric

    def test_numeric_ranges_from_data(self):
        schema = infer_schema(RAW_ADS, table_name="car_ads")
        assert schema.column("year").valid_range == (2001, 2008)

    def test_unit_hints_and_known_units(self):
        schema = infer_schema(
            RAW_ADS, table_name="car_ads",
            unit_hints={"mileage": ("miles", "mi")},
        )
        assert "$" in schema.column("price").unit_words
        assert "miles" in schema.column("mileage").unit_words

    def test_inferred_schema_loads_records(self):
        schema = infer_schema(RAW_ADS, table_name="car_ads")
        database = Database()
        table = database.create_table(schema)
        for raw in RAW_ADS:
            cleaned = {
                key: (str(value).replace(",", "").lstrip("$")
                      if key == "price" else value)
                for key, value in raw.items()
            }
            table.insert(cleaned)
        assert len(table) == len(RAW_ADS)

    def test_max_type_i_demotes_extras(self):
        schema = infer_schema(RAW_ADS, table_name="car_ads", max_type_i=1)
        type_i = [c.name for c in schema.type_i_columns]
        assert type_i == ["model"]  # highest cardinality wins
        assert schema.column("make").attribute_type is AttributeType.TYPE_II

    def test_no_identity_column_raises(self):
        rows = [{"price": 1}, {"price": 2}]
        with pytest.raises(DataGenerationError, match="Type I"):
            infer_schema(rows, table_name="t")


class TestDeduplication:
    def make_table(self):
        database = Database()
        table = database.create_table(small_car_schema())
        table.insert_many(SMALL_CAR_ROWS)
        return table

    def test_no_duplicates_in_clean_table(self):
        table = self.make_table()
        assert find_duplicate_groups(table) == []

    def test_exact_repost_found(self):
        table = self.make_table()
        table.insert(dict(SMALL_CAR_ROWS[0]))  # repost of record 1
        groups = find_duplicate_groups(table)
        assert len(groups) == 1
        assert groups[0].keeper == 1
        assert groups[0].removable == (9,)

    def test_near_repost_within_tolerance(self):
        table = self.make_table()
        repost = dict(SMALL_CAR_ROWS[0])
        repost["price"] = repost["price"] + 100  # tiny price tweak
        table.insert(repost)
        groups = find_duplicate_groups(table, numeric_tolerance=0.02)
        assert len(groups) == 1

    def test_large_price_difference_not_duplicate(self):
        table = self.make_table()
        repost = dict(SMALL_CAR_ROWS[0])
        repost["price"] = repost["price"] + 8000
        table.insert(repost)
        assert find_duplicate_groups(table) == []

    def test_different_color_not_duplicate(self):
        table = self.make_table()
        repost = dict(SMALL_CAR_ROWS[0])
        repost["color"] = "green"
        table.insert(repost)
        assert find_duplicate_groups(table) == []

    def test_missing_property_is_wildcard(self):
        table = self.make_table()
        repost = dict(SMALL_CAR_ROWS[0])
        del repost["color"]
        table.insert(repost)
        assert len(find_duplicate_groups(table)) == 1

    def test_different_product_never_duplicate(self):
        table = self.make_table()
        # identical properties but another model: blocked apart
        other = dict(SMALL_CAR_ROWS[0])
        other["model"] = "civic"
        table.insert(other)
        groups = find_duplicate_groups(table)
        assert all(len(group.record_ids) == 2 for group in groups) or groups == []

    def test_deduplicate_removes_and_keeps_earliest(self):
        table = self.make_table()
        table.insert(dict(SMALL_CAR_ROWS[0]))
        table.insert(dict(SMALL_CAR_ROWS[0]))
        removed = deduplicate(table)
        assert removed == 2
        assert table.get(1) is not None
        assert len(table) == len(SMALL_CAR_ROWS)

    def test_transitive_grouping(self):
        table = self.make_table()
        base = dict(SMALL_CAR_ROWS[0])
        for delta in (50, 100):
            repost = dict(base)
            repost["price"] = base["price"] + delta
            table.insert(repost)
        groups = find_duplicate_groups(table)
        assert len(groups) == 1
        assert len(groups[0].record_ids) == 3
