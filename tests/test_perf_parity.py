"""Parity: the shared-subplan relaxation engine vs the legacy path.

The acceptance bar for the perf subsystem is *bit-identical* answers:
same records, same scores, same ordering, across every question shape
the generator can produce.  Two layers are proved here:

* **engine level** — ``partial_answers(strategy="legacy")`` vs
  ``strategy="shared"`` on 100 generated questions per domain, all
  eight domains, driven by the intended interpretations (so Boolean
  trees, superlatives, negations, "any" units and the budget cap all
  get exercised);
* **pipeline level** — full ``AnswerService.answer`` runs (classify →
  tag → interpret → execute → relax) with the engine flipped between
  strategies, comparing the complete result surface.
"""

from __future__ import annotations

import pytest

from repro.api.requests import AnswerRequest
from repro.datagen.questions import make_generator
from repro.datagen.vocab import DOMAIN_NAMES
from repro.perf.subplan import drop_intersections
from repro.qa.sql_generation import evaluate_interpretation
from repro.system import build_system

QUESTIONS_PER_DOMAIN = 100
PIPELINE_QUESTIONS_PER_DOMAIN = 20


@pytest.fixture(scope="module")
def parity_system():
    """All eight domains, small scale (parity is scale-independent)."""
    return build_system(
        ads_per_domain=120,
        sessions_per_domain=150,
        corpus_documents=150,
        train_classifier=False,
    )


def _answer_signature(answers):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind) for a in answers
    ]


def _result_signature(result):
    return (
        result.domain,
        result.sql,
        result.message,
        _answer_signature(result.answers),
        _answer_signature(result.ranked_pool),
    )


@pytest.mark.parametrize("domain", DOMAIN_NAMES)
def test_engine_parity_per_domain(parity_system, domain):
    """legacy and shared produce identical scored partial answers."""
    cqads = parity_system.cqads
    generator = make_generator(parity_system.domain(domain).dataset, seed=97)
    compared = 0
    nonempty = 0
    for _ in range(QUESTIONS_PER_DOMAIN):
        question = generator.generate()
        interpretation = question.interpretation
        exact = evaluate_interpretation(
            cqads.database, cqads.domain(domain), interpretation
        )
        exclude = {record.record_id for record in exact}
        legacy = cqads.partial_answers(
            domain, interpretation, exclude, strategy="legacy"
        )
        shared = cqads.partial_answers(
            domain, interpretation, exclude, strategy="shared"
        )
        assert _answer_signature(legacy) == _answer_signature(shared), (
            f"divergence on {question.kind!r}: {question.text!r}"
        )
        compared += 1
        nonempty += bool(shared)
    assert compared == QUESTIONS_PER_DOMAIN
    # The battery must actually exercise the relaxation machinery.
    assert nonempty > 0


@pytest.mark.parametrize("domain", DOMAIN_NAMES)
def test_pipeline_parity_per_domain(parity_system, domain):
    """End-to-end answers are bit-identical under either strategy."""
    cqads = parity_system.cqads
    service = parity_system.service()
    generator = make_generator(
        parity_system.domain(domain).dataset, noise_rate=0.3, seed=41
    )
    questions = [
        generator.generate().text for _ in range(PIPELINE_QUESTIONS_PER_DOMAIN)
    ]
    original = cqads.relaxation_strategy
    try:
        cqads.relaxation_strategy = "legacy"
        legacy = [
            service.answer(AnswerRequest(question=text, domain=domain))
            for text in questions
        ]
        cqads.relaxation_strategy = "shared"
        shared = [
            service.answer(AnswerRequest(question=text, domain=domain))
            for text in questions
        ]
    finally:
        cqads.relaxation_strategy = original
    for text, legacy_result, shared_result in zip(questions, legacy, shared):
        assert _result_signature(legacy_result) == _result_signature(
            shared_result
        ), f"pipeline divergence on {text!r}"


class TestDropIntersections:
    def test_quadratic_equivalence(self):
        sets = [{1, 2, 3, 4}, {2, 3, 4, 5}, {3, 4, 5, 6}, {1, 3, 4, 6}]
        pools = drop_intersections(sets)
        for index, pool in enumerate(pools):
            expected = None
            for other, ids in enumerate(sets):
                if other == index:
                    continue
                expected = set(ids) if expected is None else expected & ids
            assert pool == expected

    def test_two_sets_swap(self):
        assert drop_intersections([{1, 2}, {2, 3}]) == [{2, 3}, {1, 2}]

    def test_empty_and_single(self):
        assert drop_intersections([]) == []
        assert drop_intersections([{1, 2}]) == [set()]
