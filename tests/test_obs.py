"""Tests for the unified observability layer (:mod:`repro.obs`).

Covers the three submodules (registry, trace, export) in isolation,
the migrated serve-tier counter surface, the satellite wiring
(plan-trace drop accounting, recovery metrics), and the integration
acceptance criterion: one traced request through a sharded,
WAL-backed system yields a single connected span tree covering
stage → executor leaf → shard scatter → cache → WAL spans.

Hook-driven metrics land in the **process-default** registry, so every
test that asserts on them installs a fresh registry and restores the
previous one afterwards (the ``registry`` fixture).
"""

from __future__ import annotations

import asyncio
import json
import math
import threading

import pytest

from repro.api import AnswerRequest, SystemBuilder
from repro.datagen.questions import make_generator
from repro.obs import (
    InMemoryTraceSink,
    MetricsRegistry,
    Observability,
    Tracer,
    current_span,
    parse_prometheus_text,
    propagate,
    render_prometheus,
    set_default_registry,
    span,
)
from repro.obs.registry import Histogram
from repro.serve.stats import Counters, LatencySummary
from tests.conftest import SMALL_CAR_ROWS, small_car_schema


@pytest.fixture()
def registry():
    """A fresh process-default registry, restored on teardown."""
    fresh = MetricsRegistry()
    previous = set_default_registry(fresh)
    yield fresh
    set_default_registry(previous)


def run(coro):
    """Run one async scenario to completion (no pytest-asyncio here)."""
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# registry: counters, gauges, histograms
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_get_or_create_and_label_canonicalisation(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", cache="answer", outcome="hit")
        b = registry.counter("hits", outcome="hit", cache="answer")
        assert a is b  # keyword order is canonicalised away
        a.inc()
        a.value += 2
        snapshot = registry.snapshot()
        assert snapshot.counter_value("hits", cache="answer", outcome="hit") == 3
        assert snapshot.counter_value("hits", cache="answer", outcome="miss") == 0
        assert len(registry) == 1

    def test_kind_mismatch_is_a_type_error(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError, match="registered as Counter"):
            registry.histogram("thing")
        with pytest.raises(TypeError, match="registered as Counter"):
            registry.gauge("thing")

    def test_register_adopts_external_instruments(self):
        registry = MetricsRegistry()
        counters = Counters()
        for field in Counters.FIELDS:
            registry.register(counters._counters[field])
        counters.submitted += 2
        snapshot = registry.snapshot()
        assert snapshot.counter_value(
            "repro_serve_requests_total", outcome="submitted"
        ) == 2
        # Adopting a *different* instrument under a taken key is refused.
        with pytest.raises(ValueError, match="already registered"):
            registry.register(Counters()._counters["submitted"])

    def test_callback_gauge_sampled_at_snapshot_time(self):
        registry = MetricsRegistry()
        depth = [0]
        registry.gauge_fn("queue_depth", lambda: depth[0])
        depth[0] = 7
        assert registry.snapshot().gauges[0].value == 7.0

        def dead():
            raise RuntimeError("gone")

        registry.gauge_fn("broken", dead)
        broken = registry.snapshot().gauges[1]
        assert math.isnan(broken.value)  # a dead callback can't kill snapshots

    def test_histogram_percentiles(self):
        histogram = Histogram("latency")
        assert histogram.percentile(0.5) is None
        for _ in range(98):
            histogram.observe(0.0002)  # le=0.00025 bucket
        histogram.observe(0.08)  # le=0.1
        histogram.observe(20.0)  # +Inf overflow
        p50 = histogram.percentile(0.50)
        assert p50 is not None and 0.0001 <= p50 <= 0.00025
        assert histogram.percentile(0.99) == pytest.approx(0.1)
        # +Inf observations report the largest finite bound, not inf.
        assert histogram.percentile(1.0) == histogram.buckets[-1]
        assert histogram.count == 100
        sample = histogram.sample()
        assert sample.percentile(0.50) == p50  # frozen side agrees
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_snapshot_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="x").inc()
        registry.histogram("h").observe(0.003)
        payload = registry.snapshot().as_dict()
        assert payload["counters"] == {"c{kind=x}": 1}
        assert payload["histograms"]["h"]["count"] == 1
        assert set(payload["histograms"]["h"]) == {"count", "sum", "p50", "p95", "p99"}


# ----------------------------------------------------------------------
# export: Prometheus text render + parse
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_render_parse_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("repro_cache_requests_total", cache="plan", outcome="hit").inc(4)
        registry.gauge("repro_queue_depth").set(3)
        registry.histogram("repro_stage_seconds", stage="execute").observe(0.004)
        rendered = render_prometheus(registry)
        assert "# TYPE repro_cache_requests_total counter" in rendered
        assert "# TYPE repro_stage_seconds histogram" in rendered
        parsed = parse_prometheus_text(rendered)
        assert parsed["types"]["repro_stage_seconds"] == "histogram"
        key = ("repro_cache_requests_total", (("cache", "plan"), ("outcome", "hit")))
        assert parsed["samples"][key] == 4.0
        # Cumulative buckets: +Inf equals _count.
        inf_key = ("repro_stage_seconds_bucket", (("le", "+Inf"), ("stage", "execute")))
        count_key = ("repro_stage_seconds_count", (("stage", "execute"),))
        assert parsed["samples"][inf_key] == parsed["samples"][count_key] == 1.0

    def test_label_escaping_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("c", q='say "hi"\n\\now').inc()
        parsed = parse_prometheus_text(render_prometheus(registry))
        ((_, labels),) = [k for k in parsed["samples"]]
        assert dict(labels)["q"] == 'say "hi"\n\\now'

    def test_parse_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("what even is this line")
        with pytest.raises(ValueError):
            parse_prometheus_text('c{unquoted=oops} 1')

    def test_render_accepts_snapshot_too(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert render_prometheus(registry.snapshot()) == render_prometheus(registry)


# ----------------------------------------------------------------------
# serve counters: the migrated surface stays bit-identical
# ----------------------------------------------------------------------
class TestCountersView:
    def test_attribute_semantics(self):
        counters = Counters()
        counters.submitted += 1
        counters.completed += 1
        counters.submitted += 1
        assert counters.submitted == 2
        counters.submitted = 0  # direct reset, as benches do
        assert counters.submitted == 0
        with pytest.raises(AttributeError):
            counters.nonsense
        with pytest.raises(AttributeError):
            counters.nonsense = 3

    def test_snapshot_carries_latency_summary(self):
        counters = Counters()
        counters.submitted = 4
        histogram = Histogram("repro_serve_request_seconds")
        histogram.observe(0.002)
        summary = LatencySummary.from_histogram(histogram.sample())
        stats = counters.snapshot(0, 0, 0, latency=summary)
        assert stats.latency.count == 1
        assert stats.as_dict()["latency"]["p50"] == pytest.approx(
            histogram.percentile(0.50)
        )
        # Without a summary the legacy dict shape is untouched.
        assert "latency" not in counters.snapshot(0, 0, 0).as_dict()


# ----------------------------------------------------------------------
# trace: spans, propagation, sinks, slow log
# ----------------------------------------------------------------------
class TestTrace:
    def test_span_without_trace_is_a_shared_noop(self):
        assert current_span() is None
        first = span("anything", key="value")
        second = span("else")
        assert first is second  # the shared null context
        with first as node:
            assert node is None
        assert current_span() is None

    def test_trace_builds_one_connected_tree(self):
        sink = InMemoryTraceSink()
        tracer = Tracer([sink])
        with tracer.trace("request", question="q") as root:
            with span("stage.execute") as stage:
                stage.set_attribute("rows", 3)
                stage.add_event("cache", cache="window", outcome="hit")
                with span("executor.evaluate"):
                    pass
            # tracer.trace nests as a child when a span is active
            with tracer.trace("inner"):
                pass
        assert sink.last() is root  # exported exactly once, on root exit
        assert len(sink.roots) == 1
        names = [node.name for node in root.walk()]
        assert names == ["request", "stage.execute", "executor.evaluate", "inner"]
        assert {node.trace_id for node in root.walk()} == {root.trace_id}
        assert root.find("executor.evaluate").parent_id == root.find("stage.execute").span_id
        assert root.event_names() == ["cache"]
        assert root.end is not None
        payload = root.as_dict()
        assert payload["children"][0]["attributes"]["rows"] == 3
        assert "stage.execute" in root.describe()

    def test_exceptions_are_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.trace("request") as root:
                with span("stage.boom"):
                    raise ValueError("no")
        assert root.attributes["error"] == "ValueError"
        assert root.find("stage.boom").attributes["error"] == "ValueError"
        assert current_span() is None  # context fully unwound

    def test_propagate_pins_the_span_into_another_thread(self):
        tracer = Tracer()
        seen = []

        def work():
            seen.append(current_span())
            with span("child"):
                pass

        with tracer.trace("request") as root:
            thread = threading.Thread(target=propagate(work))
            thread.start()
            thread.join()
        assert seen == [root]
        assert [c.name for c in root.children] == ["child"]

    def test_propagate_without_a_span_returns_the_callable_unwrapped(self):
        def fn():
            pass

        assert propagate(fn) is fn

    def test_slow_query_log(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        tracer = Tracer(slow_threshold_s=0.0, slow_log_path=str(path))
        with tracer.trace("request", question="slow one"):
            pass
        assert len(tracer.slow_roots) == 1
        assert tracer.slow_roots[0].attributes["slow"] is True
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["attributes"]["question"] == "slow one"

    def test_fast_threshold_keeps_quick_requests_out(self):
        tracer = Tracer(slow_threshold_s=60.0)
        with tracer.trace("request"):
            pass
        assert tracer.slow_roots == []

    def test_broken_sink_does_not_fail_the_request(self):
        class Broken:
            def export(self, root):
                raise RuntimeError("sink died")

        good = InMemoryTraceSink()
        tracer = Tracer([Broken(), good])
        with tracer.trace("request"):
            pass
        assert len(good.roots) == 1


# ----------------------------------------------------------------------
# satellites: plan-trace drop accounting, recovery metrics
# ----------------------------------------------------------------------
class TestPlanTraceDrop:
    def test_drop_is_counted_and_surfaced(self, registry):
        from repro.db.database import Database
        from repro.db.sql.executor import (
            MAX_PLAN_TRACE,
            AccessDecision,
            SQLExecutor,
        )

        executor = SQLExecutor(Database())
        decision = AccessDecision(
            table="car_ads", column="price", shape="range",
            path="window", predicted=0.5, observed=0.5, rows=10,
        )
        executor.plan_trace.extend([decision] * MAX_PLAN_TRACE)
        tracer = Tracer()
        with tracer.trace("request") as root:
            executor._record(decision)
        evicted = MAX_PLAN_TRACE // 2
        assert executor.plan_dropped == evicted
        assert len(executor.plan_trace) == MAX_PLAN_TRACE - evicted + 1
        assert registry.snapshot().counter_value(
            "repro_plan_trace_dropped_total"
        ) == evicted
        assert f"dropped {evicted}" in executor.plan_summary()
        assert root.event_names() == ["plan_trace_dropped"]

    def test_empty_trace_without_drops_keeps_the_old_wording(self):
        from repro.db.database import Database
        from repro.db.sql.executor import SQLExecutor

        assert SQLExecutor(Database()).plan_summary() == "no planned leaves"


class TestRecoveryMetrics:
    def _durable_directory(self, tmp_path) -> str:
        from repro.db.database import Database
        from repro.store import WalBackend

        directory = str(tmp_path / "store")
        database = Database(storage=WalBackend(directory, fsync="off"))
        table = database.create_table(small_car_schema())
        table.insert_many([dict(row) for row in SMALL_CAR_ROWS])
        database.storage.close()
        return directory

    def test_damage_taxonomy_and_phase_timings(self, tmp_path, registry):
        from repro.store import recover_database
        from repro.store.snapshot import wal_path

        directory = self._durable_directory(tmp_path)
        with open(wal_path(directory, 0), "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef")  # torn garbage tail
        database, report = recover_database(directory)
        assert len(database.table("car_ads")) == len(SMALL_CAR_ROWS)
        assert report.truncated  # the tail was noticed
        snapshot = registry.snapshot()
        damage = snapshot.counters_by_label("repro_wal_damage_total", "reason")
        assert sum(damage.values()) == 1
        (reason,) = damage
        assert reason in ("torn header", "torn body", "bad checksum", "bad json")
        for phase in ("snapshot_load", "replay"):
            sample = snapshot.histogram("repro_recovery_seconds", phase=phase)
            assert sample is not None and sample.count == 1

    def test_recover_cli_json_includes_metrics(self, tmp_path, capsys):
        from repro.__main__ import main

        directory = self._durable_directory(tmp_path)
        assert main(["recover", directory, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["metrics"]
        assert metrics["wal_damage_total"] == {}
        assert metrics["recovery_seconds"]["replay"] > 0.0
        assert payload["records"] == len(SMALL_CAR_ROWS)


# ----------------------------------------------------------------------
# integration: the single connected span tree (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_system(tmp_path_factory):
    """A small sharded, WAL-backed system with observability attached."""
    obs = Observability(MetricsRegistry())
    obs.tracer.add_sink(InMemoryTraceSink())
    directory = str(tmp_path_factory.mktemp("obs-wal"))
    system = (
        SystemBuilder()
        .with_domains("cars")
        .ads_per_domain(120)
        .sessions_per_domain(150)
        .corpus_documents(120)
        .shards(2)
        .storage(directory, fsync="off")
        .build()
    )
    yield system, obs
    system.close()


@pytest.fixture()
def installed(traced_system):
    """The system's registry installed as process default, sink cleared."""
    system, obs = traced_system
    obs.tracer.sinks[0].clear()
    previous = obs.install()
    yield system, obs
    set_default_registry(previous)


def _questions(system, count: int) -> list[str]:
    generator = make_generator(system.domain("cars").dataset, seed=11)
    return [generator.generate().text for _ in range(count)]


class TestConnectedSpanTree:
    def test_request_plus_mutation_yield_one_connected_tree(self, installed):
        system, obs = installed
        service = system.service(cache=8, observability=obs)
        questions = _questions(system, 6)
        with obs.trace("request") as root:
            for question in questions:
                service.answer(AnswerRequest(question=question, domain="cars"))
            system.database.table("car_ads").insert(
                {"make": "saab", "model": "9-3", "color": "blue",
                 "transmission": "manual", "doors": 4,
                 "drivetrain": "fwd", "body_style": "sedan",
                 "fuel": "gas", "year": 2004, "price": 4100,
                 "mileage": 120000}
            )
        # One tree, one trace id, every instrumented layer present.
        assert {node.trace_id for node in root.walk()} == {root.trace_id}
        assert root.find("api.answer") is not None
        assert root.find("stage.execute") is not None
        assert root.find("executor.evaluate") is not None
        assert root.find("shard.scatter") is not None
        assert root.find("wal.append") is not None
        cache_events = [e for e in root.event_names() if e == "cache"]
        assert cache_events  # hit/miss events attach to their spans
        # The executor leaf hangs under its stage, the stage under its
        # api.answer request — parent links, not just membership.
        leaf = root.find("executor.evaluate")
        stage = next(n for n in root.walk() if leaf in n.children)
        assert stage.name == "stage.execute"
        assert root.find("wal.append").trace_id == root.trace_id
        # Exported exactly once, on root exit.
        assert obs.tracer.sinks[0].last() is root

    def test_batch_pool_propagates_the_callers_span(self, installed):
        system, obs = installed
        service = system.service(observability=obs)
        requests = [
            AnswerRequest(question=question, domain="cars")
            for question in _questions(system, 4)
        ]
        with obs.trace("batch") as root:
            results = service.answer_batch(requests, workers=3)
        assert len(results) == len(requests)
        api_spans = root.find_all("api.answer")
        assert len(api_spans) == len(set(requests))
        assert {node.trace_id for node in root.walk()} == {root.trace_id}
        service.close()

    def test_async_serve_roots_do_not_interleave(self, installed):
        system, obs = installed
        sink = obs.tracer.sinks[0]
        questions = _questions(system, 6)

        async def drive():
            service = system.async_service(observability=obs, workers=2)
            try:
                await asyncio.gather(
                    *(service.ask(q, domain="cars") for q in questions)
                )
            finally:
                await service.close()

        run(drive())
        roots = list(sink.roots)
        assert len(roots) == len(questions)
        assert len({root.trace_id for root in roots}) == len(roots)
        for root in roots:
            assert root.name == "serve.request"
            # Every span below this root belongs to this trace: work
            # done on pool threads for one request never leaks into a
            # concurrent request's tree.
            assert {node.trace_id for node in root.walk()} == {root.trace_id}
            api_spans = root.find_all("api.answer")
            assert len(api_spans) == 1
            assert api_spans[0].attributes["question"] == root.attributes["question"]

    def test_untraced_requests_record_metrics_but_no_spans(self, installed):
        system, obs = installed
        service = system.service(cache=8)  # no observability bundle
        question = _questions(system, 1)[0]
        service.answer(AnswerRequest(question=question, domain="cars"))
        assert obs.tracer.sinks[0].roots == []
        snapshot = obs.registry.snapshot()  # == installed default registry
        assert snapshot.counter_value(
            "repro_cache_requests_total", cache="answer", outcome="miss"
        ) >= 1
        stage = snapshot.histogram("repro_stage_seconds", stage="execute")
        assert stage is not None and stage.count >= 1
        service.close()

    def test_async_stats_expose_latency_percentiles(self, installed):
        system, obs = installed

        async def drive(observability):
            service = system.async_service(
                observability=observability, workers=1
            )
            try:
                for question in _questions(system, 3):
                    await service.ask(question, domain="cars")
                return service.stats()
            finally:
                await service.close()

        # Unconfigured service: the latency histogram is private and
        # starts fresh, so the counts are exact.
        stats = run(drive(None))
        assert stats.latency is not None
        assert stats.latency.count == 3
        assert stats.latency.p50 is not None and stats.latency.p50 > 0
        payload = stats.as_dict()["latency"]
        assert payload["p99"] >= payload["p50"]
        # Configured service: the histogram lives in the shared
        # registry, so a second service accumulates onto it.
        before = obs.registry.histogram("repro_serve_request_seconds").count
        stats = run(drive(obs))
        assert stats.latency.count == before + 3

    def test_prometheus_export_covers_the_five_cache_families(self, installed):
        system, obs = installed
        service = system.service(cache=8, observability=obs)
        questions = _questions(system, 4)
        from repro.db.sql.executor import execute

        for question in questions + questions:  # repeats hit the answer cache
            service.answer(AnswerRequest(question=question, domain="cars"))
        sql = "SELECT record_id FROM car_ads WHERE price < 100000000"
        execute(system.database, sql)
        execute(system.database, sql)  # plan-cache hit

        async def coalesce():
            serve = system.async_service(observability=obs, workers=1)
            try:
                await serve.ask(questions[0], domain="cars")
            finally:
                await serve.close()

        run(coalesce())
        parsed = parse_prometheus_text(obs.render_prometheus())
        seen = {
            dict(labels).get("cache")
            for (name, labels) in parsed["samples"]
            if name == "repro_cache_requests_total"
        }
        assert {"answer", "fragment", "plan", "window", "singleflight"} <= seen
        outcomes = {
            dict(labels).get("outcome")
            for (name, labels) in parsed["samples"]
            if name == "repro_serve_requests_total"
        }
        assert set(Counters.FIELDS) == outcomes
        service.close()
