"""Tests for AdsDomain construction and lookups."""

from __future__ import annotations

import pytest

from repro.db.schema import AttributeType
from repro.qa.domain import AdsDomain
from tests.conftest import small_car_schema


@pytest.fixture()
def domain(car_table):
    return AdsDomain.from_table("cars", car_table)


class TestFromTable:
    def test_values_harvested(self, domain):
        assert "honda" in domain.values_of("make")
        assert "blue" in domain.values_of("color")
        assert "3 series" in domain.values_of("model")

    def test_trie_contains_values(self, domain):
        payloads = domain.trie.get("honda")
        assert payloads is not None
        assert payloads[0].column == "make"
        assert payloads[0].attribute_type is AttributeType.TYPE_I

    def test_trie_contains_multiword_values(self, domain):
        assert "3 series" in domain.trie

    def test_word_trie_contains_entry_words(self, domain):
        assert "series" in domain.word_trie
        assert "honda" in domain.word_trie

    def test_trie_contains_attribute_synonyms(self, domain):
        payloads = domain.trie.get("cost")
        assert payloads is not None
        assert payloads[0].column == "price"
        assert payloads[0].kind == "attribute"

    def test_trie_contains_unit_words(self, domain):
        payloads = domain.trie.get("miles")
        assert payloads[0].column == "mileage"
        assert payloads[0].kind == "unit"

    def test_numeric_bounds_from_data(self, domain):
        low, high = domain.numeric_bounds["price"]
        assert (low, high) == (3000, 22000)

    def test_value_ranges_positive(self, domain):
        assert domain.value_ranges["price"] > 0


class TestRoleResolution:
    def test_price_role_direct(self, domain):
        assert domain.resolve_role("price") == "price"

    def test_year_role(self, domain):
        assert domain.resolve_role("year") == "year"

    def test_price_role_via_unit_words(self, car_table):
        # a domain whose money column is not literally "price"
        from repro.db.schema import Column, ColumnKind, TableSchema

        schema = TableSchema(
            table_name="job_ads",
            columns=[
                Column("title", AttributeType.TYPE_I),
                Column(
                    "salary",
                    AttributeType.TYPE_III,
                    ColumnKind.NUMERIC,
                    unit_words=("usd", "dollars"),
                    valid_range=(30000, 200000),
                ),
            ],
        )
        domain = AdsDomain.from_values(
            "jobs", schema, {"title": ["developer"]}
        )
        assert domain.resolve_role("price") == "salary"

    def test_missing_role(self, car_table):
        from repro.db.schema import Column, TableSchema

        schema = TableSchema(
            table_name="t", columns=[Column("name", AttributeType.TYPE_I)]
        )
        domain = AdsDomain.from_values("t", schema, {"name": ["x"]})
        assert domain.resolve_role("price") is None
        assert domain.resolve_role("year") is None


class TestBoundsQueries:
    def test_value_in_bounds(self, domain):
        assert domain.numeric_value_in_bounds("year", 2005)
        assert not domain.numeric_value_in_bounds("year", 1200)
        assert not domain.numeric_value_in_bounds("price", 100)

    def test_unknown_bounds_permissive(self):
        domain = AdsDomain.from_values(
            "cars", small_car_schema(), {"make": ["honda"], "model": ["fit"]}
        )
        # schema valid_range backfills the bounds
        assert domain.numeric_value_in_bounds("price", 5000)

    def test_attribute_value_range_fallbacks(self, domain):
        assert domain.attribute_value_range("price") > 0
        # unknown column: defensive default of 1.0
        assert domain.attribute_value_range("nonexistent") == 1.0


class TestAllCategoricalValues:
    def test_contains_every_type_i_ii_value(self, domain):
        values = set(domain.all_categorical_values())
        assert {"honda", "accord", "blue", "automatic"} <= values

    def test_no_numeric_values(self, domain):
        values = domain.all_categorical_values()
        assert "9000" not in values
