"""Tests for the trie (Section 4.1.3/4.1.4 substrate)."""

from __future__ import annotations

import pytest

from repro.structures.trie import Trie


@pytest.fixture()
def car_trie():
    trie = Trie()
    for word in ("honda", "accord", "civic", "toyota", "camry", "corolla",
                 "4 wheel drive", "4 door"):
        trie.insert(word, payload=word.upper())
    return trie


class TestInsertLookup:
    def test_membership(self, car_trie):
        assert "honda" in car_trie
        assert "hond" not in car_trie  # prefix, not an entry
        assert "hondas" not in car_trie

    def test_payload_retrieval(self, car_trie):
        assert car_trie.get("accord") == "ACCORD"
        assert car_trie.get("missing") is None
        assert car_trie.get("missing", "fallback") == "fallback"

    def test_len_counts_entries(self, car_trie):
        assert len(car_trie) == 8

    def test_reinsert_overwrites_payload_without_growing(self, car_trie):
        car_trie.insert("honda", payload="NEW")
        assert len(car_trie) == 8
        assert car_trie.get("honda") == "NEW"

    def test_empty_entry_rejected(self):
        with pytest.raises(ValueError):
            Trie().insert("")

    def test_entries_with_spaces(self, car_trie):
        assert "4 wheel drive" in car_trie
        assert "4 wheel" not in car_trie


class TestNodeInvariants:
    def test_labels_concatenate_values(self, car_trie):
        node = car_trie.find_node("hon")
        assert node is not None
        assert node.label == "hon"
        assert node.value == "n"

    def test_find_node_missing(self, car_trie):
        assert car_trie.find_node("xyz") is None

    def test_terminal_flags(self, car_trie):
        assert car_trie.find_node("honda").terminal
        assert not car_trie.find_node("hond").terminal


class TestEnumeration:
    def test_iter_entries_complete(self, car_trie):
        entries = dict(car_trie.iter_entries())
        assert set(entries) == {
            "honda", "accord", "civic", "toyota", "camry", "corolla",
            "4 wheel drive", "4 door",
        }

    def test_entries_list(self, car_trie):
        assert sorted(car_trie.entries()) == sorted(
            ["honda", "accord", "civic", "toyota", "camry", "corolla",
             "4 wheel drive", "4 door"]
        )

    def test_closest_entries_from_prefix(self, car_trie):
        node = car_trie.find_node("c")
        close = [entry for entry, _ in car_trie.closest_entries(node)]
        assert set(close) == {"civic", "camry", "corolla"}

    def test_closest_entries_limit(self, car_trie):
        node = car_trie.find_node("c")
        assert len(car_trie.closest_entries(node, limit=2)) == 2

    def test_closest_entries_breadth_first(self):
        trie = Trie()
        trie.insert("ab")
        trie.insert("abcdef")
        close = [entry for entry, _ in trie.closest_entries(trie.root)]
        assert close == ["ab", "abcdef"]  # shallowest first


class TestLongestPrefix:
    def test_missing_space_recovery(self, car_trie):
        match = car_trie.longest_prefix_entry("hondaaccord")
        assert match is not None
        assert match[0] == "honda"

    def test_longest_wins(self):
        trie = Trie()
        trie.insert("h")
        trie.insert("honda")
        assert trie.longest_prefix_entry("hondax")[0] == "honda"

    def test_no_prefix(self, car_trie):
        assert car_trie.longest_prefix_entry("zzz") is None


class TestWalk:
    def test_walk_finds_longest_match(self, car_trie):
        walk = car_trie.walk("hondaxyz")
        result = walk.run()
        assert result is not None
        end, node = result
        assert end == 5
        assert node.label == "honda"

    def test_walk_dies_on_mismatch(self, car_trie):
        walk = car_trie.walk("hxq")
        assert walk.run() is None
        assert not walk.alive

    def test_walk_from_offset(self, car_trie):
        walk = car_trie.walk("redhonda", start=3)
        result = walk.run()
        assert result is not None
        assert result[1].label == "honda"
