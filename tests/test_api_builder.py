"""Tests for the fluent SystemBuilder and lazy provisioning."""

from __future__ import annotations

import pytest

from repro.api import AnswerService, SystemBuilder
from repro.classify.naive_bayes import BetaBinomialNaiveBayes
from repro.qa.pipeline import CQAds
from repro.system import BuiltSystem, build_system

SMALL = dict(ads=40, sessions=30, corpus=30)


def small_builder(*domains: str) -> SystemBuilder:
    return (
        SystemBuilder()
        .with_domains(*domains)
        .ads_per_domain(SMALL["ads"])
        .sessions_per_domain(SMALL["sessions"])
        .corpus_documents(SMALL["corpus"])
    )


class TestFluentBuild:
    def test_chaining_returns_the_builder(self):
        builder = SystemBuilder()
        assert builder.with_domains("cars") is builder
        assert builder.ads_per_domain(10) is builder
        assert builder.sessions_per_domain(10) is builder
        assert builder.corpus_documents(10) is builder
        assert builder.with_seed(3) is builder
        assert builder.with_classifier(None) is builder
        assert builder.train_classifier(False) is builder
        assert builder.max_answers(5) is builder
        assert builder.answer_defaults(relax_partial=False) is builder
        assert builder.lazy() is builder

    def test_build_matches_build_system(self):
        via_builder = small_builder("cars").with_seed(7).build()
        via_function = build_system(
            ["cars"],
            ads_per_domain=SMALL["ads"],
            sessions_per_domain=SMALL["sessions"],
            corpus_documents=SMALL["corpus"],
            seed=7,
        )
        builder_records = [
            dict(r) for r in via_builder.domain("cars").dataset.records
        ]
        function_records = [
            dict(r) for r in via_function.domain("cars").dataset.records
        ]
        assert builder_records == function_records
        question = "blue honda accord"
        assert (
            via_builder.cqads.answer(question, domain="cars").records()
            == via_function.cqads.answer(question, domain="cars").records()
        )

    def test_build_is_repeatable_and_independent(self):
        builder = small_builder("cars")
        first = builder.build()
        second = builder.build()
        assert first is not second
        assert first.database is not second.database
        first_records = [dict(r) for r in first.domain("cars").dataset.records]
        second_records = [dict(r) for r in second.domain("cars").dataset.records]
        assert first_records == second_records

    def test_with_domains_accepts_iterable(self):
        varargs = small_builder("cars", "motorcycles").build()
        iterable = (
            SystemBuilder()
            .with_domains(["cars", "motorcycles"])
            .ads_per_domain(SMALL["ads"])
            .sessions_per_domain(SMALL["sessions"])
            .corpus_documents(SMALL["corpus"])
            .build()
        )
        assert varargs.cqads.domains() == iterable.cqads.domains()
        assert varargs.requested_domains == ("cars", "motorcycles")

    def test_build_service(self):
        service = small_builder("cars").build_service()
        assert isinstance(service, AnswerService)
        assert service.cqads.domains() == ["cars"]
        result = service.ask("blue honda", domain="cars")
        assert result.domain == "cars"

    def test_engine_options_flow_through(self):
        system = (
            small_builder("cars")
            .max_answers(7)
            .answer_defaults(relax_partial=False, correct_spelling=False)
            .build()
        )
        engine = system.cqads
        assert engine.max_answers == 7
        assert engine.relax_partial is False
        assert engine.correct_spelling is False
        result = engine.answer("honda", domain="cars")
        assert len(result.answers) <= 7

    def test_custom_classifier_is_used(self):
        classifier = BetaBinomialNaiveBayes()
        system = small_builder("cars").with_classifier(classifier).build()
        assert system.cqads.classifier is classifier


class TestBuiltSystemConstruction:
    """The seed's ``BuiltSystem(cqads=None)  # type: ignore`` is gone:
    the engine exists before the system object is created."""

    def test_cqads_present_from_construction(self):
        system = small_builder("cars").build()
        assert isinstance(system.cqads, CQAds)
        assert isinstance(system, BuiltSystem)
        assert system.cqads.database is system.database

    def test_requested_domains_recorded(self):
        system = small_builder("cars").build()
        assert system.requested_domains == ("cars",)
        assert system.pending_domains == ()

    def test_unknown_domain_raises_keyerror(self):
        system = small_builder("cars").build()
        with pytest.raises(KeyError):
            system.domain("boats")


class TestLazyProvisioning:
    def test_nothing_provisioned_until_first_access(self):
        system = small_builder("cars", "motorcycles").lazy().build()
        assert system.domains == {}
        assert system.pending_domains == ("cars", "motorcycles")
        assert system.cqads.domains() == []
        # The shared substrate exists up front.
        assert system.ws_matrix is not None
        assert system.corpus

    def test_first_access_provisions_and_registers(self):
        system = small_builder("cars", "motorcycles").lazy().build()
        built = system.domain("cars")
        assert len(built.dataset.records) == SMALL["ads"]
        assert system.cqads.domains() == ["cars"]
        assert system.pending_domains == ("motorcycles",)
        # Second access is a no-op returning the same artifacts.
        assert system.domain("cars") is built

    def test_lazy_answers_match_eager(self):
        question = "blue honda accord"
        eager = small_builder("cars").build()
        lazy = small_builder("cars").lazy().build()
        lazy.ensure_domain("cars")
        assert (
            lazy.cqads.answer(question, domain="cars").records()
            == eager.cqads.answer(question, domain="cars").records()
        )

    def test_provision_all_completes_the_system(self):
        system = small_builder("cars", "motorcycles").lazy().build()
        system.provision_all()
        assert system.pending_domains == ()
        assert system.cqads.domains() == ["cars", "motorcycles"]
        result = system.cqads.answer("harley davidson sportster")
        assert result.domain == "motorcycles"

    def test_lazy_unknown_domain_raises_keyerror(self):
        system = small_builder("cars").lazy().build()
        with pytest.raises(KeyError):
            system.ensure_domain("boats")

    def test_lazy_service_provisions_named_domain_on_demand(self):
        service = small_builder("cars", "motorcycles").lazy().build_service()
        assert service.cqads.domains() == []
        result = service.ask("blue honda accord", domain="cars")
        assert result.answers
        assert service.cqads.domains() == ["cars"]

    def test_lazy_engine_domain_accessor_provisions(self):
        system = small_builder("cars").lazy().build()
        # The engine-level accessor provisions too, like context().
        assert system.cqads.domain("cars").name == "cars"
        with pytest.raises(KeyError):
            system.cqads.domain("boats")

    def test_lazy_service_classification_provisions_everything(self):
        service = small_builder("cars", "motorcycles").lazy().build_service()
        result = service.ask("harley davidson sportster low miles")
        assert result.domain == "motorcycles"
        assert service.cqads.domains() == ["cars", "motorcycles"]

    def test_lazy_batch_concurrent_requests(self):
        service = small_builder("cars", "motorcycles").lazy().build_service()
        questions = [
            "blue honda accord",
            "harley davidson sportster",
            "4 door toyota camry sedan",
            "yamaha r6",
        ]
        results = service.answer_batch(questions, workers=4)
        assert [r.question for r in results] == questions
        assert {r.domain for r in results} == {"cars", "motorcycles"}
