"""Tests for the PHP-style similar_text implementation."""

from __future__ import annotations

import pytest

from repro.text.similar_text import similar_text, similar_text_percent


class TestSimilarText:
    def test_identical_strings(self):
        assert similar_text("honda", "honda") == 5

    def test_no_common_characters(self):
        assert similar_text("abc", "xyz") == 0

    def test_empty_inputs(self):
        assert similar_text("", "honda") == 0
        assert similar_text("honda", "") == 0

    def test_php_reference_example(self):
        # PHP docs: similar_text("World","Word") == 4
        assert similar_text("world", "word") == 4

    def test_recursion_on_both_sides(self):
        # "xworld" vs "worldx": LCS "world" (5); the leading/trailing
        # x cannot pair up because recursion only looks left-of-left
        # and right-of-right.
        assert similar_text("xworld", "worldx") == 5
        # "ababab" vs "bababa": LCS "ababa"/"babab" (5), sides empty.
        assert similar_text("ababab", "bababa") == 5

    def test_misspelled_keyword(self):
        assert similar_text("accorr", "accord") == 5

    def test_symmetry_of_count_on_typical_words(self):
        pairs = [("accord", "accorr"), ("mazda", "mazada"), ("civic", "civci")]
        for a, b in pairs:
            assert similar_text(a, b) == similar_text(b, a)


class TestSimilarTextPercent:
    def test_identical_is_100(self):
        assert similar_text_percent("blue", "blue") == 100.0

    def test_empty_pair_is_100(self):
        assert similar_text_percent("", "") == 100.0

    def test_one_empty_is_0(self):
        assert similar_text_percent("", "blue") == 0.0

    def test_range(self):
        value = similar_text_percent("accorr", "accord")
        assert 0.0 < value < 100.0

    def test_known_value(self):
        # 5 matched chars, lengths 6 and 6 -> 2*5/12*100
        assert similar_text_percent("accorr", "accord") == pytest.approx(
            2 * 5 / 12 * 100
        )

    def test_correction_prefers_closer_candidate(self):
        typo = "hinda"
        good = similar_text_percent(typo, "honda")
        bad = similar_text_percent(typo, "mazda")
        assert good > bad
