"""Tests for the programmatic query builder."""

from __future__ import annotations

import pytest

from repro.db.sql.builder import QueryBuilder
from repro.db.sql.executor import SQLExecutor
from repro.db.sql.parser import parse_select


@pytest.fixture()
def builder():
    return QueryBuilder("car_ads")


class TestPredicates:
    def test_eq_lowercases_column(self, builder):
        expr = builder.eq("Make", "honda")
        assert expr.to_sql() == "make = 'honda'"

    def test_comparison_family(self, builder):
        assert builder.lt("price", 5000).to_sql() == "price < 5000"
        assert builder.le("price", 5000).to_sql() == "price <= 5000"
        assert builder.gt("price", 5000).to_sql() == "price > 5000"
        assert builder.ge("price", 5000).to_sql() == "price >= 5000"
        assert builder.ne("color", "red").to_sql() == "color != 'red'"

    def test_between_and_contains(self, builder):
        assert (
            builder.between("price", 1000, 2000).to_sql()
            == "price BETWEEN 1000 AND 2000"
        )
        assert builder.contains("model", "cor").to_sql() == "model LIKE '%cor%'"

    def test_string_escaping(self, builder):
        expr = builder.eq("model", "o'brien")
        assert expr.to_sql() == "model = 'o''brien'"
        # and it round-trips through the parser
        parsed = parse_select(f"SELECT * FROM t WHERE {expr.to_sql()}")
        assert parsed.where.value.value == "o'brien"

    def test_combinators_skip_none(self, builder):
        combined = builder.and_(builder.eq("make", "honda"), None)
        assert combined.to_sql() == "make = 'honda'"
        assert builder.and_(None, None) is None
        either = builder.or_(
            builder.eq("make", "honda"), builder.eq("make", "bmw")
        )
        assert "OR" in either.to_sql()

    def test_not(self, builder):
        assert builder.not_(builder.eq("color", "blue")).to_sql() == (
            "NOT (color = 'blue')"
        )


class TestStatements:
    def test_select_with_everything(self, builder):
        statement = builder.select(
            where=builder.eq("make", "honda"),
            order_by=[("price", False), ("year", True)],
            limit=5,
        )
        sql = statement.to_sql()
        assert "ORDER BY price, year DESC" in sql
        assert sql.endswith("LIMIT 5")
        # round-trip
        assert parse_select(sql).to_sql() == sql

    def test_select_conjunction_matches_example7(self, builder):
        statement = builder.select_conjunction(
            [builder.eq("transmission", "automatic"),
             builder.eq("color", "blue")]
        )
        sql = statement.to_sql()
        assert sql.count("record_id IN (SELECT record_id FROM car_ads") == 2
        assert " AND " in sql

    def test_select_disjunction_footnote4(self, builder):
        statement = builder.select_disjunction(
            [builder.eq("color", "blue"), builder.lt("price", 5000)]
        )
        assert " OR " in statement.to_sql()

    def test_min_max_probe(self, builder):
        sql = builder.select_min_max("price").to_sql()
        assert sql == "SELECT MIN(price), MAX(price) FROM car_ads"

    def test_executes_against_database(self, car_database, builder):
        statement = builder.select_conjunction(
            [builder.eq("make", "honda"), builder.lt("price", 10000)]
        )
        result = SQLExecutor(car_database).execute(statement)
        assert {record["model"] for record in result.records} == {"accord"}

    def test_disjunction_executes(self, car_database, builder):
        statement = builder.select_disjunction(
            [builder.eq("make", "bmw"), builder.eq("make", "ford")]
        )
        result = SQLExecutor(car_database).execute(statement)
        assert len(result) == 2
