"""Property-based fuzzing of the full interpretation stack.

Compose random questions from the domain's own vocabulary plus
identifier keywords, numbers and junk, and assert the invariants the
pipeline guarantees: it never crashes (other than the documented
contradiction outcome), returned exact answers actually satisfy the
interpretation, and the answer cap holds.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.ranking.rank_sim import condition_satisfied

VOCAB_WORDS = [
    "honda", "accord", "toyota", "camry", "bmw", "blue", "red", "silver",
    "automatic", "manual", "4 wheel drive", "2 door", "sedan",
]
IDENTIFIER_WORDS = [
    "less", "than", "more", "under", "over", "between", "and", "or",
    "not", "no", "without", "except", "cheapest", "newest", "lowest",
    "highest", "max", "min", "within",
]
NUMBERS = ["2000", "5000", "$3000", "20k", "150000", "1999", "0", "7"]
JUNK = ["zzz", "qwerty", "plz", "asap", "??", "the"]

token = st.one_of(
    st.sampled_from(VOCAB_WORDS),
    st.sampled_from(IDENTIFIER_WORDS),
    st.sampled_from(NUMBERS),
    st.sampled_from(JUNK),
)
question_strategy = st.lists(token, min_size=0, max_size=10).map(" ".join)


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(question=question_strategy)
def test_pipeline_invariants_under_fuzz(cars_system, question):
    cqads = cars_system.cqads
    try:
        result = cqads.answer(question, domain="cars")
    except ReproError as error:  # pragma: no cover - would be a bug
        pytest.fail(f"pipeline raised on {question!r}: {error}")
    # cap respected
    assert len(result.answers) <= cqads.max_answers
    # exacts precede partials
    flags = [answer.exact for answer in result.answers]
    assert flags == sorted(flags, reverse=True)
    if result.interpretation is None:
        # only the documented contradiction outcome produces no reading
        assert result.message is not None
        return
    # every exact answer satisfies every leaf condition of a pure
    # conjunction (Boolean trees are checked structurally elsewhere)
    if result.interpretation.is_pure_conjunction():
        for answer in result.exact_answers:
            for condition in result.interpretation.conditions():
                assert condition_satisfied(condition, answer.record), (
                    question,
                    condition.describe(),
                    dict(answer.record),
                )
    # partial scores are finite, ordered, and below the exact sentinel
    partial_scores = [a.score for a in result.partial_answers]
    assert partial_scores == sorted(partial_scores, reverse=True)
    assert all(score != float("inf") for score in partial_scores)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(question=question_strategy)
def test_sql_rendering_always_parses(cars_system, question):
    """Whatever the interpretation, the generated SQL is valid dialect."""
    from repro.db.sql.parser import parse_select

    result = cars_system.cqads.answer(question, domain="cars")
    if result.interpretation is None or not result.sql:
        return
    statement = parse_select(result.sql)
    assert statement.table == "car_ads"
