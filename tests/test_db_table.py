"""Tests for the table layer with automatic index maintenance."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.table import (
    BatchDelta,
    InsertDelta,
    RemoveDelta,
    UpdateDelta,
)
from repro.errors import RecordNotFoundError, SchemaError, UnknownTableError
from tests.conftest import SMALL_CAR_ROWS, small_car_schema


class TestInsert:
    def test_insert_assigns_sequential_ids(self, car_table):
        assert [record.record_id for record in car_table] == list(
            range(1, len(SMALL_CAR_ROWS) + 1)
        )

    def test_len(self, car_table):
        assert len(car_table) == len(SMALL_CAR_ROWS)

    def test_invalid_record_rejected(self, car_table):
        with pytest.raises(SchemaError):
            car_table.insert({"make": "honda"})  # model missing

    def test_get_and_fetch(self, car_table):
        record = car_table.get(1)
        assert record["make"] == "honda"
        assert car_table.get(999) is None
        fetched = car_table.fetch([3, 1, 999])
        assert [r.record_id for r in fetched] == [1, 3]


class TestDelete:
    def test_delete_removes_from_indexes(self, car_table):
        before = car_table.lookup_equal("make", "honda")
        assert 1 in before
        car_table.delete(1)
        assert 1 not in car_table.lookup_equal("make", "honda")
        assert car_table.get(1) is None

    def test_delete_missing_raises(self, car_table):
        with pytest.raises(SchemaError):
            car_table.delete(999)

    def test_delete_then_range(self, car_table):
        car_table.delete(8)  # the 22000 bmw
        assert car_table.lookup_range("price", 20000, None) == set()


class TestIndexedLookups:
    def test_lookup_equal_type_i(self, car_table):
        assert car_table.lookup_equal("make", "honda") == {1, 2, 3}

    def test_lookup_equal_case_insensitive(self, car_table):
        assert car_table.lookup_equal("make", "HONDA") == {1, 2, 3}

    def test_lookup_equal_numeric(self, car_table):
        assert car_table.lookup_equal("price", 9000) == {1}

    def test_lookup_range(self, car_table):
        ids = car_table.lookup_range("price", 5000, 9000)
        prices = [car_table.get(record_id)["price"] for record_id in ids]
        assert all(5000 <= price <= 9000 for price in prices)
        assert len(ids) == 5

    def test_lookup_range_on_categorical_raises(self, car_table):
        with pytest.raises(SchemaError):
            car_table.lookup_range("make", 0, 1)

    def test_lookup_substring(self, car_table):
        ids = car_table.lookup_substring("model", "cor")
        models = {car_table.get(record_id)["model"] for record_id in ids}
        assert models == {"accord", "corolla"}

    def test_column_extreme(self, car_table):
        cheapest = car_table.column_extreme("price", maximum=False)
        assert cheapest == {5}  # the 3000 corolla
        priciest = car_table.column_extreme("price", maximum=True)
        assert priciest == {8}

    def test_column_extreme_categorical_raises(self, car_table):
        with pytest.raises(SchemaError):
            car_table.column_extreme("make", maximum=True)

    def test_column_bounds(self, car_table):
        assert car_table.column_bounds("price") == (3000, 22000)
        assert car_table.column_bounds("year") == (1999, 2008)

    def test_distinct_values(self, car_table):
        assert car_table.distinct_values("make") == [
            "bmw", "chevy", "ford", "honda", "toyota",
        ]

    def test_scan(self, car_table):
        ids = car_table.scan(lambda record: record["color"] == "blue")
        assert ids == {1, 3, 4, 6}


class TestDatabase:
    def test_create_and_lookup(self):
        database = Database()
        database.create_table(small_car_schema())
        assert database.has_table("car_ads")
        assert database.table("car_ads").name == "car_ads"

    def test_table_name_canonicalization(self):
        database = Database()
        database.create_table(small_car_schema())
        # the paper's "Car Ads" resolves to car_ads
        assert database.table("Car Ads").name == "car_ads"

    def test_duplicate_table_rejected(self):
        database = Database()
        database.create_table(small_car_schema())
        with pytest.raises(ValueError):
            database.create_table(small_car_schema())

    def test_unknown_table(self):
        database = Database()
        with pytest.raises(UnknownTableError):
            database.table("nothing")

    def test_drop_table(self):
        database = Database()
        database.create_table(small_car_schema())
        database.drop_table("car_ads")
        assert not database.has_table("car_ads")
        with pytest.raises(UnknownTableError):
            database.drop_table("car_ads")

    def test_table_names_and_iter(self):
        database = Database()
        database.create_table(small_car_schema())
        assert database.table_names() == ["car_ads"]
        assert len(list(database)) == 1
        assert len(database) == 1


class TestMutationEpochs:
    def test_insert_delete_update_bump_epoch(self, car_table):
        baseline = car_table.epoch
        assert baseline == len(SMALL_CAR_ROWS)  # one bump per seed insert
        record = car_table.insert(dict(car_table.get(1)))
        assert car_table.epoch == baseline + 1
        car_table.update(record.record_id, {"color": "green"})
        assert car_table.epoch == baseline + 2
        car_table.delete(record.record_id)
        assert car_table.epoch == baseline + 3

    def test_listeners_receive_events_in_order(self, car_table):
        events = []
        car_table.add_listener(
            lambda event: events.append(
                (event.kind, event.record_id, event.epoch)
            )
        )
        record = car_table.insert(dict(car_table.get(1)))
        car_table.update(record.record_id, {"color": "green"})
        car_table.delete(record.record_id)
        kinds = [kind for kind, _, _ in events]
        assert kinds == ["insert", "update", "delete"]
        assert [epoch for _, _, epoch in events] == [
            car_table.epoch - 2,
            car_table.epoch - 1,
            car_table.epoch,
        ]
        assert all(rid == record.record_id for _, rid, _ in events)

    def test_remove_listener(self, car_table):
        events = []
        listener = lambda event: events.append(event)  # noqa: E731
        car_table.add_listener(listener)
        car_table.remove_listener(listener)
        car_table.remove_listener(listener)  # unknown: ignored
        car_table.insert(dict(car_table.get(1)))
        assert events == []

    def test_update_revalidates_and_reindexes(self, car_table):
        record = car_table.get(1)  # blue honda accord
        assert record.record_id in car_table.lookup_equal("color", "blue")
        car_table.update(1, {"color": "Green", "price": 4321})
        assert record["color"] == "green"  # normalized in place, same object
        assert record["price"] == 4321
        assert record.record_id not in car_table.lookup_equal("color", "blue")
        assert record.record_id in car_table.lookup_equal("color", "green")
        assert record.record_id in car_table.lookup_range("price", 4000, 5000)

    def test_update_unknown_or_invalid(self, car_table):
        with pytest.raises(RecordNotFoundError) as excinfo:
            car_table.update(999, {"color": "red"})
        assert excinfo.value.record_id == 999
        assert excinfo.value.action == "update"
        # Still a SchemaError subclass, so pre-existing catches hold.
        assert isinstance(excinfo.value, SchemaError)
        with pytest.raises(RecordNotFoundError):
            car_table.delete(999)
        with pytest.raises(SchemaError):
            car_table.update(1, {"model": None})  # Type I required
        # A failed validation must not have unindexed the record.
        assert 1 in car_table.lookup_equal("make", "honda")

    def test_typed_deltas_carry_payloads(self, car_table):
        events = []
        car_table.add_listener(events.append)
        record = car_table.insert(dict(car_table.get(1)))
        car_table.update(record.record_id, {"color": "green", "price": 7500})
        car_table.delete(record.record_id)
        inserted, updated, removed = events
        assert isinstance(inserted, InsertDelta)
        assert inserted.record is record
        assert inserted.shard_index is None  # plain table: no stamp
        assert isinstance(updated, UpdateDelta)
        assert sorted(updated.changed_columns) == ["color", "price"]
        assert updated.old_values["color"] == "blue"
        assert updated.new_values == {"color": "green", "price": 7500}
        assert isinstance(removed, RemoveDelta)
        assert removed.record is record  # popped object, safe snapshot

    def test_update_delta_reports_only_changed_columns(self, car_table):
        events = []
        car_table.add_listener(events.append)
        # Same stored value (normalization included): no changed columns,
        # but the epoch still advances and the delta still fires.
        before = car_table.epoch
        car_table.update(1, {"color": "Blue"})  # normalizes to stored "blue"
        assert car_table.epoch == before + 1
        assert events[-1].changed_columns == ()

    def test_bulk_deltas_wrap_per_row_deltas(self, car_table):
        events = []
        car_table.add_listener(events.append)
        inserted = car_table.insert_many(
            [dict(SMALL_CAR_ROWS[0]), dict(SMALL_CAR_ROWS[1])]
        )
        assert len(events) == 1
        batch = events[0]
        assert isinstance(batch, BatchDelta)
        assert batch.record_ids == tuple(r.record_id for r in inserted)
        assert [delta.epoch for delta in batch.deltas] == [
            batch.epoch - 1,
            batch.epoch,
        ]
        assert all(isinstance(d, InsertDelta) for d in batch.deltas)
        car_table.remove_many([r.record_id for r in inserted])
        removal = events[-1]
        assert isinstance(removal, BatchDelta) and removal.kind == "delete"
        assert all(isinstance(d, RemoveDelta) for d in removal.deltas)
        assert removal.record_ids == tuple(r.record_id for r in inserted)

    def test_database_listener_covers_future_tables(self):
        database = Database()
        events = []
        database.add_listener(lambda event: events.append(event.table.name))
        table = database.create_table(small_car_schema())  # created *after*
        table.insert(dict(SMALL_CAR_ROWS[0]))
        assert events == ["car_ads"]
        database.remove_listener(events.append)  # unknown: ignored


class TestBulkAndExplicitIds:
    def test_remove_many_notifies_once(self, car_table):
        events = []
        car_table.add_listener(events.append)
        baseline = car_table.epoch
        removed = car_table.remove_many([2, 4, 6])
        assert removed == 3
        assert len(car_table) == len(SMALL_CAR_ROWS) - 3
        assert all(car_table.get(record_id) is None for record_id in (2, 4, 6))
        # Epoch advanced per row, listeners heard one batched event.
        assert car_table.epoch == baseline + 3
        assert len(events) == 1
        assert events[0].kind == "delete" and events[0].record_id == 6
        assert events[0].epoch == car_table.epoch

    def test_remove_many_empty_is_silent(self, car_table):
        events = []
        car_table.add_listener(events.append)
        assert car_table.remove_many([]) == 0
        assert events == []

    def test_remove_many_unknown_id_raises_after_notifying(self, car_table):
        events = []
        car_table.add_listener(events.append)
        with pytest.raises(SchemaError):
            car_table.remove_many([1, 999])
        # The successful prefix was applied and announced.
        assert car_table.get(1) is None
        assert len(events) == 1 and events[0].record_id == 1

    def test_insert_with_explicit_id(self, car_table):
        record = car_table.insert(dict(SMALL_CAR_ROWS[0]), record_id=50)
        assert record.record_id == 50
        assert car_table.get(50) is record
        assert record.record_id in car_table.lookup_equal("make", "honda")
        # The mint advances past explicit ids — no later collision.
        follow = car_table.insert(dict(SMALL_CAR_ROWS[1]))
        assert follow.record_id == 51

    def test_insert_with_taken_id_raises(self, car_table):
        with pytest.raises(SchemaError):
            car_table.insert(dict(SMALL_CAR_ROWS[0]), record_id=1)


class TestDeduplicateBulkDelete:
    def test_deduplicate_notifies_once_per_sweep(self):
        from repro.db.dedup import deduplicate

        database = Database()
        table = database.create_table(small_car_schema())
        table.insert_many(SMALL_CAR_ROWS)
        table.insert_many([dict(SMALL_CAR_ROWS[0]), dict(SMALL_CAR_ROWS[0])])
        events = []
        table.add_listener(events.append)
        removed = deduplicate(table)
        assert removed == 2
        assert len(events) == 1 and events[0].kind == "delete"
