"""Parity: the columnar top-k ranking engine vs the legacy full sort.

The acceptance bar mirrors PR 2's relaxation parity: *bit-identical*
output — same records, same float scores, same failed-condition
tuples, same similarity kinds, same order (ties included, since the
``(-score, record_id)`` key is a total order).  Three layers:

* **ranker level** — ``rank_units(engine="columnar", top_k=30)`` vs
  the legacy full sort truncated to 30, and the unbounded columnar
  ranking vs the full legacy ranking, on 100 generated questions per
  domain across all eight domains;
* **pipeline level** — full ``AnswerService.answer`` runs with the
  engine flipped between ``ranking_engine`` settings;
* **epoch invalidation** — mutating a table bumps its epoch, so the
  column store rebuilds and the fragment/answer caches miss instead of
  serving pre-mutation state; no manual invalidation anywhere.
"""

from __future__ import annotations

import pytest

from repro.api.requests import AnswerRequest
from repro.api.service import AnswerService
from repro.datagen.questions import make_generator
from repro.datagen.vocab import DOMAIN_NAMES
from repro.qa.sql_generation import evaluate_interpretation
from repro.system import build_system

QUESTIONS_PER_DOMAIN = 100
PIPELINE_QUESTIONS_PER_DOMAIN = 15
TOP_K = 30


@pytest.fixture(scope="module")
def parity_system():
    """All eight domains, small scale (parity is scale-independent)."""
    return build_system(
        ads_per_domain=110,
        sessions_per_domain=150,
        corpus_documents=150,
        train_classifier=False,
    )


def _scored_signature(items):
    return [
        (item.record.record_id, item.score, item.failed, item.similarity_kind)
        for item in items
    ]


def _answer_signature(answers):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind) for a in answers
    ]


def _result_signature(result):
    return (
        result.domain,
        result.sql,
        result.message,
        _answer_signature(result.answers),
        _answer_signature(result.ranked_pool),
    )


@pytest.mark.parametrize("domain", DOMAIN_NAMES)
def test_columnar_topk_parity_per_domain(parity_system, domain):
    """Columnar top-30 == legacy full sort truncated, 100 q/domain."""
    cqads = parity_system.cqads
    context = cqads.context(domain)
    ranker = context.ranker()
    assert ranker is not None
    assert context.resources.table is not None  # columnar engine armed
    generator = make_generator(parity_system.domain(domain).dataset, seed=313)
    compared = 0
    nonempty = 0
    attempts = 0
    while compared < QUESTIONS_PER_DOMAIN and attempts < QUESTIONS_PER_DOMAIN * 4:
        attempts += 1
        index = attempts
        question = generator.generate()
        interpretation = question.interpretation
        units = cqads.relaxation_units(interpretation)
        if not units:
            continue
        exact = evaluate_interpretation(
            cqads.database, cqads.domain(domain), interpretation
        )
        exclude = {record.record_id for record in exact}
        pool = cqads.partial_candidates(domain, interpretation, exclude)
        legacy_full = ranker.rank_units(pool, units, engine="legacy")
        columnar_topk = ranker.rank_units(
            pool, units, top_k=TOP_K, engine="columnar"
        )
        assert _scored_signature(columnar_topk) == _scored_signature(
            legacy_full[:TOP_K]
        ), f"top-k divergence on {question.kind!r}: {question.text!r}"
        # The unbounded columnar ranking must equal the full sort too
        # (sampled — it shares every scoring path with the top-k run).
        if index % 5 == 0:
            columnar_full = ranker.rank_units(pool, units, engine="columnar")
            assert _scored_signature(columnar_full) == _scored_signature(
                legacy_full
            ), f"full divergence on {question.kind!r}: {question.text!r}"
        compared += 1
        nonempty += bool(pool)
    assert compared == QUESTIONS_PER_DOMAIN
    assert nonempty > 0  # the battery must exercise actual ranking


@pytest.mark.parametrize("domain", DOMAIN_NAMES[:4])
def test_pipeline_parity_per_domain(parity_system, domain):
    """End-to-end answers are bit-identical under either engine."""
    cqads = parity_system.cqads
    service = parity_system.service()
    generator = make_generator(
        parity_system.domain(domain).dataset, noise_rate=0.3, seed=59
    )
    questions = [
        generator.generate().text for _ in range(PIPELINE_QUESTIONS_PER_DOMAIN)
    ]
    original = cqads.ranking_engine
    try:
        cqads.ranking_engine = "legacy"
        legacy = [
            service.answer(AnswerRequest(question=text, domain=domain))
            for text in questions
        ]
        cqads.ranking_engine = "columnar"
        columnar = [
            service.answer(AnswerRequest(question=text, domain=domain))
            for text in questions
        ]
    finally:
        cqads.ranking_engine = original
    for text, legacy_result, columnar_result in zip(questions, legacy, columnar):
        assert _result_signature(legacy_result) == _result_signature(
            columnar_result
        ), f"pipeline divergence on {text!r}"


def test_top_k_option_bounds_ranked_pool(parity_system):
    """AnswerOptions.top_k caps the ranked pool, identically to slicing."""
    service = parity_system.service()
    request = AnswerRequest(question="honda", domain="cars")
    unbounded = service.answer(request)
    assert len(unbounded.ranked_pool) > TOP_K
    bounded = service.answer(request.with_options(top_k=TOP_K))
    exact_count = len([a for a in bounded.ranked_pool if a.exact])
    assert len(bounded.ranked_pool) == exact_count + TOP_K
    assert _answer_signature(bounded.answers) == _answer_signature(
        unbounded.answers
    )
    partial_bounded = [a for a in bounded.ranked_pool if not a.exact]
    partial_full = [a for a in unbounded.ranked_pool if not a.exact]
    assert _answer_signature(partial_bounded) == _answer_signature(
        partial_full[:TOP_K]
    )


# ----------------------------------------------------------------------
# epoch invalidation: mutate -> caches miss, no manual calls anywhere
# ----------------------------------------------------------------------
@pytest.fixture()
def mutable_system():
    """A small private build the epoch tests may freely mutate."""
    return build_system(
        ["cars"],
        ads_per_domain=80,
        sessions_per_domain=100,
        corpus_documents=100,
    )


def test_mutation_bumps_epoch_and_refreshes_column_store(mutable_system):
    """A mutation moves the store to the new epoch — patched in place
    under delta maintenance (PR 5), never served stale."""
    cqads = mutable_system.cqads
    resources = cqads.context("cars").resources
    table = cqads.database.table("car_ads")
    store = resources.column_store()
    assert store is not None and store.epoch == table.epoch
    assert resources.column_store() is store  # cached while epoch holds
    donor = next(iter(table))
    inserted = table.insert(dict(donor))
    fresh = resources.column_store()
    assert fresh.epoch == table.epoch
    assert inserted.record_id in fresh.row_of


def test_mutation_rebuilds_column_store_in_rebuild_mode():
    """cache_maintenance="rebuild" keeps the pre-delta oracle: a
    mutation forces a from-scratch store."""
    system = build_system(
        ["cars"],
        ads_per_domain=40,
        sessions_per_domain=50,
        corpus_documents=50,
        cache_maintenance="rebuild",
    )
    cqads = system.cqads
    resources = cqads.context("cars").resources
    assert resources.incremental is False
    table = cqads.database.table("car_ads")
    store = resources.column_store()
    donor = next(iter(table))
    inserted = table.insert(dict(donor))
    fresh = resources.column_store()
    assert fresh is not store  # rebuilt, not patched
    assert fresh.epoch == table.epoch
    assert inserted.record_id in fresh.row_of


def test_mutation_patches_fragment_cache(mutable_system):
    """Under delta maintenance a point mutation *patches* the cached
    unit id-sets forward — the repeat question still hits warm
    fragments instead of re-running every unit's index scan."""
    cqads = mutable_system.cqads
    fragments = cqads.fragment_cache
    assert fragments is not None
    service = mutable_system.service()
    request = AnswerRequest(
        question="honda accord blue less than 15000 dollars", domain="cars"
    )
    service.answer(request)
    populated = len(fragments)
    assert populated > 0
    hits_before = fragments.hits
    service.answer(request)
    assert fragments.hits > hits_before  # warm repeat shares fragments
    table = cqads.database.table("car_ads")
    donor = next(iter(table))
    inserted = table.insert(dict(donor))
    assert len(fragments) == populated  # patched forward, not dropped
    misses_before = fragments.misses
    hits_before = fragments.hits
    service.answer(request)
    assert fragments.hits > hits_before  # patched entries still serve
    assert fragments.misses == misses_before
    table.delete(inserted.record_id)


def test_mutation_invalidates_fragment_cache_in_rebuild_mode():
    """The epoch-sweep oracle: a mutation drops the dead generation
    and the next question re-evaluates at the new epoch."""
    system = build_system(
        ["cars"],
        ads_per_domain=40,
        sessions_per_domain=50,
        corpus_documents=50,
        cache_maintenance="rebuild",
    )
    cqads = system.cqads
    fragments = cqads.fragment_cache
    assert fragments is not None
    service = system.service()
    request = AnswerRequest(
        question="honda accord blue less than 15000 dollars", domain="cars"
    )
    service.answer(request)
    assert len(fragments) > 0
    table = cqads.database.table("car_ads")
    donor = next(iter(table))
    table.insert(dict(donor))
    assert len(fragments) == 0  # mutation dropped the dead generation
    misses_before = fragments.misses
    hits_before = fragments.hits
    service.answer(request)
    assert fragments.misses > misses_before  # re-evaluated at new epoch
    assert fragments.hits == hits_before


def test_mutation_auto_invalidates_answer_cache(mutable_system):
    """Insert, update and delete each refresh cached answers by
    themselves — the manual ``invalidate_cache`` contract is retired."""
    cqads = mutable_system.cqads
    service = mutable_system.service(cache=32)
    request = AnswerRequest(
        question="honda accord blue less than 15000 dollars", domain="cars"
    )
    table = cqads.database.table("car_ads")
    reference = AnswerService(cqads)  # cacheless oracle

    def assert_fresh():
        assert _result_signature(service.answer(request)) == _result_signature(
            reference.answer(request)
        )

    first = service.answer(request)
    assert _answer_signature(service.answer(request).answers) == (
        _answer_signature(first.answers)
    )
    assert service.cache.hits == 1

    # Insert a strong match: the cached answer must refresh unprompted.
    inserted = table.insert(
        {
            "make": "honda",
            "model": "accord",
            "color": "blue",
            "price": 14000,
        }
    )
    assert len(service.cache) == 0
    fresh = service.answer(request)
    assert inserted.record_id in [
        answer.record.record_id for answer in fresh.answers
    ]
    assert_fresh()

    # Update: the record stops matching, answers follow automatically.
    table.update(inserted.record_id, {"color": "red", "price": 99000})
    updated = service.answer(request)
    top_exact = [a.record.record_id for a in updated.answers if a.exact]
    assert inserted.record_id not in top_exact
    assert_fresh()

    # Delete: the record disappears from answers automatically.
    table.delete(inserted.record_id)
    deleted = service.answer(request)
    assert inserted.record_id not in [
        answer.record.record_id for answer in deleted.answers
    ]
    assert_fresh()


def test_update_refreshes_ranking_caches(mutable_system):
    """An in-place update is visible to the columnar ranker (the
    per-record key/lowered caches and column store cannot go stale)."""
    cqads = mutable_system.cqads
    resources = cqads.context("cars").resources
    table = cqads.database.table("car_ads")
    donor = next(iter(table))
    record = table.insert({**dict(donor), "color": "blue"})
    store = resources.column_store()
    row = store.row_of[record.record_id]
    assert store.categorical["color"][row] == "blue"
    key_before = resources.record_key(record)
    table.update(record.record_id, {"color": "green", "model": donor["model"]})
    store = resources.column_store()
    assert store.categorical["color"][store.row_of[record.record_id]] == "green"
    assert resources.lowered_value(record, "color") == "green"
    assert resources.record_key(record) == key_before  # rebuilt, same identity
    table.delete(record.record_id)
