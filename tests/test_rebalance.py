"""Online shard rebalancing: plans, topology changes, and the storm.

Three layers:

* **planner** — :func:`~repro.shard.rebalance.plan_rebalance` is a
  pure function of the facade's gauges: it levels skewed fleets to
  the mean, honours the tolerance band and ``max_moves``, weights by
  scatter-latency EWMAs when asked, and never targets retired shards;
* **topology** — ``split_shard`` / ``merge_shard`` / ``move_records``
  preserve the single-table facade contract bit-for-bit (ids,
  iteration order, lookups), route around retired shards, emit
  ordinary stamped deltas (no new invalidation machinery) and feed
  the ``repro_rebalance_moves_total`` counter;
* **the storm** (the PR's acceptance bar) — a seeded random interleave
  of mutations, splits, merges and rebalances, answered mid-flight,
  stays bit-identical to an unsharded oracle receiving the same
  mutations, and never resurrects a deleted record from a stale cache.
"""

from __future__ import annotations

import random

import pytest

from repro.datagen.questions import make_generator
from repro.db.table import InsertDelta, RemoveDelta, Table
from repro.obs import get_default_registry
from repro.shard import (
    ModuloPartitioner,
    ShardedTable,
    plan_rebalance,
    process_scatter_supported,
)
from repro.shard.rebalance import RebalancePlan, ShardMove
from repro.system import build_system

from tests.conftest import SMALL_CAR_ROWS, small_car_schema

SYSTEM_SCALE = dict(
    ads_per_domain=100,
    sessions_per_domain=100,
    corpus_documents=80,
    train_classifier=False,
)


class _PinnedPartitioner:
    """Routes every record to one shard: maximal skew on demand."""

    def __init__(self, shard: int = 0) -> None:
        self.shard = shard

    def shard_of(self, record_id: int, shard_count: int) -> int:
        return self.shard % shard_count


def _fill(table: ShardedTable, rows: int) -> None:
    table.insert_many(
        dict(SMALL_CAR_ROWS[i % len(SMALL_CAR_ROWS)]) for i in range(rows)
    )


# ----------------------------------------------------------------------
# the planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_balanced_fleet_plans_nothing(self):
        table = ShardedTable(small_car_schema(), 4, ModuloPartitioner())
        _fill(table, 40)
        plan = plan_rebalance(table)
        assert isinstance(plan, RebalancePlan)
        assert not plan and plan.move_count == 0
        assert plan.sizes_before == (10, 10, 10, 10)
        table.close()

    def test_skewed_fleet_levels_to_the_mean(self):
        table = ShardedTable(small_car_schema(), 4, _PinnedPartitioner(0))
        _fill(table, 40)
        plan = plan_rebalance(table)
        assert plan.sizes_before == (40, 0, 0, 0)
        assert plan.target_size == pytest.approx(10.0)
        # Donors shed their highest ids first, deterministically.
        moved_ids = [move.record_id for move in plan.moves]
        assert moved_ids == sorted(moved_ids, reverse=True)
        assert all(move.source == 0 for move in plan.moves)
        assert set(plan.moves_by_target()) <= {1, 2, 3}

        moved = table.rebalance(plan)
        assert moved == plan.move_count
        sizes = table.shard_sizes()
        assert max(sizes) - min(sizes) <= 2, sizes
        assert len(table) == 40

    def test_tolerance_band_suppresses_small_imbalance(self):
        table = ShardedTable(small_car_schema(), 2, ModuloPartitioner())
        _fill(table, 20)
        table.move_records([1], 0)  # sizes 11 / 9: inside a 30% band
        assert not plan_rebalance(table, tolerance=0.3)
        assert plan_rebalance(table, tolerance=0.0)
        table.close()

    def test_max_moves_truncates_the_plan(self):
        table = ShardedTable(small_car_schema(), 4, _PinnedPartitioner(0))
        _fill(table, 40)
        plan = plan_rebalance(table, max_moves=5)
        assert plan.move_count == 5
        table.close()

    def test_latency_weighting_drains_the_slow_shard(self):
        table = ShardedTable(small_car_schema(), 2, ModuloPartitioner())
        _fill(table, 20)
        table.observe_scatter(0, 0.2)
        table.observe_scatter(1, 0.05)
        assert not plan_rebalance(table)  # row counts are level
        plan = plan_rebalance(table, use_latency=True)
        assert plan and all(move.source == 0 for move in plan.moves)
        assert all(move.target == 1 for move in plan.moves)
        table.close()

    def test_retired_shards_never_receive(self):
        table = ShardedTable(small_car_schema(), 3, _PinnedPartitioner(0))
        _fill(table, 30)
        table.merge_shard(1, 2)
        plan = plan_rebalance(table)
        assert plan
        assert all(move.target != 1 for move in plan.moves)
        table.rebalance(plan)
        assert len(table.shards[1]) == 0
        table.close()


# ----------------------------------------------------------------------
# topology changes through the facade
# ----------------------------------------------------------------------
@pytest.fixture()
def oracle_pair():
    oracle = Table(small_car_schema())
    sharded = ShardedTable(small_car_schema(), 3, ModuloPartitioner())
    for row in SMALL_CAR_ROWS * 4:
        oracle.insert(dict(row))
        sharded.insert(dict(row))
    return oracle, sharded


def _facade_state(table):
    return [(record.record_id, dict(record)) for record in table]


class TestTopology:
    def test_split_preserves_the_facade_contract(self, oracle_pair):
        oracle, sharded = oracle_pair
        before = _facade_state(sharded)
        new_shard = sharded.split_shard(0)
        assert new_shard == 3 and sharded.shard_count == 4
        assert _facade_state(sharded) == _facade_state(oracle) == before
        assert len(sharded.shards[new_shard]) > 0
        # Routed point lookups still find every moved record.
        for record_id, values in before:
            assert dict(sharded.get(record_id)) == values
        assert sharded.lookup_equal("color", "blue") == oracle.lookup_equal(
            "color", "blue"
        )

    def test_merge_retires_source_and_redirects_inserts(self, oracle_pair):
        _oracle, sharded = oracle_pair
        moved = sharded.merge_shard(0, 1)
        assert moved > 0
        assert sharded.retired_shards == frozenset({0})
        assert len(sharded.shards[0]) == 0
        # A record whose base placement is the retired shard follows
        # the redirect; the retired shard never sees another insert.
        inserts = [
            sharded.insert(dict(SMALL_CAR_ROWS[0])) for _ in range(6)
        ]
        assert len(sharded.shards[0]) == 0
        assert all(sharded.get(record.record_id) for record in inserts)
        with pytest.raises(ValueError):
            sharded.move_records([inserts[0].record_id], 0)

    def test_add_shard_changes_nothing_until_rebalance(self, oracle_pair):
        oracle, sharded = oracle_pair
        before = _facade_state(sharded)
        new_shard = sharded.add_shard()
        assert len(sharded.shards[new_shard]) == 0
        # Placement is frozen: new inserts do not land on the new shard
        # until a rebalance moves records there.
        record = sharded.insert(dict(SMALL_CAR_ROWS[1]))
        assert sharded.shard_of(record.record_id) != new_shard
        oracle.insert(dict(SMALL_CAR_ROWS[1]))
        sharded.rebalance(tolerance=0.0)
        assert len(sharded.shards[new_shard]) > 0
        assert _facade_state(sharded) == _facade_state(oracle)
        assert before == _facade_state(oracle)[: len(before)]

    def test_moves_emit_ordinary_stamped_deltas(self, oracle_pair):
        _oracle, sharded = oracle_pair
        events = []
        sharded.add_listener(events.append)
        record_id = next(iter(sharded)).record_id
        source = sharded.shard_of(record_id)
        target = (source + 1) % 3
        assert sharded.move_records([record_id], target) == 1
        kinds = [type(event) for event in events]
        assert kinds == [RemoveDelta, InsertDelta]
        assert events[0].shard_index == source
        assert events[1].shard_index == target
        assert events[1].record_id == record_id
        assert sharded.shard_of(record_id) == target

    def test_move_counter_feeds_the_registry(self, oracle_pair):
        _oracle, sharded = oracle_pair
        registry = get_default_registry()
        before = registry.counter("repro_rebalance_moves_total",
                                  table=sharded.name).value
        record_id = next(iter(sharded)).record_id
        target = (sharded.shard_of(record_id) + 1) % 3
        sharded.move_records([record_id], target)
        after = registry.counter("repro_rebalance_moves_total",
                                 table=sharded.name).value
        assert after == before + 1


# ----------------------------------------------------------------------
# the rebalancing storm (acceptance bar)
# ----------------------------------------------------------------------
STORM_MODES = ["thread"] + (
    ["process"] if process_scatter_supported() else []
)


@pytest.mark.parametrize("scatter_mode", STORM_MODES)
def test_randomized_rebalancing_storm_matches_oracle(scatter_mode):
    """A seeded interleave of mutations, splits, merges and rebalances:
    answers stay bit-identical to an unsharded oracle fed the same
    mutations, and deleted records never resurrect from stale caches."""
    rng = random.Random(20260808)
    single = build_system(["cars"], **SYSTEM_SCALE)
    sharded = build_system(
        ["cars"], shards=3, scatter_mode=scatter_mode, **SYSTEM_SCALE
    )
    oracle_table = single.database.table("car_ads")
    storm_table = sharded.database.table("car_ads")

    generator = make_generator(single.domain("cars").dataset, seed=61)
    questions = [generator.generate().text for _ in range(10)]

    def signature(build, question):
        result = build.cqads.answer(question, domain="cars")
        return [
            (a.record.record_id, a.exact, a.score, a.similarity_kind)
            for a in result.partial_answers
        ]

    def both_tables():
        return (oracle_table, storm_table)

    deleted: set[int] = set()
    live_ids = lambda: [r.record_id for r in storm_table]  # noqa: E731

    def op_update_numeric():
        record_id = rng.choice(live_ids())
        bump = float(rng.randint(1, 500))
        for table in both_tables():
            price = table.get(record_id).get("price") or 0
            table.update(record_id, {"price": float(price) + bump})

    def op_update_categorical():
        record_id = rng.choice(live_ids())
        color = rng.choice(["blue", "red", "green", "black"])
        for table in both_tables():
            table.update(record_id, {"color": color})

    def op_insert():
        donor = dict(storm_table.get(rng.choice(live_ids())))
        inserted = storm_table.insert(dict(donor))
        oracle_table.insert(dict(donor), record_id=inserted.record_id)

    def op_delete():
        record_id = rng.choice(live_ids())
        for table in both_tables():
            table.delete(record_id)
        deleted.add(record_id)

    def op_split():
        if storm_table.shard_count >= 6:
            return
        live = [
            index
            for index in range(storm_table.shard_count)
            if index not in storm_table.retired_shards
            and len(storm_table.shards[index]) >= 2
        ]
        if live:
            storm_table.split_shard(rng.choice(live))

    def op_merge():
        live = [
            index
            for index in range(storm_table.shard_count)
            if index not in storm_table.retired_shards
        ]
        if len(live) >= 3:  # always keep two live shards
            source, target = rng.sample(live, 2)
            storm_table.merge_shard(source, target)

    def op_rebalance():
        storm_table.rebalance(
            tolerance=rng.choice([0.0, 0.1]),
            use_latency=rng.random() < 0.3,
        )

    operations = [
        (op_update_numeric, 5),
        (op_update_categorical, 3),
        (op_insert, 3),
        (op_delete, 2),
        (op_split, 2),
        (op_merge, 2),
        (op_rebalance, 2),
    ]
    weighted = [op for op, weight in operations for _ in range(weight)]

    try:
        for round_index in range(12):
            for _ in range(5):
                rng.choice(weighted)()
            # The two stores themselves never drift.
            assert _facade_state(storm_table) == _facade_state(oracle_table)
            # Answers mid-storm: bit-identical, and no resurrection.
            for question in rng.sample(questions, 3):
                expected = signature(single, question)
                actual = signature(sharded, question)
                assert actual == expected, (
                    f"round {round_index} diverged on {question!r}"
                )
                assert not (
                    {record_id for record_id, *_rest in actual} & deleted
                ), f"deleted record resurrected in round {round_index}"

        live = [
            index
            for index in range(storm_table.shard_count)
            if index not in storm_table.retired_shards
        ]
        assert len(live) >= 2
        assert all(
            len(storm_table.shards[index]) == 0
            for index in storm_table.retired_shards
        )
        if scatter_mode == "process":
            pool = storm_table.process_pool()
            assert pool is None or not pool.broken
    finally:
        sharded.close()
        single.close()
