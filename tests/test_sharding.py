"""Sharded scatter-gather execution: facade semantics and parity.

Four layers:

* **facade** — :class:`~repro.shard.table.ShardedTable` satisfies the
  single-table surface bit-for-bit (ids, iteration order, lookups,
  extremes, events, batched bulk notifications) against a plain-table
  oracle loaded with the same rows;
* **parity battery** (the PR's acceptance bar) — 100 generated
  questions per domain across all eight domains, answered through the
  full exact + N-1 relaxation + Rank_Sim path, bit-identical between
  the unsharded build and sharded builds at N in {1, 2, 4};
* **shard-aware caching** — a point mutation invalidates only the
  mutated shard's fragment-cache generation and column store; the
  answer cache still refreshes through the facade's relayed events;
* **concurrency** — scatter-gather answers survive concurrent
  mutation (consistent per-shard snapshots, no half-visible merges),
  and a shard-sized scatter issued from inside ``answer_batch``
  cannot deadlock the service pool (dedicated scatter executor).
"""

from __future__ import annotations

import threading

import pytest

from repro.api.requests import AnswerRequest
from repro.api.service import AnswerService
from repro.api.builder import SystemBuilder
from repro.datagen.questions import make_generator
from repro.datagen.vocab import DOMAIN_NAMES
from repro.db.table import Table
from repro.errors import SchemaError
from repro.qa.sql_generation import evaluate_interpretation
from repro.shard import HashPartitioner, ModuloPartitioner, ShardedTable
from repro.system import build_system

from tests.conftest import SMALL_CAR_ROWS, small_car_schema

QUESTIONS_PER_DOMAIN = 100
PIPELINE_QUESTIONS_PER_DOMAIN = 10
SHARD_COUNTS = (1, 2, 4)

SYSTEM_SCALE = dict(
    ads_per_domain=100,
    sessions_per_domain=120,
    corpus_documents=120,
    train_classifier=False,
)


# ----------------------------------------------------------------------
# partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_hash_partitioner_is_deterministic_and_total(self):
        partitioner = HashPartitioner()
        for shard_count in (1, 2, 4, 7):
            for record_id in range(1, 500):
                shard = partitioner.shard_of(record_id, shard_count)
                assert 0 <= shard < shard_count
                assert shard == partitioner.shard_of(record_id, shard_count)

    def test_hash_partitioner_spreads_sequential_ids(self):
        partitioner = HashPartitioner()
        counts = [0, 0, 0, 0]
        for record_id in range(1, 4001):
            counts[partitioner.shard_of(record_id, 4)] += 1
        # Every shard within 20% of the even split.
        assert all(800 <= count <= 1200 for count in counts), counts

    def test_modulo_partitioner_round_robins(self):
        partitioner = ModuloPartitioner()
        assert [partitioner.shard_of(i, 3) for i in range(6)] == [
            0, 1, 2, 0, 1, 2,
        ]


# ----------------------------------------------------------------------
# the facade vs a plain-table oracle
# ----------------------------------------------------------------------
@pytest.fixture()
def oracle_pair():
    """The same small rows in a plain table and a 3-shard facade."""
    plain = Table(small_car_schema())
    plain.insert_many(SMALL_CAR_ROWS)
    sharded = ShardedTable(small_car_schema(), 3)
    sharded.insert_many(SMALL_CAR_ROWS)
    return plain, sharded


class TestShardedTableFacade:
    def test_global_ids_and_iteration_order(self, oracle_pair):
        plain, sharded = oracle_pair
        assert len(sharded) == len(plain)
        assert [r.record_id for r in sharded] == [r.record_id for r in plain]
        assert sharded.all_ids() == plain.all_ids()
        assert [dict(r) for r in sharded.snapshot()] == [
            dict(r) for r in plain.snapshot()
        ]

    def test_records_actually_partition(self, oracle_pair):
        _plain, sharded = oracle_pair
        sizes = sharded.shard_sizes()
        assert sum(sizes) == len(SMALL_CAR_ROWS)
        assert sum(1 for size in sizes if size > 0) > 1
        for shard_index, shard in enumerate(sharded.shards):
            for record in shard:
                assert sharded.shard_of(record.record_id) == shard_index

    def test_lookups_match_plain_table(self, oracle_pair):
        plain, sharded = oracle_pair
        assert sharded.lookup_equal("make", "honda") == plain.lookup_equal(
            "make", "honda"
        )
        assert sharded.lookup_range(
            "price", 5000, 10000
        ) == plain.lookup_range("price", 5000, 10000)
        assert sharded.lookup_substring("color", "blu") == (
            plain.lookup_substring("color", "blu")
        )
        assert sharded.scan(lambda r: r.get("color") == "blue") == plain.scan(
            lambda r: r.get("color") == "blue"
        )

    def test_extremes_bounds_distinct(self, oracle_pair):
        plain, sharded = oracle_pair
        for maximum in (True, False):
            assert sharded.column_extreme("price", maximum) == (
                plain.column_extreme("price", maximum)
            )
        assert sharded.column_bounds("mileage") == plain.column_bounds("mileage")
        assert sharded.column_bounds("nope") is None
        assert sharded.distinct_values("make") == plain.distinct_values("make")
        with pytest.raises(SchemaError):
            sharded.column_extreme("color", True)

    def test_fetch_and_get_route_through_the_partitioner(self, oracle_pair):
        plain, sharded = oracle_pair
        wanted = [5, 3, 999, 7, 1]
        assert [r.record_id for r in sharded.fetch(wanted)] == [
            r.record_id for r in plain.fetch(wanted)
        ]
        assert sharded.get(4) is sharded.shard_for(4).get(4)
        assert sharded.get(999) is None

    def test_mutations_route_and_aggregate_epochs(self, oracle_pair):
        plain, sharded = oracle_pair
        assert sharded.epoch == plain.epoch == len(SMALL_CAR_ROWS)
        record = sharded.insert({"make": "kia", "model": "rio", "price": 4000})
        assert record.record_id == len(SMALL_CAR_ROWS) + 1
        owner = sharded.shard_for(record.record_id)
        assert owner.get(record.record_id) is record
        sharded.update(record.record_id, {"color": "green"})
        assert record["color"] == "green"
        sharded.delete(record.record_id)
        assert sharded.get(record.record_id) is None
        assert sharded.epoch == len(SMALL_CAR_ROWS) + 3

    def test_explicit_id_collision_raises(self, oracle_pair):
        _plain, sharded = oracle_pair
        with pytest.raises(SchemaError):
            sharded.insert({"make": "kia", "model": "rio"}, record_id=1)

    def test_events_relay_with_facade_table_and_aggregated_epoch(
        self, oracle_pair
    ):
        _plain, sharded = oracle_pair
        events = []
        sharded.add_listener(events.append)
        record = sharded.insert({"make": "kia", "model": "rio"})
        sharded.update(record.record_id, {"color": "gray"})
        sharded.delete(record.record_id)
        assert [e.kind for e in events] == ["insert", "update", "delete"]
        assert all(e.table is sharded for e in events)
        assert [e.epoch for e in events] == [
            len(SMALL_CAR_ROWS) + 1,
            len(SMALL_CAR_ROWS) + 2,
            len(SMALL_CAR_ROWS) + 3,
        ]
        sharded.remove_listener(events.append)

    def test_bulk_operations_notify_once(self, oracle_pair):
        _plain, sharded = oracle_pair
        events = []
        sharded.add_listener(events.append)
        inserted = sharded.insert_many(
            [{"make": "kia", "model": "rio"}, {"make": "kia", "model": "soul"}]
        )
        assert len(events) == 1 and events[0].kind == "insert"
        assert events[0].record_id == inserted[-1].record_id
        removed = sharded.remove_many([r.record_id for r in inserted])
        assert removed == 2
        assert len(events) == 2 and events[1].kind == "delete"

    def test_modulo_partitioner_is_honoured(self):
        sharded = ShardedTable(
            small_car_schema(), 2, partitioner=ModuloPartitioner()
        )
        sharded.insert_many(SMALL_CAR_ROWS)
        assert [len(shard) for shard in sharded.shards] == [4, 4]
        assert all(r.record_id % 2 == 0 for r in sharded.shards[0])

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardedTable(small_car_schema(), 0)


class TestScatterExecutor:
    def test_inline_when_single_worker(self):
        sharded = ShardedTable(small_car_schema(), 3, scatter_workers=1)
        caller = threading.current_thread().name
        names = sharded.map_shards(
            lambda _i, _s: threading.current_thread().name
        )
        assert names == [caller] * 3
        assert sharded._executor is None

    def test_dedicated_threads_when_enabled(self):
        with ShardedTable(small_car_schema(), 3, scatter_workers=3) as sharded:
            names = sharded.map_shards(
                lambda _i, _s: threading.current_thread().name
            )
            assert len(names) == 3
            assert all(name.startswith("shard-car_ads") for name in names)

    def test_close_is_idempotent_and_falls_back_inline(self):
        sharded = ShardedTable(small_car_schema(), 2, scatter_workers=2)
        sharded.map_shards(lambda i, _s: i)
        sharded.close()
        sharded.close()
        assert sharded.map_shards(lambda i, _s: i) == [0, 1]

    def test_built_system_close_releases_scatter_executors(self):
        with build_system(
            ["cars"],
            ads_per_domain=60,
            sessions_per_domain=80,
            corpus_documents=80,
            shards=2,
            scatter_workers=2,
        ) as system:
            table = system.database.table("car_ads")
            table.map_shards(lambda i, _s: i)
            assert table._executor is not None
        assert table._executor is None
        # Still answerable after close — scatters just run inline.
        service = AnswerService(system.cqads)
        result = service.answer(
            AnswerRequest(question="honda", domain="cars")
        )
        assert result.domain == "cars"


# ----------------------------------------------------------------------
# the parity battery (acceptance bar)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded_builds():
    """The same eight-domain recipe at N in {None, 1, 2, 4} shards."""
    builds = {None: build_system(**SYSTEM_SCALE)}
    for shard_count in SHARD_COUNTS:
        builds[shard_count] = build_system(shards=shard_count, **SYSTEM_SCALE)
    return builds


def _answer_signature(answers):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind, dict(a.record))
        for a in answers
    ]


def _result_signature(result):
    return (
        result.domain,
        result.sql,
        result.message,
        _answer_signature(result.answers),
        _answer_signature(result.ranked_pool),
    )


@pytest.mark.parametrize("domain", DOMAIN_NAMES)
def test_scatter_gather_parity_per_domain(sharded_builds, domain):
    """100 questions/domain: exact + relaxed + ranked answers identical
    between the unsharded build and every sharded build."""
    base = sharded_builds[None]
    # Determinism check: every build generated the same records.
    base_rows = [
        (r.record_id, dict(r)) for r in base.database.table(
            base.cqads.domain(domain).schema.table_name
        )
    ]
    for shard_count in SHARD_COUNTS:
        build = sharded_builds[shard_count]
        table = build.database.table(
            build.cqads.domain(domain).schema.table_name
        )
        assert isinstance(table, ShardedTable)
        assert table.shard_count == shard_count
        assert [(r.record_id, dict(r)) for r in table] == base_rows

    generator = make_generator(base.domain(domain).dataset, seed=4021)
    compared = 0
    relaxed = 0
    for _ in range(QUESTIONS_PER_DOMAIN):
        question = generator.generate()
        interpretation = question.interpretation
        reference = None
        for shard_count, build in sharded_builds.items():
            cqads = build.cqads
            exact = evaluate_interpretation(
                cqads.database, cqads.domain(domain), interpretation
            )
            exclude = {record.record_id for record in exact}
            units = cqads.relaxation_units(interpretation)
            partial = (
                cqads.partial_answers(domain, interpretation, exclude)
                if units
                else []
            )
            signature = (
                [(r.record_id, dict(r)) for r in exact],
                _answer_signature(partial),
            )
            if reference is None:
                reference = signature
            else:
                assert signature == reference, (
                    f"{shard_count} shards diverged on "
                    f"{question.kind!r}: {question.text!r}"
                )
        compared += 1
        relaxed += bool(reference[1])
    assert compared == QUESTIONS_PER_DOMAIN
    assert relaxed > 0  # the battery must exercise scatter-gather ranking


@pytest.mark.parametrize("domain", DOMAIN_NAMES)
def test_pipeline_parity_per_domain(sharded_builds, domain):
    """Full service answers (classify skipped via explicit domain)
    bit-identical across shard counts, noise included."""
    base = sharded_builds[None]
    generator = make_generator(
        base.domain(domain).dataset, noise_rate=0.3, seed=97
    )
    questions = [
        generator.generate().text
        for _ in range(PIPELINE_QUESTIONS_PER_DOMAIN)
    ]
    services = {
        count: AnswerService(build.cqads)
        for count, build in sharded_builds.items()
    }
    for text in questions:
        request = AnswerRequest(question=text, domain=domain)
        reference = _result_signature(services[None].answer(request))
        for shard_count in SHARD_COUNTS:
            assert _result_signature(services[shard_count].answer(request)) == (
                reference
            ), f"{shard_count} shards diverged on {text!r}"


# ----------------------------------------------------------------------
# shard-aware caching
# ----------------------------------------------------------------------
@pytest.fixture()
def mutable_sharded_system():
    """A small private 4-shard cars build the cache tests may mutate."""
    return build_system(
        ["cars"],
        ads_per_domain=80,
        sessions_per_domain=100,
        corpus_documents=100,
        shards=4,
    )


CARS_QUESTION = "honda accord blue less than 15000 dollars"


class TestShardAwareCaching:
    def test_point_mutation_keeps_every_shard_fragment_warm(
        self, mutable_sharded_system
    ):
        """Delta maintenance (PR 5): the mutated shard's fragments are
        patched forward, so the repeat question hits all four shards."""
        cqads = mutable_sharded_system.cqads
        fragments = cqads.fragment_cache
        service = mutable_sharded_system.service()
        request = AnswerRequest(question=CARS_QUESTION, domain="cars")
        service.answer(request)
        warm = len(fragments)
        assert warm > 0 and warm % 4 == 0  # one entry per unit per shard
        table = cqads.database.table("car_ads")
        donor = next(iter(table))
        inserted = table.insert(dict(donor))
        assert len(fragments) == warm  # mutated shard patched, not dropped
        hits_before, misses_before = fragments.hits, fragments.misses
        service.answer(request)
        assert fragments.misses == misses_before
        assert fragments.hits == hits_before + warm  # every shard warm
        assert len(fragments) == warm
        table.delete(inserted.record_id)

    def test_point_mutation_keeps_sibling_shard_fragments_rebuild_mode(self):
        """The epoch-sweep oracle (cache_maintenance="rebuild"): only
        the mutated shard's generation dies; siblings stay warm."""
        system = build_system(
            ["cars"],
            ads_per_domain=80,
            sessions_per_domain=100,
            corpus_documents=100,
            shards=4,
            cache_maintenance="rebuild",
        )
        cqads = system.cqads
        fragments = cqads.fragment_cache
        service = system.service()
        request = AnswerRequest(question=CARS_QUESTION, domain="cars")
        service.answer(request)
        warm = len(fragments)
        assert warm > 0 and warm % 4 == 0
        table = cqads.database.table("car_ads")
        donor = next(iter(table))
        table.insert(dict(donor))
        # Only the mutated shard's generation died.
        units = warm // 4
        assert len(fragments) == warm - units
        hits_before, misses_before = fragments.hits, fragments.misses
        service.answer(request)
        assert fragments.misses == misses_before + units  # mutated shard only
        assert fragments.hits == hits_before + 3 * units  # siblings stayed warm
        assert len(fragments) == warm

    def test_point_mutation_patches_one_column_store(
        self, mutable_sharded_system
    ):
        """Delta maintenance: the insert lands as an in-place append on
        the owning shard's store; siblings are untouched."""
        cqads = mutable_sharded_system.cqads
        resources = cqads.context("cars").resources
        table = cqads.database.table("car_ads")
        before = resources.shard_column_stores()
        assert before is not None and len(before) == 4
        donor = next(iter(table))
        inserted = table.insert(dict(donor))
        mutated = table.shard_of(inserted.record_id)
        after = resources.shard_column_stores()
        assert inserted.record_id in after[mutated].row_of
        assert after[mutated].epoch == table.shards[mutated].epoch
        for index in range(4):
            if index != mutated:
                assert after[index] is before[index]
                assert inserted.record_id not in after[index].row_of
        table.delete(inserted.record_id)

    def test_point_mutation_rebuilds_one_column_store_rebuild_mode(self):
        """The rebuild oracle: exactly the mutated shard's store is
        rebuilt from scratch; siblings are reused by identity."""
        system = build_system(
            ["cars"],
            ads_per_domain=80,
            sessions_per_domain=100,
            corpus_documents=100,
            shards=4,
            cache_maintenance="rebuild",
        )
        cqads = system.cqads
        resources = cqads.context("cars").resources
        table = cqads.database.table("car_ads")
        before = resources.shard_column_stores()
        assert before is not None and len(before) == 4
        donor = next(iter(table))
        inserted = table.insert(dict(donor))
        mutated = table.shard_of(inserted.record_id)
        after = resources.shard_column_stores()
        for index in range(4):
            if index == mutated:
                assert after[index] is not before[index]
                assert inserted.record_id in after[index].row_of
            else:
                assert after[index] is before[index]
        table.delete(inserted.record_id)

    def test_answer_cache_invalidates_through_relayed_events(
        self, mutable_sharded_system
    ):
        cqads = mutable_sharded_system.cqads
        service = mutable_sharded_system.service(cache=32)
        reference = AnswerService(cqads)  # cacheless oracle
        request = AnswerRequest(question=CARS_QUESTION, domain="cars")
        table = cqads.database.table("car_ads")

        first = service.answer(request)
        assert _result_signature(service.answer(request)) == (
            _result_signature(first)
        )
        assert service.cache.hits == 1

        inserted = table.insert(
            {"make": "honda", "model": "accord", "color": "blue",
             "price": 14000}
        )
        assert len(service.cache) == 0  # relayed event swept the domain
        fresh = service.answer(request)
        assert inserted.record_id in [
            answer.record.record_id for answer in fresh.answers
        ]
        assert _result_signature(fresh) == _result_signature(
            reference.answer(request)
        )

        table.update(inserted.record_id, {"color": "red", "price": 99000})
        updated = service.answer(request)
        assert inserted.record_id not in [
            a.record.record_id for a in updated.answers if a.exact
        ]
        table.delete(inserted.record_id)
        deleted = service.answer(request)
        assert inserted.record_id not in [
            a.record.record_id for a in deleted.answers
        ]
        assert _result_signature(deleted) == _result_signature(
            reference.answer(request)
        )


# ----------------------------------------------------------------------
# concurrency: mutation storms and the dedicated scatter executor
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_scatter_gather_survives_concurrent_mutation(
        self, mutable_sharded_system
    ):
        """Mid-flight inserts/deletes can neither crash the merge nor
        leave a record half-visible (duplicated or torn) in a result."""
        cqads = mutable_sharded_system.cqads
        service = mutable_sharded_system.service()
        table = cqads.database.table("car_ads")
        donor = dict(next(iter(table)))
        request = AnswerRequest(question=CARS_QUESTION, domain="cars")
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn():
            try:
                while not stop.is_set():
                    record = table.insert(dict(donor))
                    table.update(record.record_id, {"color": "green"})
                    table.delete(record.record_id)
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        writers = [threading.Thread(target=churn) for _ in range(2)]
        for writer in writers:
            writer.start()
        try:
            for _ in range(40):
                result = service.answer(request)
                ids = [a.record.record_id for a in result.ranked_pool]
                assert len(ids) == len(set(ids))  # no double-merged record
                assert result.message is None or result.answers == []
        finally:
            stop.set()
            for writer in writers:
                writer.join(timeout=30)
        assert not errors
        assert not any(writer.is_alive() for writer in writers)

        # Post-quiesce, the scatter path agrees with the legacy oracles
        # over whatever state the storm left behind.
        interpretation = service.answer(request).interpretation
        assert interpretation is not None
        exact = evaluate_interpretation(
            cqads.database, cqads.domain("cars"), interpretation
        )
        exclude = {record.record_id for record in exact}
        scatter = cqads.partial_answers("cars", interpretation, exclude)
        legacy = cqads.partial_answers(
            "cars",
            interpretation,
            exclude,
            strategy="legacy",
            engine="legacy",
        )
        assert _answer_signature(scatter) == _answer_signature(legacy)

    def test_scatter_batch_inside_answer_batch_cannot_deadlock(self):
        """Regression for the shared-pool hazard: scatters run on each
        facade's dedicated executor, so a 4-shard scatter issued from
        every worker of a 2-worker ``answer_batch`` always completes."""
        system = build_system(
            ["cars"],
            ads_per_domain=60,
            sessions_per_domain=80,
            corpus_documents=80,
            shards=4,
            scatter_workers=4,  # force threaded scatters
        )
        table = system.database.table("car_ads")
        assert table.scatter_workers == 4
        generator = make_generator(system.domain("cars").dataset, seed=5)
        requests = [
            AnswerRequest(question=generator.generate().text, domain="cars")
            for _ in range(6)
        ]
        with AnswerService(system.cqads, max_workers=2) as service:
            outcome: list = []

            def run_batch():
                outcome.append(service.answer_batch(requests))

            worker = threading.Thread(target=run_batch, daemon=True)
            worker.start()
            worker.join(timeout=60)
            assert not worker.is_alive(), "answer_batch deadlocked"
        assert len(outcome) == 1 and len(outcome[0]) == len(requests)
        # The scatter executor really engaged (threads were created).
        assert table._executor is not None
        table.close()


# ----------------------------------------------------------------------
# wiring: builder and CLI
# ----------------------------------------------------------------------
class TestWiring:
    def test_system_builder_shards(self):
        system = (
            SystemBuilder()
            .with_domains("cars")
            .ads_per_domain(60)
            .sessions_per_domain(80)
            .corpus_documents(80)
            .shards(2)
            .build()
        )
        assert system.cqads.shards == 2
        table = system.database.table("car_ads")
        assert isinstance(table, ShardedTable)
        assert table.shard_count == 2

    def test_system_builder_shards_none_restores_single_tables(self):
        builder = SystemBuilder().with_domains("cars").ads_per_domain(60)
        builder.sessions_per_domain(80).corpus_documents(80)
        system = builder.shards(2).shards(None).build()
        assert system.cqads.shards is None
        assert isinstance(system.database.table("car_ads"), Table)

    def test_cqads_rejects_non_positive_shards(self):
        from repro.db.database import Database
        from repro.qa.pipeline import CQAds

        with pytest.raises(ValueError):
            CQAds(Database(), shards=0)

    def test_cli_parses_and_forwards_shards(self, monkeypatch):
        import repro.__main__ as cli

        args = cli.build_arg_parser().parse_args(
            ["--shards", "4", "--domain", "cars", "honda"]
        )
        assert args.shards == 4

        calls = {}

        class RecordingBuilder:
            def __getattr__(self, name):
                def record(*call_args, **_kwargs):
                    calls[name] = call_args
                    return self

                return record

        monkeypatch.setattr(cli, "SystemBuilder", RecordingBuilder)
        cli._provision_service(args)
        assert calls["shards"] == (4,)
