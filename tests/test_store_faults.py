"""Randomized crash-recovery: kill the store anywhere, recover, compare.

The durability claim of :mod:`repro.store` is not "snapshots usually
load" — it is a *prefix* contract:

    Whatever fault point the process dies at, recovery reproduces a
    database that is **bit-identical to some prefix of the applied
    row operations** — and under ``fsync="always"`` at least the
    prefix of operations whose calls had returned before the crash.

This file drives that claim with the fault-injection layer
(:mod:`repro.store.faults`).  A dry run counts every mutating fault
point the workload passes (each WAL/snapshot ``write``, ``fsync``,
``rename``, directory fsync); the battery then re-runs the workload
once per (fault kind × point), letting the injected
:class:`CrashPoint`/``OSError`` propagate, recovers from the surviving
files with a *clean* filesystem, and asserts the recovered
fingerprint is a member of the oracle's per-row state timeline.  Over
a hundred distinct schedules run per battery; silent corruption
(:class:`FlipByte`) additionally proves the CRC truncation path, and
``short_reads`` proves the readers' ``_read_exact`` loops.
"""

from __future__ import annotations

import random

import pytest

from repro.api import AnswerRequest, AnswerService
from repro.datagen.questions import make_generator
from repro.datagen.vocab import DOMAIN_NAMES
from repro.db.database import Database
from repro.errors import StorageError
from repro.qa.pipeline import CQAds
from repro.ranking.rank_sim import RankingResources
from repro.shard.partition import ModuloPartitioner
from repro.store import (
    FileSystem,
    WalBackend,
    database_fingerprint,
    recover_database,
)
from repro.store.faults import (
    CrashAfter,
    CrashBefore,
    CrashPoint,
    FaultPlan,
    FaultyFS,
    FaultyFile,
    FlipByte,
    TornWrite,
    Transient,
)
from repro.store.snapshot import list_generations, wal_path
from repro.system import build_system
from tests.conftest import SMALL_CAR_ROWS, small_car_schema

# ----------------------------------------------------------------------
# the workload script
# ----------------------------------------------------------------------
# Op 0 is create_table; ids are minted 1.. by the inserts, so the later
# ops reference exactly the ids alive at that step (insert -> 1;
# insert_many -> 2,3,4; insert_many -> 5,6; inserts -> 7, 8).
OPS = [
    ("insert", SMALL_CAR_ROWS[0]),
    ("insert_many", [SMALL_CAR_ROWS[1], SMALL_CAR_ROWS[2], SMALL_CAR_ROWS[3]]),
    ("update", (2, {"price": 9100})),
    ("update", (1, {})),  # no-op update: an epoch-only frame
    ("delete", 3),
    ("insert_many", [SMALL_CAR_ROWS[4], SMALL_CAR_ROWS[5]]),
    ("remove_many", [2, 5]),
    ("update", (6, {"color": "green", "price": 100})),
    ("insert", SMALL_CAR_ROWS[6]),
    ("insert", SMALL_CAR_ROWS[7]),
]

# Small enough that the workload crosses several snapshot rotations, so
# schedules land on snapshot writes, renames and directory fsyncs too.
SNAPSHOT_EVERY = 6


def run_workload(database, completed, *, shards=None, partitioner=None):
    """Apply the script; append each op's number once it returns."""
    table = database.create_table(
        small_car_schema(), shards=shards, partitioner=partitioner
    )
    completed.append(0)
    for number, (kind, payload) in enumerate(OPS, start=1):
        if kind == "insert":
            table.insert(dict(payload))
        elif kind == "insert_many":
            table.insert_many([dict(row) for row in payload])
        elif kind == "update":
            table.update(payload[0], dict(payload[1]))
        elif kind == "delete":
            table.delete(payload)
        elif kind == "remove_many":
            table.remove_many(list(payload))
        completed.append(number)


def oracle_timeline(*, shards=None, partitioner=None):
    """Fingerprints of every crash-consistent state, in order.

    Batches are decomposed per row: a crash can land between any two
    WAL frames, and each frame of a batch is one row op.  Returns the
    timeline plus ``ends[k]`` = timeline index of op *k*'s completion.
    """
    database = Database()
    timeline = [database_fingerprint(database)]
    table = database.create_table(
        small_car_schema(), shards=shards, partitioner=partitioner
    )
    timeline.append(database_fingerprint(database))
    ends = [len(timeline) - 1]
    for kind, payload in OPS:
        if kind == "insert":
            table.insert(dict(payload))
            timeline.append(database_fingerprint(database))
        elif kind == "insert_many":
            for row in payload:
                table.insert(dict(row))
                timeline.append(database_fingerprint(database))
        elif kind == "update":
            table.update(payload[0], dict(payload[1]))
            timeline.append(database_fingerprint(database))
        elif kind == "delete":
            table.delete(payload)
            timeline.append(database_fingerprint(database))
        elif kind == "remove_many":
            for record_id in payload:
                table.delete(record_id)
                timeline.append(database_fingerprint(database))
        ends.append(len(timeline) - 1)
    # Epochs are monotonic and fingerprinted, so no state repeats —
    # membership pins the recovered database to exactly one prefix.
    assert len(set(timeline)) == len(timeline)
    return timeline, ends


def run_trial(directory, fault_index, fault, fsync, *, shards=None,
              partitioner=None, short_reads=False):
    """One faulted workload run.  Returns (completed ops, crash or None)."""
    schedule = {fault_index: fault} if fault_index is not None else None
    plan = FaultPlan(schedule, short_reads=short_reads)
    backend = WalBackend(
        directory,
        fsync=fsync,
        snapshot_every=SNAPSHOT_EVERY,
        retry_attempts=2,
        retry_backoff_s=0.0,
        fs=FaultyFS(FileSystem(), plan),
    )
    database = Database(storage=backend)
    completed: list[int] = []
    try:
        run_workload(
            database, completed, shards=shards, partitioner=partitioner
        )
        backend.close()
    except (CrashPoint, OSError, StorageError) as crash:
        # The process "died": abandon everything mid-flight.  Files are
        # unbuffered, so the directory holds exactly the pre-fault bytes.
        return completed, crash, plan
    return completed, None, plan


def count_fault_points(directory, fsync, **workload_options) -> int:
    """A no-fault dry run; the plan cursor ends at the point count."""
    completed, crash, plan = run_trial(
        directory, None, None, fsync, **workload_options
    )
    assert crash is None and completed[-1] == len(OPS)
    return plan.cursor


def spread(total: int, count: int) -> list[int]:
    step = max(1, total // count)
    return list(range(1, total + 1, step))[:count]


FAULT_KINDS = [
    CrashBefore(),
    CrashAfter(),
    TornWrite(keep=3),
    FlipByte(offset=5),
    Transient(),
]


# ----------------------------------------------------------------------
# the battery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fsync", ["always", "interval"])
def test_crash_recovery_at_every_kind_of_fault_point(tmp_path, fsync):
    timeline, ends = oracle_timeline()
    index_of = {fp: i for i, fp in enumerate(timeline)}
    total = count_fault_points(str(tmp_path / "dry"), fsync)
    assert total > 20  # the workload crosses plenty of durability points
    positions = spread(total, 12)
    schedules = 0
    for kind_number, fault in enumerate(FAULT_KINDS):
        for position in positions:
            directory = str(tmp_path / f"t{kind_number}-{position}")
            completed, crash, plan = run_trial(
                directory, position, fault, fsync
            )
            assert plan.fired, f"fault #{position} never reached"
            recovered, report = recover_database(directory)
            fp = database_fingerprint(recovered)
            assert fp in index_of, (
                f"{fault} at point #{position} (fsync={fsync}): recovered "
                f"state matches no crash-consistent prefix "
                f"(crash={crash!r}, report={report.as_dict()})"
            )
            if crash is None and not isinstance(fault, FlipByte):
                # Absorbed fault (a retried transient): nothing may be
                # lost at all.
                assert fp == timeline[-1]
            if (
                fsync == "always"
                and isinstance(fault, (CrashBefore, CrashAfter, TornWrite))
            ):
                # Every completed call had fsynced its frames; recovery
                # may include a partially-applied next op, never less.
                floor = ends[completed[-1]] if completed else 0
                assert index_of[fp] >= floor, (
                    f"{fault} at #{position}: ops through "
                    f"{completed[-1] if completed else None} had returned "
                    f"under fsync=always but recovery lost them"
                )
            schedules += 1
    assert schedules >= 50  # x2 fsync parametrization: >= 100 schedules


def test_crash_recovery_sharded(tmp_path):
    """The same prefix contract holds for sharded tables (whose frames
    carry shard routing via the persisted partitioner spec)."""
    sharding = dict(shards=2, partitioner=ModuloPartitioner())
    timeline, _ = oracle_timeline(**sharding)
    total = count_fault_points(str(tmp_path / "dry"), "interval", **sharding)
    schedules = 0
    for kind_number, fault in enumerate(
        [CrashBefore(), CrashAfter(), TornWrite(keep=5)]
    ):
        for position in spread(total, 8):
            directory = str(tmp_path / f"s{kind_number}-{position}")
            completed, crash, plan = run_trial(
                directory, position, fault, "interval", **sharding
            )
            recovered, _ = recover_database(directory)
            fingerprint = database_fingerprint(recovered)
            assert fingerprint in timeline
            if crash is None:
                # A TornWrite scheduled onto an fsync/rename point has
                # no effect there; the run survives and loses nothing.
                assert fingerprint == timeline[-1]
            schedules += 1
    assert schedules >= 24


def test_recovery_survives_short_reads(tmp_path):
    """Recovery itself re-reads snapshots and WALs; a filesystem that
    returns half of every read must change nothing."""
    directory = str(tmp_path / "store")
    completed, crash, _ = run_trial(directory, None, None, "interval")
    assert crash is None
    timeline, ends = oracle_timeline()
    short_fs = FaultyFS(FileSystem(), FaultPlan(short_reads=True))
    recovered, report = recover_database(directory, fs=short_fs)
    assert database_fingerprint(recovered) == timeline[ends[len(OPS)]]
    assert report.truncated == {}


def test_workload_crashes_under_short_reads_still_recover(tmp_path):
    """Short reads during the *faulted* run (snapshot verify re-reads)
    compose with crashes."""
    timeline, _ = oracle_timeline()
    total = count_fault_points(
        str(tmp_path / "dry"), "interval", short_reads=True
    )
    for position in spread(total, 6):
        directory = str(tmp_path / f"r{position}")
        completed, crash, plan = run_trial(
            directory, position, CrashAfter(), "interval", short_reads=True
        )
        assert crash is not None
        recovered, _ = recover_database(directory)
        assert database_fingerprint(recovered) in timeline


# ----------------------------------------------------------------------
# the fault primitives themselves
# ----------------------------------------------------------------------
class TestFaultPrimitives:
    def test_plan_counts_points_and_records_fired(self, tmp_path):
        plan = FaultPlan({2: CrashAfter()})
        fs = FaultyFS(FileSystem(), plan)
        handle = fs.open_write(str(tmp_path / "f"))
        handle.write(b"one")
        with pytest.raises(CrashPoint) as info:
            handle.write(b"two")
        handle.close()
        assert plan.cursor == 2
        assert plan.fired == [(2, "snap.write", CrashAfter())]
        assert info.value.point == "snap.write" and info.value.index == 2
        # CrashAfter let the bytes land before dying.
        assert open(str(tmp_path / "f"), "rb").read() == b"onetwo"

    def test_torn_write_keeps_a_prefix(self, tmp_path):
        plan = FaultPlan({1: TornWrite(keep=2)})
        handle = FaultyFS(FileSystem(), plan).open_write(str(tmp_path / "f"))
        with pytest.raises(CrashPoint):
            handle.write(b"abcdef")
        handle.close()
        assert open(str(tmp_path / "f"), "rb").read() == b"ab"

    def test_crash_before_loses_the_write(self, tmp_path):
        plan = FaultPlan({1: CrashBefore()})
        handle = FaultyFS(FileSystem(), plan).open_write(str(tmp_path / "f"))
        with pytest.raises(CrashPoint):
            handle.write(b"abcdef")
        handle.close()
        assert open(str(tmp_path / "f"), "rb").read() == b""

    def test_flip_byte_is_silent(self, tmp_path):
        plan = FaultPlan({1: FlipByte(offset=1)})
        handle = FaultyFS(FileSystem(), plan).open_write(str(tmp_path / "f"))
        assert handle.write(b"abc") == 3  # no exception: latent corruption
        handle.close()
        assert open(str(tmp_path / "f"), "rb").read() == bytes(
            [ord("a"), ord("b") ^ 0xFF, ord("c")]
        )

    def test_short_reads_halve_but_never_lie(self, tmp_path):
        path = str(tmp_path / "f")
        with open(path, "wb") as handle:
            handle.write(b"0123456789")
        plan = FaultPlan(short_reads=True)
        faulty = FaultyFS(FileSystem(), plan).open_read(path)
        assert faulty.read(8) == b"0123"  # halved...
        rest = b""
        while True:
            chunk = faulty.read(8)
            if not chunk:
                break
            rest += chunk
        faulty.close()
        assert rest == b"456789"  # ...but looping drains everything

    def test_faulty_file_delegates_bookkeeping(self, tmp_path):
        path = str(tmp_path / "f")
        plan = FaultPlan()
        with FaultyFS(FileSystem(), plan).open_write(path) as handle:
            assert isinstance(handle, FaultyFile)
            handle.write(b"abcdef")
            assert handle.tell() == 6
            handle.seek(2)
            handle.truncate()
            assert handle.fileno() > 0
            assert not handle.closed
        assert handle.closed
        assert open(path, "rb").read() == b"ab"


# ----------------------------------------------------------------------
# the full stack: 8 domains, crash, recover, answer
# ----------------------------------------------------------------------
def _answer_signature(answers):
    return [
        (a.record.record_id, a.exact, a.score, a.similarity_kind)
        for a in answers
    ]


def _result_signature(result):
    return (
        result.domain,
        result.sql,
        result.message,
        _answer_signature(result.answers),
        _answer_signature(result.ranked_pool),
    )


QUESTIONS_PER_DOMAIN = 3


def test_eight_domain_answers_survive_crash_recovery(tmp_path):
    """Provision all eight paper domains into a WAL-backed database,
    churn every table, tear the WAL tail, recover — the recovered
    database must be bit-identical and a pipeline rebuilt over it must
    produce byte-for-byte the same answers as the uninterrupted one."""
    directory = str(tmp_path / "store")
    system = build_system(
        ads_per_domain=30,
        sessions_per_domain=40,
        corpus_documents=60,
        train_classifier=False,
        storage=WalBackend(directory, fsync="off", snapshot_every=150),
    )
    rng = random.Random(17)
    for name in DOMAIN_NAMES:
        table = system.database.table(
            system.domain(name).domain.schema.table_name
        )
        ids = sorted(table.all_ids())
        donor = dict(table.get(rng.choice(ids)))
        table.insert(donor)
        numeric = [c.name for c in table.schema.numeric_columns]
        if numeric:
            table.update(rng.choice(ids), {rng.choice(numeric): 1234})
        table.delete(rng.choice(ids))

    service = AnswerService(system.cqads)
    questions: dict[str, list[str]] = {}
    live: dict[str, list] = {}
    for name in DOMAIN_NAMES:
        generator = make_generator(system.domain(name).dataset, seed=401)
        questions[name] = [
            generator.generate().text for _ in range(QUESTIONS_PER_DOMAIN)
        ]
        live[name] = [
            _result_signature(
                service.answer(AnswerRequest(question=text, domain=name))
            )
            for text in questions[name]
        ]
    service.close()
    live_fingerprint = database_fingerprint(system.database)
    system.close()

    _, wals = list_generations(FileSystem(), directory)
    with open(wal_path(directory, wals[-1]), "ab") as handle:
        handle.write(b"\x00\x00\x00\x0bnot a frame")
    recovered, report = recover_database(directory)
    assert database_fingerprint(recovered) == live_fingerprint
    assert report.truncated  # the garbage tail was found and cut
    assert report.tables == len(DOMAIN_NAMES)

    # Rebuild the answering stack over the *recovered* substrate,
    # reusing the immutable per-domain artifacts (matrices, vocab).
    pipeline = CQAds(recovered)
    for name in DOMAIN_NAMES:
        built = system.domains[name]
        pipeline.add_domain(
            built.domain,
            resources=RankingResources(
                ti_matrix=built.resources.ti_matrix,
                ws_matrix=built.resources.ws_matrix,
                value_ranges=dict(built.resources.value_ranges),
                type_i_columns=list(built.resources.type_i_columns),
                product_keys=list(built.resources.product_keys),
            ),
        )
    rebuilt = AnswerService(pipeline)
    try:
        for name in DOMAIN_NAMES:
            after = [
                _result_signature(
                    rebuilt.answer(AnswerRequest(question=text, domain=name))
                )
                for text in questions[name]
            ]
            assert after == live[name], f"answer drift in domain {name!r}"
    finally:
        rebuilt.close()
