"""Tests for interpretation -> SQL rendering and evaluation order."""

from __future__ import annotations


from repro.db.schema import AttributeType
from repro.db.sql.parser import parse_select
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
    Interpretation,
    Superlative,
)
from repro.qa.domain import AdsDomain
from repro.qa.sql_generation import (
    apply_superlative,
    evaluate_interpretation,
    generate_sql,
)

TI = AttributeType.TYPE_I
TII = AttributeType.TYPE_II
TIII = AttributeType.TYPE_III


def make_interpretation():
    return Interpretation(
        tree=ConditionGroup(
            BooleanOperator.AND,
            [
                Condition("price", TIII, ConditionOp.LT, 15000),
                Condition("color", TII, ConditionOp.EQ, "blue"),
                Condition("make", TI, ConditionOp.EQ, "honda"),
            ],
        )
    )


class TestGenerateSQL:
    def test_example7_subquery_shape(self):
        statement = generate_sql("car_ads", make_interpretation())
        sql = statement.to_sql()
        assert sql.count("record_id IN (SELECT record_id FROM car_ads") == 3
        # round-trips through the parser
        assert parse_select(sql).to_sql() == sql

    def test_evaluation_order_type_i_first(self):
        statement = generate_sql("car_ads", make_interpretation(), ordered=True)
        sql = statement.to_sql()
        assert sql.index("make") < sql.index("color") < sql.index("price")

    def test_unordered_preserves_question_order(self):
        statement = generate_sql(
            "car_ads", make_interpretation(), ordered=False
        )
        sql = statement.to_sql()
        assert sql.index("price") < sql.index("color") < sql.index("make")

    def test_direct_style(self):
        statement = generate_sql(
            "car_ads", make_interpretation(), subquery_style=False
        )
        sql = statement.to_sql()
        assert "IN (SELECT" not in sql
        assert "make = 'honda'" in sql

    def test_limit_rendered(self):
        statement = generate_sql("car_ads", make_interpretation(), limit=30)
        assert statement.to_sql().endswith("LIMIT 30")

    def test_superlative_renders_order_by(self):
        interpretation = make_interpretation()
        interpretation.superlative = Superlative("price", maximum=False)
        sql = generate_sql("car_ads", interpretation).to_sql()
        assert "ORDER BY price" in sql

    def test_boolean_tree_renders_directly(self):
        tree = ConditionGroup(
            BooleanOperator.OR,
            [
                Condition("make", TI, ConditionOp.EQ, "honda"),
                Condition("make", TI, ConditionOp.EQ, "toyota"),
            ],
        )
        sql = generate_sql("car_ads", Interpretation(tree=tree)).to_sql()
        assert "OR" in sql
        assert "IN (SELECT" not in sql

    def test_negation_renders_not(self):
        tree = Condition("color", TII, ConditionOp.EQ, "blue", negated=True)
        sql = generate_sql("car_ads", Interpretation(tree=tree)).to_sql()
        assert "NOT" in sql

    def test_between_and_ne(self):
        tree = ConditionGroup(
            BooleanOperator.AND,
            [
                Condition("price", TIII, ConditionOp.BETWEEN, (2000, 7000)),
                Condition("year", TIII, ConditionOp.NE, 2001),
            ],
        )
        sql = generate_sql("car_ads", Interpretation(tree=tree)).to_sql()
        assert "BETWEEN 2000.0 AND 7000.0" in sql
        assert "year != 2001" in sql


class TestEvaluate:
    def test_conjunction(self, car_database):
        domain = AdsDomain.from_table("cars", car_database.table("car_ads"))
        records = evaluate_interpretation(
            car_database, domain, make_interpretation()
        )
        assert all(
            r["make"] == "honda" and r["color"] == "blue" and r["price"] < 15000
            for r in records
        )
        assert len(records) == 2  # blue accord (9000) and blue civic (11000)

    def test_superlative_last(self, car_database):
        """The paper's "cheapest Honda" example: the superlative must
        apply after the make filter, not before."""
        domain = AdsDomain.from_table("cars", car_database.table("car_ads"))
        interpretation = Interpretation(
            tree=Condition("make", TI, ConditionOp.EQ, "honda"),
            superlative=Superlative("price", maximum=False),
        )
        records = evaluate_interpretation(car_database, domain, interpretation)
        assert len(records) == 1
        assert records[0]["make"] == "honda"
        assert records[0]["price"] == 5000  # cheapest honda, not cheapest car

    def test_limit(self, car_database):
        domain = AdsDomain.from_table("cars", car_database.table("car_ads"))
        records = evaluate_interpretation(
            car_database, domain, Interpretation(tree=None), limit=3
        )
        assert len(records) == 3

    def test_empty_interpretation_returns_all(self, car_database):
        domain = AdsDomain.from_table("cars", car_database.table("car_ads"))
        records = evaluate_interpretation(
            car_database, domain, Interpretation(tree=None)
        )
        assert len(records) == 8


class TestApplySuperlative:
    def test_min_keeps_ties(self, car_table):
        records = list(car_table)
        cheapest = apply_superlative(records, Superlative("price", False))
        assert [r["price"] for r in cheapest] == [3000]

    def test_max(self, car_table):
        records = list(car_table)
        priciest = apply_superlative(records, Superlative("price", True))
        assert [r["price"] for r in priciest] == [22000]

    def test_empty_input(self):
        assert apply_superlative([], Superlative("price", False)) == []

    def test_all_null_column(self, car_table):
        record = car_table.insert({"make": "kia", "model": "rio"})
        result = apply_superlative([record], Superlative("price", False))
        assert result == []
