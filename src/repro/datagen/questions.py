"""Natural-language question generation with machine-checkable ground
truth — the synthetic stand-in for the paper's 650 Facebook survey
questions (Section 5.1).

Every generated question carries:

* the surface text a user would type (with optional noise:
  misspellings, dropped spaces, shorthand — Section 4.2's phenomena);
* the *intended* :class:`~repro.qa.conditions.Interpretation` (what the
  user meant), built directly from structured conditions, never from
  the text;
* bookkeeping: the source record, the question kind, the Boolean
  category (none/implicit/explicit), and which noise channels fired.

Question kinds mirror the phenomena the surveys solicited:

=================  ====================================================
``simple``         conjunctive Type I + Type II criteria
``boundary``       adds a Type III range ("less than 15000 dollars")
``between``        a two-bound range
``superlative``    "cheapest …", "newest …"
``incomplete``     a bare number with its attribute omitted
``negation``       implicit Boolean: "… not red", "… except manual"
``mutex``          implicit Boolean: two same-attribute values
``range_combo``    implicit Boolean: "below X and not less than Y"
``explicit_or``    explicit Boolean: "A or B"
``explicit_and``   explicit Boolean: values joined with "and"
=================  ====================================================

Ground truth answer sets are *not* stored here; the evaluation harness
computes them by executing the intended interpretation against the
database, so generator and pipeline share one semantics.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.datagen.ads import DomainDataset
from repro.datagen.noise import drop_space, misspell, number_to_shorthand, to_shorthand
from repro.db.schema import AttributeType, Column
from repro.db.table import Record
from repro.errors import DataGenerationError
from repro.qa.conditions import (
    BooleanOperator,
    Condition,
    ConditionGroup,
    ConditionOp,
    Interpretation,
    Superlative,
)

__all__ = ["GeneratedQuestion", "QuestionGenerator", "QUESTION_KINDS"]

QUESTION_KINDS = (
    "simple",
    "boundary",
    "between",
    "superlative",
    "incomplete",
    "negation",
    "mutex",
    "range_combo",
    "explicit_or",
    "explicit_and",
    "explicit_complex",
)

_IMPLICIT_KINDS = {"negation", "mutex", "range_combo"}
_EXPLICIT_KINDS = {"explicit_or", "explicit_and", "explicit_complex"}

_PREFIXES = (
    "",
    "do you have a",
    "i want a",
    "looking for a",
    "find",
    "show me",
    "any",
)


@dataclass
class GeneratedQuestion:
    """One synthetic question with its intended semantics."""

    text: str
    domain: str
    interpretation: Interpretation
    kind: str
    source_record: Record | None = None
    noise: tuple[str, ...] = ()
    clean_text: str = ""

    @property
    def boolean_kind(self) -> str:
        if self.kind in _IMPLICIT_KINDS:
            return "implicit"
        if self.kind in _EXPLICIT_KINDS:
            return "explicit"
        return "none"


class QuestionGenerator:
    """Generates questions for one domain dataset.

    Parameters
    ----------
    dataset:
        The domain's generated ads (questions are anchored on real
        records so most are satisfiable).
    rng:
        Seeded RNG; every choice flows through it.
    noise_rate:
        Per-question probability of applying each noise channel.
    """

    def __init__(
        self,
        dataset: DomainDataset,
        rng: random.Random,
        noise_rate: float = 0.0,
    ) -> None:
        self.dataset = dataset
        self.spec = dataset.spec
        self.rng = rng
        self.noise_rate = noise_rate

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, kind: str | None = None) -> GeneratedQuestion:
        """Generate one question of *kind* (random kind when None)."""
        if kind is None:
            kind = self.rng.choice(QUESTION_KINDS)
        builder = getattr(self, f"_build_{kind}", None)
        if builder is None:
            raise DataGenerationError(f"unknown question kind {kind!r}")
        question: GeneratedQuestion = builder()
        question.clean_text = question.text
        if self.noise_rate > 0:
            question = self._apply_noise(question)
        return question

    def generate_many(
        self, count: int, kinds: tuple[str, ...] | None = None
    ) -> list[GeneratedQuestion]:
        kinds = kinds or QUESTION_KINDS
        return [self.generate(self.rng.choice(kinds)) for _ in range(count)]

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def _record(self) -> Record:
        return self.rng.choice(self.dataset.records)

    def _identity_conditions(self, record: Record) -> list[Condition]:
        return [
            Condition(
                column=column.name,
                attribute_type=AttributeType.TYPE_I,
                op=ConditionOp.EQ,
                value=str(record[column.name]),
            )
            for column in self.spec.schema.type_i_columns
        ]

    def _identity_phrase(self, record: Record) -> str:
        return " ".join(
            str(record[column.name])
            for column in self.spec.schema.type_i_columns
        )

    def _tii_column_with_value(self, record: Record) -> tuple[Column, str] | None:
        columns = [
            column
            for column in self.spec.schema.type_ii_columns
            if record.get(column.name) is not None
        ]
        if not columns:
            return None
        column = self.rng.choice(columns)
        return column, str(record[column.name])

    def _tii_condition(self, column: Column, value: str, negated: bool = False) -> Condition:
        return Condition(
            column=column.name,
            attribute_type=AttributeType.TYPE_II,
            op=ConditionOp.EQ,
            value=value,
            negated=negated,
        )

    def _price_like_column(self) -> Column:
        for column in self.spec.schema.numeric_columns:
            if any(unit in ("$", "usd", "dollars") for unit in column.unit_words):
                return column
        return self.spec.schema.numeric_columns[0]

    def _nice_bound_above(self, value: float) -> float:
        """A round number strictly above *value* (so the record matches)."""
        for step in (100, 500, 1000, 5000):
            bound = (int(value) // step + 1) * step
            if bound > value:
                return float(bound)
        return float(int(value) + 1)

    def _nice_bound_below(self, value: float) -> float:
        step = 100 if value < 5000 else 1000
        bound = (int(value) // step) * step
        if bound >= value:
            bound -= step
        return float(max(bound, 0))

    def _unit_phrase(self, column: Column, value: float) -> str:
        rendered = number_to_shorthand(value, self.rng)
        if not column.unit_words:
            return f"{column.name.replace('_', ' ')} {rendered}"
        unit = self.rng.choice(column.unit_words)
        if unit == "$":
            return f"${rendered}"
        return f"{rendered} {unit}"

    def _prefix(self) -> str:
        return self.rng.choice(_PREFIXES)

    def _compose(self, *parts: str) -> str:
        return " ".join(part for part in parts if part).strip()

    @staticmethod
    def _conjunction(conditions: list[Condition]) -> Interpretation:
        if len(conditions) == 1:
            return Interpretation(tree=conditions[0])
        return Interpretation(
            tree=ConditionGroup(BooleanOperator.AND, list(conditions))
        )

    # ------------------------------------------------------------------
    # kind builders
    # ------------------------------------------------------------------
    def _build_simple(self) -> GeneratedQuestion:
        record = self._record()
        conditions = self._identity_conditions(record)
        phrase_parts: list[str] = []
        tii = self._tii_column_with_value(record)
        if tii is not None:
            column, value = tii
            conditions.append(self._tii_condition(column, value))
            phrase_parts.append(value)
        phrase_parts.append(self._identity_phrase(record))
        text = self._compose(self._prefix(), *phrase_parts)
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=self._conjunction(conditions),
            kind="simple",
            source_record=record,
        )

    def _build_boundary(self) -> GeneratedQuestion:
        record = self._record()
        conditions = self._identity_conditions(record)
        column = self._price_like_column()
        value = float(record[column.name])
        less_than = self.rng.random() < 0.7
        if less_than:
            bound = self._nice_bound_above(value)
            op = ConditionOp.LT
            phrase = self.rng.choice(("less than", "under", "below", "at most"))
        else:
            bound = self._nice_bound_below(value)
            op = ConditionOp.GT
            phrase = self.rng.choice(("more than", "over", "above"))
        conditions.append(
            Condition(
                column=column.name,
                attribute_type=AttributeType.TYPE_III,
                op=op,
                value=bound,
            )
        )
        text = self._compose(
            self._prefix(),
            self._identity_phrase(record),
            phrase,
            self._unit_phrase(column, bound),
        )
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=self._conjunction(conditions),
            kind="boundary",
            source_record=record,
        )

    def _build_between(self) -> GeneratedQuestion:
        record = self._record()
        conditions = self._identity_conditions(record)
        column = self._price_like_column()
        value = float(record[column.name])
        low = self._nice_bound_below(value)
        high = self._nice_bound_above(value)
        conditions.append(
            Condition(
                column=column.name,
                attribute_type=AttributeType.TYPE_III,
                op=ConditionOp.BETWEEN,
                value=(low, high),
            )
        )
        low_text = number_to_shorthand(low, self.rng)
        text = self._compose(
            self._prefix(),
            self._identity_phrase(record),
            "between",
            low_text,
            "and",
            self._unit_phrase(column, high),
        )
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=self._conjunction(conditions),
            kind="between",
            source_record=record,
        )

    def _build_superlative(self) -> GeneratedQuestion:
        record = self._record()
        conditions = self._identity_conditions(record)
        price = self._price_like_column()
        year_ok = self.spec.schema.has_column("year")
        choices = [("cheapest", price.name, False), ("most expensive", price.name, True)]
        if year_ok:
            choices.extend([("newest", "year", True), ("oldest", "year", False)])
        word, column_name, maximum = self.rng.choice(choices)
        interpretation = self._conjunction(conditions)
        interpretation.superlative = Superlative(column=column_name, maximum=maximum)
        text = self._compose(word, self._identity_phrase(record))
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=interpretation,
            kind="superlative",
            source_record=record,
        )

    def _build_incomplete(self) -> GeneratedQuestion:
        """A bare number: the user *means* one attribute but names none."""
        record = self._record()
        conditions = self._identity_conditions(record)
        numeric = [
            column
            for column in self.spec.schema.numeric_columns
            if record.get(column.name) is not None
        ]
        column = self.rng.choice(numeric)
        value = float(record[column.name])
        # Users type round numbers; snap to one that still matches the
        # intended attribute as an upper bound.
        bound = self._nice_bound_above(value)
        conditions.append(
            Condition(
                column=column.name,
                attribute_type=AttributeType.TYPE_III,
                op=ConditionOp.LT,
                value=bound,
            )
        )
        text = self._compose(
            self._identity_phrase(record),
            "less than",
            number_to_shorthand(bound, self.rng),
        )
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=self._conjunction(conditions),
            kind="incomplete",
            source_record=record,
        )

    def _build_negation(self) -> GeneratedQuestion:
        record = self._record()
        conditions = self._identity_conditions(record)
        tii = self._tii_column_with_value(record)
        if tii is None:
            return self._build_simple()
        column, actual = tii
        others = [
            value
            for value in self.spec.type_ii_values[column.name]
            if value != actual
        ]
        if not others:
            return self._build_simple()
        excluded = self.rng.choice(others)
        conditions.append(self._tii_condition(column, excluded, negated=True))
        negation_word = self.rng.choice(("not", "no", "without", "except"))
        text = self._compose(
            self._prefix(),
            self._identity_phrase(record),
            negation_word,
            excluded,
        )
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=self._conjunction(conditions),
            kind="negation",
            source_record=record,
        )

    def _build_mutex(self) -> GeneratedQuestion:
        """Two same-attribute values with no OR: "blue red toyota"."""
        record = self._record()
        identity = self._identity_conditions(record)
        tii = self._tii_column_with_value(record)
        if tii is None:
            return self._build_simple()
        column, first = tii
        others = [
            value
            for value in self.spec.type_ii_values[column.name]
            if value != first
        ]
        if not others:
            return self._build_simple()
        second = self.rng.choice(others)
        alternatives = ConditionGroup(
            BooleanOperator.OR,
            [
                self._tii_condition(column, first),
                self._tii_condition(column, second),
            ],
        )
        tree = ConditionGroup(BooleanOperator.AND, [*identity, alternatives])
        text = self._compose(first, second, self._identity_phrase(record))
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=Interpretation(tree=tree),
            kind="mutex",
            source_record=record,
        )

    def _build_range_combo(self) -> GeneratedQuestion:
        """Implicit range: "below $7000 and not less than $2000"."""
        record = self._record()
        conditions = self._identity_conditions(record)
        column = self._price_like_column()
        value = float(record[column.name])
        high = self._nice_bound_above(value)
        low = self._nice_bound_below(value)
        conditions.append(
            Condition(
                column=column.name,
                attribute_type=AttributeType.TYPE_III,
                op=ConditionOp.GE,
                value=low,
            )
        )
        conditions.append(
            Condition(
                column=column.name,
                attribute_type=AttributeType.TYPE_III,
                op=ConditionOp.LT,
                value=high,
            )
        )
        text = self._compose(
            self._identity_phrase(record),
            "below",
            self._unit_phrase(column, high),
            "and not less than",
            number_to_shorthand(low, self.rng),
        )
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=self._conjunction(conditions),
            kind="range_combo",
            source_record=record,
        )

    def _build_explicit_or(self) -> GeneratedQuestion:
        record_a = self._record()
        record_b = self._record()
        attempts = 0
        while (
            self._identity_phrase(record_b) == self._identity_phrase(record_a)
            and attempts < 10
        ):
            record_b = self._record()
            attempts += 1
        group_a = self._conjunction(self._identity_conditions(record_a)).tree
        group_b = self._conjunction(self._identity_conditions(record_b)).tree
        assert group_a is not None and group_b is not None
        tree = ConditionGroup(BooleanOperator.OR, [group_a, group_b])
        text = self._compose(
            self._identity_phrase(record_a), "or", self._identity_phrase(record_b)
        )
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=Interpretation(tree=tree),
            kind="explicit_or",
            source_record=record_a,
        )

    def _build_explicit_and(self) -> GeneratedQuestion:
        record = self._record()
        conditions = self._identity_conditions(record)
        with_values = [
            (column, str(record[column.name]))
            for column in self.spec.schema.type_ii_columns
            if record.get(column.name) is not None
        ]
        if len(with_values) < 2:
            return self._build_simple()
        (col_a, val_a), (col_b, val_b) = self.rng.sample(with_values, k=2)
        conditions.append(self._tii_condition(col_a, val_a))
        conditions.append(self._tii_condition(col_b, val_b))
        text = self._compose(
            val_a, "and", val_b, self._identity_phrase(record)
        )
        return GeneratedQuestion(
            text=text,
            domain=self.spec.name,
            interpretation=self._conjunction(conditions),
            kind="explicit_and",
            source_record=record,
        )

    def _build_explicit_complex(self) -> GeneratedQuestion:
        """The paper's Q10 shape: two clauses with negations, joined by
        an explicit OR — "Black Mustang, exclude 2 wheel drive, or a
        yellow Corvette without a gps".  The intended reading scopes
        each negation to its own clause; 29% of the paper's users read
        the first negation across both."""
        record_a = self._record()
        record_b = self._record()
        attempts = 0
        while (
            self._identity_phrase(record_b) == self._identity_phrase(record_a)
            and attempts < 10
        ):
            record_b = self._record()
            attempts += 1
        clause_a = self._clause_with_negation(record_a)
        clause_b = self._clause_with_negation(record_b)
        if clause_a is None or clause_b is None:
            return self._build_explicit_or()
        conditions_a, text_a = clause_a
        conditions_b, text_b = clause_b
        tree = ConditionGroup(
            BooleanOperator.OR,
            [
                ConditionGroup(BooleanOperator.AND, conditions_a),
                ConditionGroup(BooleanOperator.AND, conditions_b),
            ],
        )
        return GeneratedQuestion(
            text=f"{text_a} or {text_b}",
            domain=self.spec.name,
            interpretation=Interpretation(tree=tree),
            kind="explicit_complex",
            source_record=record_a,
        )

    def _clause_with_negation(
        self, record: Record
    ) -> tuple[list[Condition], str] | None:
        """One clause: positive property + identity + negated property."""
        conditions = self._identity_conditions(record)
        with_values = [
            (column, str(record[column.name]))
            for column in self.spec.schema.type_ii_columns
            if record.get(column.name) is not None
        ]
        if len(with_values) < 2:
            return None
        (pos_col, pos_val), (neg_col, neg_actual) = self.rng.sample(
            with_values, k=2
        )
        excludable = [
            value
            for value in self.spec.type_ii_values[neg_col.name]
            if value != neg_actual
        ]
        if not excludable:
            return None
        excluded = self.rng.choice(excludable)
        conditions.append(self._tii_condition(pos_col, pos_val))
        conditions.append(self._tii_condition(neg_col, excluded, negated=True))
        negation_word = self.rng.choice(("exclude", "without", "not"))
        text = self._compose(
            pos_val, self._identity_phrase(record), negation_word, excluded
        )
        return conditions, text

    # ------------------------------------------------------------------
    # noise
    # ------------------------------------------------------------------
    def _apply_noise(self, question: GeneratedQuestion) -> GeneratedQuestion:
        noise: list[str] = []
        text = question.text
        if self.rng.random() < self.noise_rate:
            mutated = self._misspell_one(text)
            if mutated != text:
                text = mutated
                noise.append("misspell")
        if self.rng.random() < self.noise_rate:
            identity = self._identity_phrase(question.source_record) if (
                question.source_record is not None
            ) else ""
            if identity and identity in text and " " in identity:
                text = text.replace(identity, drop_space(identity, self.rng), 1)
                noise.append("drop_space")
        if self.rng.random() < self.noise_rate:
            mutated = self._shorthand_one(text, question)
            if mutated != text:
                text = mutated
                noise.append("shorthand")
        question.text = text
        question.noise = tuple(noise)
        return question

    def _misspell_one(self, text: str) -> str:
        words = text.split()
        eligible = [
            index
            for index, word in enumerate(words)
            if len(word) >= 4 and word.isalpha()
        ]
        if not eligible:
            return text
        index = self.rng.choice(eligible)
        words[index] = misspell(words[index], self.rng)
        return " ".join(words)

    def _shorthand_one(self, text: str, question: GeneratedQuestion) -> str:
        for condition in question.interpretation.conditions():
            if (
                condition.attribute_type is AttributeType.TYPE_II
                and isinstance(condition.value, str)
                and condition.value in text
                and len(condition.value) >= 4
            ):
                short = to_shorthand(condition.value, self.rng)
                if short != condition.value and len(short) >= 2:
                    return text.replace(condition.value, short, 1)
        return text


def make_generator(
    dataset: DomainDataset, noise_rate: float = 0.0, seed: int = 23
) -> QuestionGenerator:
    """A :class:`QuestionGenerator` with a stable per-domain seed."""
    rng = random.Random(seed ^ zlib.crc32(dataset.spec.name.encode()))
    return QuestionGenerator(dataset, rng, noise_rate=noise_rate)
