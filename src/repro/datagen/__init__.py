"""Synthetic-data substrate.

The paper's evaluation uses four resources we cannot obtain: ebay.com
schemas with real ads, 650 Facebook survey questions, commercial
ads-search query logs, and the Wikipedia-derived word-similarity
corpus.  This subpackage synthesizes all four (DESIGN.md Section 2
documents each substitution):

* :mod:`repro.datagen.vocab` — the eight ads-domain definitions
  (schemas, products, property vocabularies, latent similarity
  structure);
* :mod:`repro.datagen.ads` — ad-record sampling, including the
  top-10/bottom-10 range statistics of Section 4.3.2;
* :mod:`repro.datagen.noise` — misspelling, missing-space and
  shorthand channels;
* :mod:`repro.datagen.questions` — natural-language questions with
  machine-checkable ground truth;
* :mod:`repro.datagen.querylog` — session-structured query logs driven
  by the latent similarity model (feeds the TI-matrix);
* :mod:`repro.datagen.corpus` — a topical document collection (feeds
  the WS-matrix);
* :mod:`repro.datagen.latent` — the latent similarity model itself,
  which doubles as the appraisers' ground truth.
"""

from repro.datagen.ads import AdsGenerator, DomainDataset, build_dataset
from repro.datagen.latent import LatentSimilarity
from repro.datagen.vocab import DOMAIN_NAMES, build_domain_spec
from repro.datagen.vocab.base import DomainSpec, Product

__all__ = [
    "AdsGenerator",
    "DomainDataset",
    "build_dataset",
    "LatentSimilarity",
    "DOMAIN_NAMES",
    "build_domain_spec",
    "DomainSpec",
    "Product",
]
