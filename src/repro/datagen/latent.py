"""The latent similarity model behind the synthetic data.

Every stochastic generator in this package (query logs, corpora,
appraiser judgments) is driven by one shared notion of "how similar are
these two things really":

* two **products** (Type I identities) are similar when they share a
  market segment (group), and mildly similar when their price bands
  overlap — a Honda Accord and a Toyota Camry are both midsize sedans,
  which is exactly the paper's motivating example ("Honda Accord is
  relevant to a search for Toyota Camry", Section 2.2);
* two **property words** (Type II values) are similar when the domain
  spec places them in the same word cluster;
* two **numeric values** are similar by proximity relative to the
  attribute's range (the paper's Eq. 4 — the latent model and CQAds
  agree on numeric similarity by construction, as both follow the
  paper).

The learned resources (TI-matrix from the query log, WS-matrix from the
corpus) only ever see *samples* drawn from this model, never the model
itself; the simulated appraisers see the model directly.  That keeps
the Figure 5 comparison non-circular while giving CQAds a learnable
signal.
"""

from __future__ import annotations

from repro.datagen.vocab.base import DomainSpec, Product

__all__ = ["LatentSimilarity"]

SAME_PRODUCT = 1.0
SAME_GROUP = 0.8
PRICE_BAND_WEIGHT = 0.3
UNRELATED = 0.05

SAME_CLUSTER = 0.7
SAME_ATTRIBUTE = 0.25
UNRELATED_WORD = 0.02


class LatentSimilarity:
    """Ground-truth similarity for one ads domain."""

    def __init__(self, spec: DomainSpec) -> None:
        self.spec = spec
        self._products_by_key: dict[tuple[str, ...], Product] = {
            product.key(): product for product in spec.products
        }
        self._cluster_of: dict[str, int] = {}
        for index, cluster in enumerate(spec.word_clusters):
            for word in cluster:
                # a word may appear in several clusters; first wins,
                # keeping the mapping deterministic
                self._cluster_of.setdefault(word.lower(), index)
        self._attribute_of: dict[str, str] = {}
        for column, values in spec.type_ii_values.items():
            for value in values:
                for word in value.lower().split():
                    self._attribute_of.setdefault(word, column)

    # ------------------------------------------------------------------
    # products (Type I)
    # ------------------------------------------------------------------
    def product(self, key: tuple[str, ...]) -> Product:
        return self._products_by_key[key]

    def product_similarity(
        self, key_a: tuple[str, ...], key_b: tuple[str, ...]
    ) -> float:
        """Ground-truth similarity of two products in [0, 1]."""
        if key_a == key_b:
            return SAME_PRODUCT
        product_a = self._products_by_key.get(key_a)
        product_b = self._products_by_key.get(key_b)
        if product_a is None or product_b is None:
            return 0.0
        if product_a.group == product_b.group:
            return SAME_GROUP
        overlap = self._price_band_overlap(product_a, product_b)
        return max(UNRELATED, PRICE_BAND_WEIGHT * overlap)

    def _price_band_overlap(self, a: Product, b: Product) -> float:
        """Jaccard overlap of the two products' price bands in [0, 1]."""
        price_column = self._price_column()
        if price_column is None:
            return 0.0
        low_a, high_a = self.spec.numeric_range(price_column, a)
        low_b, high_b = self.spec.numeric_range(price_column, b)
        intersection = max(0.0, min(high_a, high_b) - max(low_a, low_b))
        union = max(high_a, high_b) - min(low_a, low_b)
        return intersection / union if union > 0 else 0.0

    def _price_column(self) -> str | None:
        for name in ("price", "salary"):
            if self.spec.schema.has_column(name):
                return name
        numeric = self.spec.numeric_columns
        return numeric[0] if numeric else None

    def similar_products(
        self, key: tuple[str, ...], threshold: float = 0.5
    ) -> list[Product]:
        """Products whose similarity to *key* is at least *threshold*,
        excluding the product itself, most similar first."""
        scored = [
            (self.product_similarity(key, other.key()), other)
            for other in self.spec.products
            if other.key() != key
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1].key()))
        return [product for score, product in scored if score >= threshold]

    # ------------------------------------------------------------------
    # property words (Type II)
    # ------------------------------------------------------------------
    def word_similarity(self, word_a: str, word_b: str) -> float:
        """Ground-truth similarity of two property words in [0, 1]."""
        word_a, word_b = word_a.lower(), word_b.lower()
        if word_a == word_b:
            return 1.0
        cluster_a = self._cluster_of.get(word_a)
        cluster_b = self._cluster_of.get(word_b)
        if cluster_a is not None and cluster_a == cluster_b:
            return SAME_CLUSTER
        attribute_a = self._attribute_of.get(word_a)
        attribute_b = self._attribute_of.get(word_b)
        if attribute_a is not None and attribute_a == attribute_b:
            return SAME_ATTRIBUTE
        return UNRELATED_WORD

    def value_similarity(self, value_a: str, value_b: str) -> float:
        """Similarity of two (possibly multi-word) Type II values.

        The best word-pair similarity across the two values; multiword
        values like "4 wheel drive" vs "all wheel drive" match on their
        informative words.
        """
        words_a = value_a.lower().split()
        words_b = value_b.lower().split()
        if not words_a or not words_b:
            return 0.0
        return max(
            self.word_similarity(a, b) for a in words_a for b in words_b
        )

    # ------------------------------------------------------------------
    # numeric values (Type III)
    # ------------------------------------------------------------------
    #: How much sharper human relatedness judgments are than Eq. 4's
    #: full-range normalization: a price one third of the attribute
    #: range away already reads as unrelated to a survey participant.
    NUMERIC_SHARPNESS = 3.0

    def numeric_similarity(
        self, column: str, value_a: float, value_b: float
    ) -> float:
        """Ground-truth numeric relatedness.

        Eq. 4's shape against the spec's global range, scaled by
        :data:`NUMERIC_SHARPNESS`: appraisers judge a $45,000 car
        unrelated to a $15,000 query even though Eq. 4 would still give
        the pair substantial similarity.
        """
        low, high = self.spec.numeric_range(column)
        span = high - low
        if span <= 0:
            return 1.0 if value_a == value_b else 0.0
        distance = abs(value_a - value_b) / span
        return max(0.0, 1.0 - self.NUMERIC_SHARPNESS * distance)
