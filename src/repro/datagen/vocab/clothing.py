"""Clothing domain."""

from __future__ import annotations

from repro.db.schema import AttributeType, TableSchema
from repro.datagen.vocab.base import DomainSpec, Product, categorical, numeric

__all__ = ["build_spec"]

_TI = AttributeType.TYPE_I
_TII = AttributeType.TYPE_II


def _schema() -> TableSchema:
    return TableSchema(
        table_name="clothing_ads",
        columns=[
            categorical("brand", _TI, synonyms=("maker", "label")),
            categorical("item", _TI, synonyms=("garment",)),
            categorical("color", _TII, synonyms=("colour",)),
            categorical("size", _TII),
            categorical("material", _TII, synonyms=("fabric",)),
            categorical("gender", _TII, synonyms=("for",)),
            numeric(
                "price",
                (3, 600),
                unit_words=("usd", "dollars", "dollar", "$", "bucks"),
                synonyms=("price", "cost", "priced"),
            ),
        ],
    )


def _products() -> list[Product]:
    def garment(
        brand: str,
        item: str,
        group: str,
        price: tuple[float, float],
        popularity: float = 1.0,
    ) -> Product:
        return Product(
            identity={"brand": brand, "item": item},
            group=group,
            popularity=popularity,
            numeric_overrides={"price": price},
        )

    return [
        # --- denim ------------------------------------------------------
        garment("levis", "jeans", "denim", (15, 80), 2.0),
        garment("wrangler", "jeans", "denim", (10, 50), 1.3),
        garment("lee", "jeans", "denim", (8, 45), 1.0),
        garment("levis", "denim jacket", "denim", (20, 90), 0.9),
        # --- outerwear --------------------------------------------------
        garment("north face", "jacket", "outerwear", (40, 250), 1.5),
        garment("columbia", "jacket", "outerwear", (25, 150), 1.3),
        garment("patagonia", "fleece", "outerwear", (30, 180), 1.0),
        garment("carhartt", "coat", "outerwear", (35, 160), 1.1),
        garment("north face", "parka", "outerwear", (60, 300), 0.8),
        # --- athletic ---------------------------------------------------
        garment("nike", "hoodie", "athletic", (15, 70), 1.6),
        garment("adidas", "track jacket", "athletic", (15, 80), 1.2),
        garment("under armour", "shirt", "athletic", (8, 40), 1.2),
        garment("nike", "shorts", "athletic", (8, 40), 1.3),
        garment("adidas", "sweatpants", "athletic", (10, 50), 1.1),
        # --- formal -----------------------------------------------------
        garment("ralph lauren", "dress shirt", "formal", (15, 90), 1.0),
        garment("brooks brothers", "suit", "formal", (80, 500), 0.6),
        garment("calvin klein", "blazer", "formal", (40, 220), 0.8),
        garment("ralph lauren", "polo shirt", "formal", (12, 60), 1.3),
        # --- dresses ----------------------------------------------------
        garment("gap", "dress", "dresses", (12, 80), 1.1),
        garment("banana republic", "dress", "dresses", (20, 120), 0.9),
        garment("old navy", "skirt", "dresses", (8, 40), 0.9),
        # --- footwear ---------------------------------------------------
        garment("nike", "sneakers", "footwear", (20, 150), 1.7),
        garment("adidas", "sneakers", "footwear", (18, 140), 1.4),
        garment("timberland", "boots", "footwear", (40, 180), 1.1),
        garment("doc martens", "boots", "footwear", (45, 170), 0.9),
    ]


def build_spec() -> DomainSpec:
    """Build the Clothing :class:`DomainSpec`."""
    return DomainSpec(
        name="clothing",
        schema=_schema(),
        products=_products(),
        type_ii_values={
            "color": [
                "black", "white", "blue", "red", "green", "grey",
                "navy", "brown", "pink", "purple", "beige", "khaki",
            ],
            "size": [
                "extra small", "small", "medium", "large", "extra large",
            ],
            "material": [
                "cotton", "denim", "wool", "leather", "polyester",
                "fleece", "silk", "linen",
            ],
            "gender": ["mens", "womens", "unisex", "kids"],
        },
        word_clusters=[
            ["black", "grey", "navy", "brown"],
            ["white", "beige", "khaki"],
            ["red", "pink", "purple"],
            ["blue", "green"],
            ["cotton", "linen", "silk"],
            ["wool", "fleece", "polyester"],
            ["small", "medium", "large"],
            ["mens", "womens", "unisex", "kids"],
        ],
        filler_phrases=[
            "never worn", "new with tags", "gently used", "smoke free home",
            "true to size", "slim fit", "relaxed fit", "machine washable",
            "vintage", "limited edition", "great for winter",
            "perfect for summer", "barely used", "retail price",
        ],
        type_ii_missing_rate=0.2,
    )
