"""Food-Coupons domain."""

from __future__ import annotations

from repro.db.schema import AttributeType, TableSchema
from repro.datagen.vocab.base import DomainSpec, Product, categorical, numeric

__all__ = ["build_spec"]

_TI = AttributeType.TYPE_I
_TII = AttributeType.TYPE_II


def _schema() -> TableSchema:
    return TableSchema(
        table_name="food_coupon_ads",
        columns=[
            categorical("restaurant", _TI, synonyms=("place", "chain")),
            categorical("item", _TI, synonyms=("deal", "food")),
            categorical("meal", _TII),
            categorical("service", _TII, synonyms=("order type",)),
            categorical("cuisine", _TII, synonyms=("food type",)),
            numeric(
                "discount_percent",
                (5, 80),
                unit_words=("percent", "%", "percent off", "off"),
                synonyms=("discount", "savings"),
            ),
            numeric(
                "price",
                (1, 60),
                unit_words=("usd", "dollars", "dollar", "$", "bucks"),
                synonyms=("price", "cost"),
            ),
            numeric(
                "expires_days",
                (1, 90),
                unit_words=("days", "day"),
                synonyms=("expires", "valid for"),
            ),
        ],
    )


def _products() -> list[Product]:
    def deal(
        restaurant: str,
        item: str,
        group: str,
        price: tuple[float, float],
        popularity: float = 1.0,
    ) -> Product:
        return Product(
            identity={"restaurant": restaurant, "item": item},
            group=group,
            popularity=popularity,
            numeric_overrides={"price": price},
        )

    return [
        # --- burgers --------------------------------------------------------
        deal("mcdonalds", "big mac meal", "burgers", (4, 9), 1.8),
        deal("burger king", "whopper meal", "burgers", (4, 9), 1.4),
        deal("wendys", "baconator combo", "burgers", (5, 10), 1.1),
        deal("five guys", "cheeseburger", "burgers", (6, 12), 0.9),
        # --- pizza ----------------------------------------------------------
        deal("dominos", "large pizza", "pizza", (6, 16), 1.7),
        deal("pizza hut", "family box", "pizza", (10, 25), 1.3),
        deal("papa johns", "two topping pizza", "pizza", (7, 15), 1.1),
        deal("little caesars", "hot and ready", "pizza", (5, 9), 1.0),
        # --- mexican ----------------------------------------------------------
        deal("taco bell", "taco box", "mexican", (4, 12), 1.4),
        deal("chipotle", "burrito bowl", "mexican", (6, 11), 1.3),
        deal("qdoba", "quesadilla meal", "mexican", (6, 11), 0.7),
        # --- sandwiches --------------------------------------------------------
        deal("subway", "footlong sub", "sandwiches", (4, 9), 1.5),
        deal("jimmy johns", "club sandwich", "sandwiches", (5, 10), 0.9),
        deal("panera", "soup and sandwich", "sandwiches", (6, 13), 1.0),
        # --- chicken ------------------------------------------------------------
        deal("kfc", "bucket meal", "chicken", (10, 25), 1.2),
        deal("chick fil a", "nuggets meal", "chicken", (5, 10), 1.3),
        deal("popeyes", "chicken sandwich combo", "chicken", (5, 10), 1.1),
        # --- asian ---------------------------------------------------------------
        deal("panda express", "two entree plate", "asian", (6, 10), 1.1),
        deal("pf changs", "dinner for two", "asian", (20, 45), 0.6),
        # --- coffee and dessert ------------------------------------------------
        deal("starbucks", "latte", "coffee and dessert", (3, 7), 1.5),
        deal("dunkin", "dozen donuts", "coffee and dessert", (6, 12), 1.1),
        deal("baskin robbins", "ice cream cake", "coffee and dessert", (15, 40), 0.6),
    ]


def build_spec() -> DomainSpec:
    """Build the Food-Coupons :class:`DomainSpec`."""
    return DomainSpec(
        name="food_coupons",
        schema=_schema(),
        products=_products(),
        type_ii_values={
            "meal": ["breakfast", "lunch", "dinner", "late night", "snack"],
            "service": ["delivery", "takeout", "dine in", "drive thru"],
            "cuisine": [
                "american", "mexican", "italian", "chinese",
                "fast food", "dessert", "coffee",
            ],
        },
        word_clusters=[
            ["breakfast", "lunch", "dinner", "snack"],
            ["delivery", "takeout", "drive", "thru"],
            ["american", "mexican", "italian", "chinese"],
            ["dessert", "coffee", "donuts", "ice", "cream"],
            ["pizza", "burger", "taco", "sandwich", "chicken"],
        ],
        filler_phrases=[
            "limited time offer", "valid weekdays only", "online code",
            "cannot combine offers", "participating locations",
            "free drink included", "buy one get one", "kids eat free",
            "no minimum purchase", "app exclusive", "printable coupon",
            "while supplies last",
        ],
        type_ii_missing_rate=0.3,
    )
