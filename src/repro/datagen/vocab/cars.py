"""Cars-for-Sale domain: the paper's running example.

The product inventory covers every make/model the paper mentions
(Honda Accord, Toyota Camry, Chevy Malibu, Ford Focus, Mazda, BMW,
Mustang, Corvette, Corolla, Civic) plus enough others to populate the
latent market-segment structure.  Makes shared with the Motorcycles
domain (Honda, Suzuki, BMW) reproduce the classifier confusion the
paper reports between the two domains (Section 5.2).
"""

from __future__ import annotations

from repro.db.schema import AttributeType, TableSchema
from repro.datagen.vocab.base import DomainSpec, Product, categorical, numeric

__all__ = ["build_spec"]

_TI = AttributeType.TYPE_I
_TII = AttributeType.TYPE_II


def _schema() -> TableSchema:
    return TableSchema(
        table_name="car_ads",
        columns=[
            categorical("make", _TI, synonyms=("maker", "brand")),
            categorical("model", _TI),
            categorical("color", _TII, synonyms=("colour", "paint")),
            categorical("transmission", _TII),
            categorical("doors", _TII, synonyms=("door",)),
            categorical("drivetrain", _TII, synonyms=("drive",)),
            categorical("body_style", _TII, synonyms=("body", "style")),
            categorical("fuel", _TII, synonyms=("engine",)),
            numeric(
                "year",
                (1985, 2011),
                synonyms=("year", "model year"),
            ),
            numeric(
                "price",
                (500, 80000),
                unit_words=("usd", "dollars", "dollar", "$", "bucks"),
                synonyms=("price", "cost", "priced", "asking"),
            ),
            numeric(
                "mileage",
                (0, 250000),
                unit_words=("miles", "mile", "mi", "k miles"),
                synonyms=("mileage", "odometer"),
            ),
        ],
    )


def _products() -> list[Product]:
    def car(
        make: str,
        model: str,
        group: str,
        price: tuple[float, float],
        popularity: float = 1.0,
    ) -> Product:
        return Product(
            identity={"make": make, "model": model},
            group=group,
            popularity=popularity,
            numeric_overrides={"price": price},
        )

    return [
        # --- compact economy ------------------------------------------
        car("honda", "civic", "compact economy", (2000, 16000), 2.0),
        car("toyota", "corolla", "compact economy", (1800, 15000), 2.0),
        car("mazda", "3", "compact economy", (2500, 15000), 1.4),
        car("ford", "focus", "compact economy", (1500, 13000), 1.5),
        car("chevy", "cobalt", "compact economy", (1200, 9000), 1.0),
        car("nissan", "sentra", "compact economy", (1500, 11000), 1.1),
        car("hyundai", "elantra", "compact economy", (1500, 12000), 1.0),
        car("suzuki", "aerio", "compact economy", (1000, 7000), 0.5),
        car("kia", "rio", "compact economy", (1000, 8000), 0.7),
        # --- midsize sedan --------------------------------------------
        car("honda", "accord", "midsize sedan", (2500, 20000), 2.0),
        car("toyota", "camry", "midsize sedan", (2500, 20000), 2.0),
        car("chevy", "malibu", "midsize sedan", (1800, 15000), 1.3),
        car("ford", "fusion", "midsize sedan", (3000, 16000), 1.1),
        car("nissan", "altima", "midsize sedan", (2500, 16000), 1.2),
        car("mazda", "6", "midsize sedan", (2800, 15000), 0.9),
        car("hyundai", "sonata", "midsize sedan", (2200, 14000), 0.9),
        # --- luxury sedan ----------------------------------------------
        car("bmw", "3 series", "luxury sedan", (5000, 45000), 1.2),
        car("bmw", "5 series", "luxury sedan", (7000, 55000), 0.8),
        car("mercedes", "c class", "luxury sedan", (6000, 45000), 1.0),
        car("mercedes", "e class", "luxury sedan", (8000, 60000), 0.7),
        car("audi", "a4", "luxury sedan", (5500, 42000), 0.9),
        car("lexus", "es", "luxury sedan", (6000, 40000), 0.8),
        # --- suv --------------------------------------------------------
        car("toyota", "rav4", "suv", (4000, 25000), 1.3),
        car("honda", "crv", "suv", (4000, 24000), 1.3),
        car("ford", "explorer", "suv", (3000, 28000), 1.1),
        car("chevy", "tahoe", "suv", (5000, 40000), 0.9),
        car("jeep", "wrangler", "suv", (5000, 32000), 1.2),
        car("jeep", "cherokee", "suv", (2500, 22000), 1.0),
        car("nissan", "pathfinder", "suv", (3000, 24000), 0.8),
        # --- pickup truck ----------------------------------------------
        car("ford", "f150", "pickup truck", (3000, 40000), 1.5),
        car("chevy", "silverado", "pickup truck", (3500, 42000), 1.3),
        car("toyota", "tacoma", "pickup truck", (4000, 30000), 1.1),
        car("dodge", "ram", "pickup truck", (3000, 38000), 1.0),
        # --- sports -----------------------------------------------------
        car("ford", "mustang", "sports", (4000, 45000), 1.3),
        car("chevy", "corvette", "sports", (9000, 70000), 0.9),
        car("chevy", "camaro", "sports", (4000, 45000), 0.9),
        car("mazda", "miata", "sports", (3000, 25000), 0.7),
        car("nissan", "350z", "sports", (8000, 35000), 0.7),
        car("bmw", "m3", "sports", (12000, 65000), 0.6),
    ]


def build_spec() -> DomainSpec:
    """Build the Cars-for-Sale :class:`DomainSpec`."""
    return DomainSpec(
        name="cars",
        schema=_schema(),
        products=_products(),
        type_ii_values={
            "color": [
                "red", "blue", "black", "white", "silver", "grey",
                "green", "gold", "yellow", "orange", "brown", "maroon",
            ],
            "transmission": ["automatic", "manual"],
            "doors": ["2 door", "4 door"],
            "drivetrain": ["2 wheel drive", "4 wheel drive", "all wheel drive"],
            "body_style": [
                "sedan", "coupe", "hatchback", "convertible", "wagon", "van",
            ],
            "fuel": ["gas", "diesel", "hybrid", "electric"],
        },
        word_clusters=[
            # colors that appraisers (and the WS-matrix) treat as close
            ["black", "grey", "brown", "maroon"],
            ["white", "silver", "gold"],
            ["red", "orange", "yellow"],
            ["blue", "green"],
            ["automatic", "manual", "transmission"],
            ["sedan", "coupe", "hatchback"],
            ["convertible", "wagon", "van"],
            ["gas", "diesel", "hybrid", "electric", "fuel"],
        ],
        filler_phrases=[
            "clean title", "one owner", "garage kept", "new tires",
            "low mileage", "excellent condition", "runs great",
            "power windows", "power door locks", "cd player", "radio",
            "leather seats", "sunroof", "anti lock brake",
            "power steering", "cruise control", "alloy wheels",
            "backup camera", "gps system", "cassette player",
            "auto off headlights", "4 cylinder", "6 cylinder",
            "cold air conditioning", "recent oil change", "test drive welcome",
        ],
    )
