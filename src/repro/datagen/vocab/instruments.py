"""Musical-Instruments domain."""

from __future__ import annotations

from repro.db.schema import AttributeType, TableSchema
from repro.datagen.vocab.base import DomainSpec, Product, categorical, numeric

__all__ = ["build_spec"]

_TI = AttributeType.TYPE_I
_TII = AttributeType.TYPE_II


def _schema() -> TableSchema:
    return TableSchema(
        table_name="instrument_ads",
        columns=[
            categorical("brand", _TI, synonyms=("maker",)),
            categorical("instrument", _TI),
            categorical("color", _TII, synonyms=("finish",)),
            categorical("condition", _TII),
            categorical("level", _TII, synonyms=("grade",)),
            categorical("kind", _TII, synonyms=("type",)),
            numeric(
                "price",
                (20, 8000),
                unit_words=("usd", "dollars", "dollar", "$", "bucks"),
                synonyms=("price", "cost", "priced", "asking"),
            ),
            numeric("year", (1950, 2011), synonyms=("year",)),
        ],
    )


def _products() -> list[Product]:
    def inst(
        brand: str,
        instrument: str,
        group: str,
        price: tuple[float, float],
        popularity: float = 1.0,
    ) -> Product:
        return Product(
            identity={"brand": brand, "instrument": instrument},
            group=group,
            popularity=popularity,
            numeric_overrides={"price": price},
        )

    return [
        # --- guitars ----------------------------------------------------------
        inst("fender", "stratocaster", "guitars", (300, 2500), 1.8),
        inst("gibson", "les paul", "guitars", (600, 5000), 1.4),
        inst("fender", "telecaster", "guitars", (350, 2200), 1.2),
        inst("epiphone", "sg", "guitars", (150, 700), 1.0),
        inst("taylor", "acoustic guitar", "guitars", (300, 3000), 1.2),
        inst("martin", "acoustic guitar", "guitars", (400, 4000), 1.0),
        inst("yamaha", "classical guitar", "guitars", (80, 600), 1.1),
        # --- bass ----------------------------------------------------------------
        inst("fender", "precision bass", "bass", (350, 2000), 0.9),
        inst("ibanez", "bass guitar", "bass", (150, 1200), 0.8),
        # --- keyboards -------------------------------------------------------------
        inst("yamaha", "keyboard", "keyboards", (80, 1500), 1.4),
        inst("casio", "keyboard", "keyboards", (40, 500), 1.1),
        inst("roland", "digital piano", "keyboards", (300, 2500), 0.9),
        inst("korg", "synthesizer", "keyboards", (250, 2500), 0.7),
        inst("steinway", "upright piano", "keyboards", (2000, 8000), 0.4),
        # --- drums ---------------------------------------------------------------
        inst("pearl", "drum set", "drums", (200, 2500), 1.0),
        inst("ludwig", "snare drum", "drums", (80, 900), 0.7),
        inst("zildjian", "cymbal pack", "drums", (100, 900), 0.7),
        inst("roland", "electronic drums", "drums", (300, 2500), 0.8),
        # --- orchestral --------------------------------------------------------------
        inst("yamaha", "trumpet", "orchestral", (100, 1500), 0.9),
        inst("selmer", "saxophone", "orchestral", (300, 3500), 0.8),
        inst("stentor", "violin", "orchestral", (60, 900), 0.9),
        inst("yamaha", "flute", "orchestral", (80, 1200), 0.8),
        inst("buffet", "clarinet", "orchestral", (150, 2000), 0.6),
    ]


def build_spec() -> DomainSpec:
    """Build the Musical-Instruments :class:`DomainSpec`."""
    return DomainSpec(
        name="instruments",
        schema=_schema(),
        products=_products(),
        type_ii_values={
            "color": [
                "sunburst", "black", "white", "red", "blue", "natural",
                "cherry", "gold", "silver",
            ],
            "condition": ["mint", "excellent", "good", "fair", "needs repair"],
            "level": ["beginner", "intermediate", "professional", "student"],
            "kind": ["acoustic", "electric", "electro acoustic", "digital"],
        },
        word_clusters=[
            ["sunburst", "cherry", "natural", "gold"],
            ["black", "white", "silver"],
            ["red", "blue"],
            ["mint", "excellent", "good", "fair"],
            ["beginner", "student", "intermediate", "professional"],
            ["acoustic", "electric", "digital"],
            ["guitar", "bass", "violin"],
            ["keyboard", "piano", "synthesizer"],
            ["drum", "snare", "cymbal"],
            ["trumpet", "saxophone", "flute", "clarinet"],
        ],
        filler_phrases=[
            "includes case", "hard shell case", "gig bag included",
            "new strings", "recently serviced", "studio use only",
            "barely played", "no scratches", "original owner",
            "amp included", "stand included", "tuned and ready",
            "smoke free studio", "great tone", "plays beautifully",
        ],
    )
