"""Jewellery domain."""

from __future__ import annotations

from repro.db.schema import AttributeType, TableSchema
from repro.datagen.vocab.base import DomainSpec, Product, categorical, numeric

__all__ = ["build_spec"]

_TI = AttributeType.TYPE_I
_TII = AttributeType.TYPE_II


def _schema() -> TableSchema:
    return TableSchema(
        table_name="jewellery_ads",
        columns=[
            categorical("item", _TI, synonyms=("piece",)),
            categorical("brand", _TI, synonyms=("maker", "designer")),
            categorical("metal", _TII),
            categorical("gemstone", _TII, synonyms=("stone",)),
            categorical("style", _TII),
            categorical("gender", _TII, synonyms=("for",)),
            numeric(
                "price",
                (15, 20000),
                unit_words=("usd", "dollars", "dollar", "$", "bucks"),
                synonyms=("price", "cost", "priced", "asking"),
            ),
            numeric(
                "carat",
                (0.1, 5.0),
                unit_words=("carat", "carats", "ct"),
                synonyms=("carat",),
            ),
        ],
    )


def _products() -> list[Product]:
    def piece(
        item: str,
        brand: str,
        group: str,
        price: tuple[float, float],
        popularity: float = 1.0,
    ) -> Product:
        return Product(
            identity={"item": item, "brand": brand},
            group=group,
            popularity=popularity,
            numeric_overrides={"price": price},
        )

    return [
        # --- rings -----------------------------------------------------------
        piece("engagement ring", "tiffany", "rings", (1500, 20000), 1.3),
        piece("wedding band", "kay", "rings", (200, 3000), 1.4),
        piece("diamond ring", "zales", "rings", (500, 9000), 1.3),
        piece("signet ring", "david yurman", "rings", (250, 2500), 0.6),
        # --- necklaces --------------------------------------------------------
        piece("pendant necklace", "tiffany", "necklaces", (200, 5000), 1.2),
        piece("gold chain", "kay", "necklaces", (150, 3000), 1.2),
        piece("pearl necklace", "mikimoto", "necklaces", (400, 8000), 0.8),
        piece("locket", "pandora", "necklaces", (60, 600), 0.8),
        # --- earrings ------------------------------------------------------------
        piece("stud earrings", "zales", "earrings", (80, 3000), 1.3),
        piece("hoop earrings", "pandora", "earrings", (40, 900), 1.1),
        piece("drop earrings", "swarovski", "earrings", (60, 1200), 0.9),
        # --- bracelets --------------------------------------------------------------
        piece("charm bracelet", "pandora", "bracelets", (50, 900), 1.3),
        piece("tennis bracelet", "zales", "bracelets", (300, 6000), 0.9),
        piece("bangle", "cartier", "bracelets", (200, 8000), 0.7),
        piece("cuff bracelet", "david yurman", "bracelets", (150, 3000), 0.6),
        # --- watches -----------------------------------------------------------------
        piece("dive watch", "seiko", "watches", (100, 2000), 1.1),
        piece("dress watch", "omega", "watches", (800, 12000), 0.8),
        piece("chronograph watch", "tag heuer", "watches", (500, 8000), 0.8),
        piece("smart watch", "fossil", "watches", (80, 500), 0.9),
    ]


def build_spec() -> DomainSpec:
    """Build the Jewellery :class:`DomainSpec`."""
    return DomainSpec(
        name="jewellery",
        schema=_schema(),
        products=_products(),
        type_ii_values={
            "metal": [
                "gold", "white gold", "rose gold", "silver", "platinum",
                "titanium", "stainless steel",
            ],
            "gemstone": [
                "diamond", "ruby", "sapphire", "emerald", "pearl",
                "opal", "amethyst", "topaz", "cubic zirconia",
            ],
            "style": ["vintage", "modern", "art deco", "minimalist", "classic"],
            "gender": ["womens", "mens", "unisex"],
        },
        word_clusters=[
            ["gold", "rose", "white", "platinum"],
            ["silver", "titanium", "stainless", "steel"],
            ["diamond", "cubic", "zirconia"],
            ["ruby", "sapphire", "emerald", "topaz", "amethyst"],
            ["pearl", "opal"],
            ["vintage", "art", "deco", "classic"],
            ["modern", "minimalist"],
            ["ring", "band"],
            ["necklace", "pendant", "chain", "locket"],
            ["bracelet", "bangle", "cuff"],
        ],
        filler_phrases=[
            "comes with box", "gift receipt", "appraisal included",
            "certified authentic", "never worn", "hypoallergenic",
            "free resizing", "anniversary gift", "estate sale",
            "hallmarked", "insured shipping", "original packaging",
            "sparkles beautifully", "heirloom quality",
        ],
        type_ii_missing_rate=0.3,
    )
