"""Computer-Science Jobs domain.

The paper singles this domain out in Section 5.5.3: appraisers judged
"a C++ software programmer job is closely related to a C programmer
job" inconsistently.  The latent groups below encode that intended
relatedness (languages in the same family share a group) so the
simulated appraisers can reproduce the effect with extra noise.
"""

from __future__ import annotations

from repro.db.schema import AttributeType, TableSchema
from repro.datagen.vocab.base import DomainSpec, Product, categorical, numeric

__all__ = ["build_spec"]

_TI = AttributeType.TYPE_I
_TII = AttributeType.TYPE_II


def _schema() -> TableSchema:
    return TableSchema(
        table_name="cs_job_ads",
        columns=[
            categorical("title", _TI, synonyms=("position", "role")),
            categorical("company", _TI, synonyms=("employer",)),
            categorical("language", _TII, synonyms=("stack", "technology")),
            categorical("seniority", _TII, synonyms=("level",)),
            categorical("workplace", _TII, synonyms=("location type",)),
            categorical("employment", _TII, synonyms=("schedule",)),
            numeric(
                "salary",
                (30000, 200000),
                unit_words=("usd", "dollars", "dollar", "$", "a year", "annually"),
                synonyms=("salary", "pay", "compensation", "paying"),
            ),
            numeric(
                "experience_years",
                (0, 15),
                unit_words=("years", "yrs", "years experience"),
                synonyms=("experience",),
            ),
        ],
    )


def _products() -> list[Product]:
    def job(
        title: str,
        company: str,
        group: str,
        salary: tuple[float, float],
        popularity: float = 1.0,
    ) -> Product:
        return Product(
            identity={"title": title, "company": company},
            group=group,
            popularity=popularity,
            numeric_overrides={"salary": salary},
        )

    return [
        # --- systems programming ---------------------------------------
        job("c programmer", "intel", "systems programming", (60000, 120000), 1.2),
        job("c++ developer", "nvidia", "systems programming", (70000, 140000), 1.3),
        job("embedded engineer", "qualcomm", "systems programming", (65000, 130000), 1.0),
        job("kernel developer", "redhat", "systems programming", (80000, 150000), 0.7),
        # --- web development --------------------------------------------
        job("web developer", "amazon", "web development", (55000, 120000), 1.8),
        job("frontend engineer", "google", "web development", (70000, 150000), 1.4),
        job("php developer", "facebook", "web development", (50000, 110000), 1.1),
        job("javascript engineer", "netflix", "web development", (65000, 140000), 1.2),
        job("ruby developer", "github", "web development", (60000, 130000), 0.8),
        # --- data ---------------------------------------------------------
        job("data analyst", "microsoft", "data", (50000, 100000), 1.4),
        job("database administrator", "oracle", "data", (60000, 120000), 1.2),
        job("data engineer", "ibm", "data", (70000, 140000), 1.1),
        job("machine learning engineer", "google", "data", (90000, 180000), 0.9),
        # --- enterprise ---------------------------------------------------
        job("java developer", "oracle", "enterprise", (60000, 130000), 1.6),
        job("dotnet developer", "microsoft", "enterprise", (55000, 120000), 1.2),
        job("software engineer", "ibm", "enterprise", (55000, 125000), 1.9),
        job("sap consultant", "accenture", "enterprise", (70000, 140000), 0.7),
        # --- quality and ops ----------------------------------------------
        job("qa engineer", "apple", "quality and ops", (45000, 95000), 1.2),
        job("test automation engineer", "cisco", "quality and ops", (55000, 110000), 0.9),
        job("devops engineer", "amazon", "quality and ops", (70000, 145000), 1.1),
        job("system administrator", "dell", "quality and ops", (40000, 90000), 1.0),
        # --- mobile ---------------------------------------------------------
        job("ios developer", "apple", "mobile", (70000, 150000), 1.1),
        job("android developer", "samsung", "mobile", (65000, 140000), 1.1),
        job("mobile engineer", "uber", "mobile", (70000, 145000), 0.9),
    ]


def build_spec() -> DomainSpec:
    """Build the CS Jobs :class:`DomainSpec`."""
    return DomainSpec(
        name="cs_jobs",
        schema=_schema(),
        products=_products(),
        type_ii_values={
            "language": [
                "c", "c++", "java", "python", "javascript", "php",
                "ruby", "sql", "objective c", "csharp",
            ],
            "seniority": ["junior", "mid level", "senior", "lead", "principal"],
            "workplace": ["onsite", "remote", "hybrid"],
            "employment": ["full time", "part time", "contract", "internship"],
        },
        word_clusters=[
            ["c", "c++", "objective", "csharp"],
            ["java", "python", "ruby", "php", "javascript"],
            ["junior", "mid", "senior", "lead", "principal"],
            ["onsite", "remote", "hybrid"],
            ["full", "part", "contract", "internship", "time"],
        ],
        filler_phrases=[
            "competitive benefits", "health insurance", "stock options",
            "401k match", "flexible hours", "paid time off",
            "agile team", "code review culture", "fast growing startup",
            "relocation assistance", "on call rotation", "great culture",
            "cutting edge projects", "equal opportunity employer",
        ],
        type_ii_missing_rate=0.3,
    )
