"""The eight ads-domain vocabularies of the paper's evaluation.

Section 5.1: "The eight ads domains we consider are Cars, Motorcycles,
Clothing, Computer Science Jobs, Furniture, Food Coupons, Musical
Instruments, and Jewellery."  Each module builds one
:class:`~repro.datagen.vocab.base.DomainSpec`; this package is the
registry.
"""

from __future__ import annotations

from repro.datagen.vocab import (
    cars,
    clothing,
    cs_jobs,
    food_coupons,
    furniture,
    instruments,
    jewellery,
    motorcycles,
)
from repro.datagen.vocab.base import DomainSpec, Product
from repro.errors import DataGenerationError

__all__ = ["DOMAIN_NAMES", "build_domain_spec", "build_all_specs", "DomainSpec", "Product"]

_BUILDERS = {
    "cars": cars.build_spec,
    "motorcycles": motorcycles.build_spec,
    "clothing": clothing.build_spec,
    "cs_jobs": cs_jobs.build_spec,
    "furniture": furniture.build_spec,
    "food_coupons": food_coupons.build_spec,
    "instruments": instruments.build_spec,
    "jewellery": jewellery.build_spec,
}

DOMAIN_NAMES: tuple[str, ...] = tuple(_BUILDERS.keys())


def build_domain_spec(name: str) -> DomainSpec:
    """Build the spec for domain *name*; raise on unknown names."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise DataGenerationError(
            f"unknown ads domain {name!r}; available: {sorted(_BUILDERS)}"
        ) from None
    return builder()


def build_all_specs() -> dict[str, DomainSpec]:
    """Build all eight domain specs, keyed by name."""
    return {name: build_domain_spec(name) for name in DOMAIN_NAMES}
