"""Domain-specification dataclasses shared by all eight ads domains.

A :class:`DomainSpec` is everything the generators need to know about
one ads domain:

* the relational schema (with the paper's Type I/II/III labels);
* the product inventory — each :class:`Product` is a Type I identity
  (e.g. make+model) with a latent *group* (its market segment) and
  optional per-product numeric ranges (a BMW's price band differs from
  a Kia's);
* the Type II property vocabularies;
* *word clusters*: sets of semantically related property words, which
  drive both the synthetic corpus (so the WS-matrix learns them) and
  the latent similarity the simulated appraisers judge by;
* filler phrases for realistic ad text (also the classifier's training
  signal).

The specs deliberately share vocabulary across related domains (Honda
and Suzuki sell both cars and motorcycles, everything has a price), so
the classifier confusion the paper reports between Cars and
Motorcycles arises naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.schema import AttributeType, Column, ColumnKind, TableSchema
from repro.errors import DataGenerationError

__all__ = ["Product", "DomainSpec", "categorical", "numeric"]


def categorical(
    name: str,
    attribute_type: AttributeType,
    synonyms: tuple[str, ...] = (),
) -> Column:
    """Shorthand for a categorical column."""
    return Column(
        name=name,
        attribute_type=attribute_type,
        kind=ColumnKind.CATEGORICAL,
        synonyms=synonyms,
    )


def numeric(
    name: str,
    valid_range: tuple[float, float],
    unit_words: tuple[str, ...] = (),
    synonyms: tuple[str, ...] = (),
) -> Column:
    """Shorthand for a numeric (Type III) column."""
    return Column(
        name=name,
        attribute_type=AttributeType.TYPE_III,
        kind=ColumnKind.NUMERIC,
        unit_words=unit_words,
        synonyms=synonyms,
        valid_range=valid_range,
    )


@dataclass
class Product:
    """One Type I identity in a domain.

    Attributes
    ----------
    identity:
        Ordered mapping of Type I column -> value, e.g.
        ``{"make": "honda", "model": "accord"}``.
    group:
        Latent market segment ("midsize sedan", "cruiser", …).  Two
        products in the same group are *similar* in the ground-truth
        sense the appraisers judge by, and reformulation between them
        is common in the synthetic query log.
    popularity:
        Relative sampling weight in ads and questions.
    numeric_overrides:
        Per-product numeric ranges overriding the schema's global
        valid_range (e.g. the price band of this model).
    """

    identity: dict[str, str]
    group: str
    popularity: float = 1.0
    numeric_overrides: dict[str, tuple[float, float]] = field(default_factory=dict)

    def key(self) -> tuple[str, ...]:
        """The identity values as a hashable tuple."""
        return tuple(self.identity.values())

    def label(self) -> str:
        """Space-joined identity ("honda accord")."""
        return " ".join(self.identity.values())


@dataclass
class DomainSpec:
    """Complete specification of one ads domain."""

    name: str
    schema: TableSchema
    products: list[Product]
    type_ii_values: dict[str, list[str]]
    word_clusters: list[list[str]] = field(default_factory=list)
    filler_phrases: list[str] = field(default_factory=list)
    type_ii_missing_rate: float = 0.25

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        type_i_names = [column.name for column in self.schema.type_i_columns]
        for product in self.products:
            if list(product.identity.keys()) != type_i_names:
                raise DataGenerationError(
                    f"domain {self.name!r}: product {product.identity} does "
                    f"not match Type I columns {type_i_names}"
                )
            for column_name in product.numeric_overrides:
                column = self.schema.column(column_name)
                if not column.is_numeric:
                    raise DataGenerationError(
                        f"domain {self.name!r}: numeric override on "
                        f"non-numeric column {column_name!r}"
                    )
        for column_name in self.type_ii_values:
            column = self.schema.column(column_name)
            if column.attribute_type is not AttributeType.TYPE_II:
                raise DataGenerationError(
                    f"domain {self.name!r}: {column_name!r} is not Type II"
                )
        for column in self.schema.type_ii_columns:
            if column.name not in self.type_ii_values:
                raise DataGenerationError(
                    f"domain {self.name!r}: no values for Type II column "
                    f"{column.name!r}"
                )

    # ------------------------------------------------------------------
    @property
    def type_i_columns(self) -> list[str]:
        return [column.name for column in self.schema.type_i_columns]

    @property
    def numeric_columns(self) -> list[str]:
        return [column.name for column in self.schema.numeric_columns]

    def products_in_group(self, group: str) -> list[Product]:
        return [product for product in self.products if product.group == group]

    def groups(self) -> list[str]:
        seen: list[str] = []
        for product in self.products:
            if product.group not in seen:
                seen.append(product.group)
        return seen

    def numeric_range(
        self, column_name: str, product: Product | None = None
    ) -> tuple[float, float]:
        """Effective numeric range: product override or schema range."""
        if product is not None and column_name in product.numeric_overrides:
            return product.numeric_overrides[column_name]
        column = self.schema.column(column_name)
        if column.valid_range is None:
            raise DataGenerationError(
                f"domain {self.name!r}: column {column_name!r} has no range"
            )
        return column.valid_range

    def all_type_i_values(self, column_name: str) -> list[str]:
        """Distinct Type I values for one identity column, in spec order."""
        seen: list[str] = []
        for product in self.products:
            value = product.identity[column_name]
            if value not in seen:
                seen.append(value)
        return seen

    def vocabulary(self) -> set[str]:
        """Every word the domain can put in an ad or question."""
        words: set[str] = set()
        for product in self.products:
            for value in product.identity.values():
                words.update(value.split())
        for values in self.type_ii_values.values():
            for value in values:
                words.update(value.split())
        for phrase in self.filler_phrases:
            words.update(phrase.split())
        return words
