"""Motorcycles-for-Sale domain.

Deliberately shares makes (Honda, Suzuki, BMW), colors, and the
year/price/mileage numeric attributes with the Cars domain — that
overlap is what drives the Cars/Motorcycles classifier confusion the
paper reports in Section 5.2 (both domains land in the upper-80s while
the others reach the 90s).
"""

from __future__ import annotations

from repro.db.schema import AttributeType, TableSchema
from repro.datagen.vocab.base import DomainSpec, Product, categorical, numeric

__all__ = ["build_spec"]

_TI = AttributeType.TYPE_I
_TII = AttributeType.TYPE_II


def _schema() -> TableSchema:
    return TableSchema(
        table_name="motorcycle_ads",
        columns=[
            categorical("make", _TI, synonyms=("maker", "brand")),
            categorical("model", _TI),
            categorical("color", _TII, synonyms=("colour", "paint")),
            categorical("bike_type", _TII, synonyms=("type", "class")),
            categorical("condition", _TII),
            numeric("year", (1985, 2011), synonyms=("year",)),
            numeric(
                "price",
                (300, 40000),
                unit_words=("usd", "dollars", "dollar", "$", "bucks"),
                synonyms=("price", "cost", "priced", "asking"),
            ),
            numeric(
                "mileage",
                (0, 120000),
                unit_words=("miles", "mile", "mi"),
                synonyms=("mileage", "odometer"),
            ),
            numeric(
                "engine_cc",
                (50, 2300),
                unit_words=("cc", "cubic centimeters"),
                synonyms=("engine", "displacement"),
            ),
        ],
    )


def _products() -> list[Product]:
    def bike(
        make: str,
        model: str,
        group: str,
        price: tuple[float, float],
        cc: tuple[float, float],
        popularity: float = 1.0,
    ) -> Product:
        return Product(
            identity={"make": make, "model": model},
            group=group,
            popularity=popularity,
            numeric_overrides={"price": price, "engine_cc": cc},
        )

    return [
        # --- sport ------------------------------------------------------
        bike("honda", "cbr600", "sport", (2500, 11000), (599, 599), 1.8),
        bike("yamaha", "r6", "sport", (3000, 12000), (599, 599), 1.6),
        bike("suzuki", "gsxr750", "sport", (3000, 13000), (750, 750), 1.4),
        bike("kawasaki", "ninja", "sport", (2000, 12000), (250, 1000), 1.7),
        bike("ducati", "848", "sport", (7000, 16000), (848, 848), 0.7),
        # --- cruiser ----------------------------------------------------
        bike("harley davidson", "sportster", "cruiser", (3500, 12000), (883, 1200), 1.8),
        bike("harley davidson", "softail", "cruiser", (6000, 22000), (1450, 1690), 1.3),
        bike("honda", "shadow", "cruiser", (1800, 8000), (600, 1100), 1.4),
        bike("yamaha", "vstar", "cruiser", (2000, 9000), (650, 1300), 1.2),
        bike("suzuki", "boulevard", "cruiser", (2500, 10000), (800, 1800), 1.0),
        # --- touring ----------------------------------------------------
        bike("honda", "goldwing", "touring", (5000, 25000), (1500, 1832), 1.0),
        bike("bmw", "r1200rt", "touring", (7000, 22000), (1170, 1170), 0.8),
        bike("harley davidson", "electra glide", "touring", (8000, 26000), (1584, 1690), 0.9),
        bike("yamaha", "venture", "touring", (3000, 12000), (1300, 1300), 0.6),
        # --- dual sport -------------------------------------------------
        bike("kawasaki", "klr650", "dual sport", (2000, 7000), (650, 650), 1.0),
        bike("suzuki", "drz400", "dual sport", (2200, 7500), (400, 400), 0.9),
        bike("bmw", "gs1200", "dual sport", (8000, 20000), (1170, 1170), 0.8),
        bike("honda", "xr650", "dual sport", (1800, 6500), (650, 650), 0.7),
        # --- scooter ----------------------------------------------------
        bike("vespa", "gts", "scooter", (2000, 7000), (125, 300), 0.8),
        bike("honda", "ruckus", "scooter", (800, 3500), (50, 50), 0.9),
        bike("yamaha", "zuma", "scooter", (900, 3800), (50, 125), 0.7),
    ]


def build_spec() -> DomainSpec:
    """Build the Motorcycles-for-Sale :class:`DomainSpec`."""
    return DomainSpec(
        name="motorcycles",
        schema=_schema(),
        products=_products(),
        type_ii_values={
            "color": [
                "red", "blue", "black", "white", "silver", "green",
                "orange", "yellow", "grey",
            ],
            "bike_type": [
                "sport bike", "cruiser", "touring", "dual sport",
                "scooter", "chopper",
            ],
            "condition": ["excellent", "good", "fair", "project"],
        },
        word_clusters=[
            ["black", "grey", "silver"],
            ["red", "orange", "yellow"],
            ["blue", "green", "white"],
            ["sport", "cruiser", "touring", "chopper"],
            ["excellent", "good", "fair"],
        ],
        filler_phrases=[
            "garage kept", "adult owned", "never dropped", "new tires",
            "low miles", "runs great", "clean title", "saddle bags",
            "windshield", "sissy bar", "aftermarket exhaust",
            "recent service", "fresh oil", "new battery", "new chain",
            "helmet included", "lots of chrome", "fuel injected",
        ],
    )
