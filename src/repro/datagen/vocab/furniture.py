"""Furniture domain."""

from __future__ import annotations

from repro.db.schema import AttributeType, TableSchema
from repro.datagen.vocab.base import DomainSpec, Product, categorical, numeric

__all__ = ["build_spec"]

_TI = AttributeType.TYPE_I
_TII = AttributeType.TYPE_II


def _schema() -> TableSchema:
    return TableSchema(
        table_name="furniture_ads",
        columns=[
            categorical("item", _TI, synonyms=("piece",)),
            categorical("brand", _TI, synonyms=("maker",)),
            categorical("material", _TII),
            categorical("color", _TII, synonyms=("colour", "finish")),
            categorical("style", _TII),
            categorical("room", _TII, synonyms=("for",)),
            numeric(
                "price",
                (10, 3000),
                unit_words=("usd", "dollars", "dollar", "$", "bucks"),
                synonyms=("price", "cost", "priced", "asking"),
            ),
            numeric(
                "width_inches",
                (10, 120),
                unit_words=("inches", "inch", "in", "wide"),
                synonyms=("width",),
            ),
        ],
    )


def _products() -> list[Product]:
    def piece(
        item: str,
        brand: str,
        group: str,
        price: tuple[float, float],
        popularity: float = 1.0,
    ) -> Product:
        return Product(
            identity={"item": item, "brand": brand},
            group=group,
            popularity=popularity,
            numeric_overrides={"price": price},
        )

    return [
        # --- seating ------------------------------------------------------
        piece("sofa", "ikea", "seating", (80, 700), 1.8),
        piece("couch", "ashley", "seating", (120, 1200), 1.5),
        piece("loveseat", "lazboy", "seating", (100, 900), 1.0),
        piece("recliner", "lazboy", "seating", (90, 800), 1.2),
        piece("armchair", "pottery barn", "seating", (70, 600), 0.9),
        piece("sectional", "ashley", "seating", (250, 2500), 0.9),
        # --- tables ---------------------------------------------------------
        piece("dining table", "ikea", "tables", (60, 800), 1.3),
        piece("coffee table", "west elm", "tables", (40, 500), 1.4),
        piece("desk", "ikea", "tables", (40, 500), 1.5),
        piece("end table", "target", "tables", (15, 150), 0.9),
        piece("console table", "west elm", "tables", (50, 450), 0.6),
        # --- storage ---------------------------------------------------------
        piece("bookshelf", "ikea", "storage", (25, 300), 1.4),
        piece("dresser", "ashley", "storage", (60, 700), 1.3),
        piece("wardrobe", "ikea", "storage", (80, 900), 0.8),
        piece("cabinet", "pottery barn", "storage", (60, 800), 0.8),
        piece("tv stand", "walmart", "storage", (30, 300), 1.1),
        # --- bedroom ---------------------------------------------------------
        piece("bed frame", "ikea", "bedroom", (60, 800), 1.4),
        piece("mattress", "sealy", "bedroom", (100, 1500), 1.3),
        piece("nightstand", "ikea", "bedroom", (20, 250), 1.0),
        piece("bunk bed", "ashley", "bedroom", (150, 900), 0.6),
        # --- office -----------------------------------------------------------
        piece("office chair", "herman miller", "office", (50, 1200), 1.2),
        piece("standing desk", "uplift", "office", (150, 1200), 0.7),
        piece("filing cabinet", "staples", "office", (25, 250), 0.6),
    ]


def build_spec() -> DomainSpec:
    """Build the Furniture :class:`DomainSpec`."""
    return DomainSpec(
        name="furniture",
        schema=_schema(),
        products=_products(),
        type_ii_values={
            "material": [
                "wood", "oak", "pine", "metal", "glass", "leather",
                "fabric", "plastic", "marble",
            ],
            "color": [
                "black", "white", "brown", "grey", "beige", "walnut",
                "cherry", "natural", "espresso",
            ],
            "style": [
                "modern", "traditional", "rustic", "industrial",
                "mid century", "farmhouse", "contemporary",
            ],
            "room": [
                "living room", "bedroom", "dining room", "office",
                "kids room", "patio",
            ],
        },
        word_clusters=[
            ["wood", "oak", "pine", "walnut", "cherry"],
            ["metal", "glass", "marble", "industrial"],
            ["leather", "fabric"],
            ["brown", "beige", "natural", "espresso"],
            ["black", "grey", "white"],
            ["modern", "contemporary", "mid", "century"],
            ["traditional", "rustic", "farmhouse"],
        ],
        filler_phrases=[
            "like new", "barely used", "pet free home", "smoke free",
            "must pick up", "moving sale", "solid construction",
            "easy assembly", "scratch free", "very comfortable",
            "great condition", "downsizing", "original receipt",
            "delivery available", "sturdy build",
        ],
    )
