"""Ad-record generation: the synthetic stand-in for ebay.com data.

Section 4.1.4 of the paper seeds each domain with 500 ads scraped from
ads websites; Section 4.3.2 derives each numeric attribute's
``Attribute_Value_Range`` from ebay's 10 highest and 10 lowest values.
This module replaces both: :class:`AdsGenerator` samples realistic
records from a :class:`~repro.datagen.vocab.base.DomainSpec`, and
:class:`DomainDataset` computes the same top-10/bottom-10 range
statistic from the generated ads.

Correlations that matter to the experiments are preserved:

* price is drawn from the *product's* band (a BMW costs more than a
  Kia), skewed by vehicle age where a year column exists;
* mileage-like usage columns anti-correlate with year;
* each ad renders to a line of text (identity + properties + numbers +
  filler phrases) that trains the domain classifier and seeds the
  corpus generator.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.datagen.vocab import build_domain_spec
from repro.datagen.vocab.base import DomainSpec, Product
from repro.db.database import Database
from repro.db.table import Record, Table

__all__ = ["GeneratedAd", "AdsGenerator", "DomainDataset", "build_dataset"]

_USAGE_COLUMNS = ("mileage",)  # columns that anti-correlate with year


@dataclass
class GeneratedAd:
    """One synthetic ad: its record values, source product and text."""

    values: dict[str, object]
    product: Product
    text: str


class AdsGenerator:
    """Samples ads for one domain spec."""

    def __init__(self, spec: DomainSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self._weights = [product.popularity for product in spec.products]

    # ------------------------------------------------------------------
    def sample_product(self) -> Product:
        return self.rng.choices(self.spec.products, weights=self._weights, k=1)[0]

    def generate(self) -> GeneratedAd:
        """Generate one ad."""
        product = self.sample_product()
        values: dict[str, object] = dict(product.identity)
        for column in self.spec.schema.type_ii_columns:
            if self.rng.random() < self.spec.type_ii_missing_rate:
                continue
            values[column.name] = self.rng.choice(
                self.spec.type_ii_values[column.name]
            )
        self._fill_numeric(values, product)
        text = self._render_text(values)
        return GeneratedAd(values=values, product=product, text=text)

    def generate_many(self, count: int) -> list[GeneratedAd]:
        return [self.generate() for _ in range(count)]

    # ------------------------------------------------------------------
    def _fill_numeric(self, values: dict[str, object], product: Product) -> None:
        year_column = "year" if self.spec.schema.has_column("year") else None
        age_factor = None
        if year_column is not None:
            low, high = self.spec.numeric_range(year_column, product)
            year = self.rng.randint(int(low), int(high))
            values[year_column] = year
            age_factor = (year - low) / max(high - low, 1.0)  # 1.0 = newest
        for column in self.spec.schema.numeric_columns:
            if column.name == year_column:
                continue
            low, high = self.spec.numeric_range(column.name, product)
            base = self.rng.random()
            if age_factor is not None:
                if column.name in _USAGE_COLUMNS:
                    # older vehicles accumulate usage
                    base = 0.7 * (1.0 - age_factor) + 0.3 * base
                elif column.name == "price":
                    # newer vehicles hold value
                    base = 0.6 * age_factor + 0.4 * base
            value = low + base * (high - low)
            values[column.name] = round(value, 2) if high - low < 50 else int(value)

    def _render_text(self, values: dict[str, object]) -> str:
        """Render the ad as the free-text line a website would show."""
        parts: list[str] = []
        if "year" in values:
            parts.append(str(values["year"]))
        for column in self.spec.schema.type_i_columns:
            parts.append(str(values[column.name]))
        for column in self.spec.schema.type_ii_columns:
            value = values.get(column.name)
            if value is not None:
                parts.append(str(value))
        for column in self.spec.schema.numeric_columns:
            if column.name == "year":
                continue
            value = values.get(column.name)
            if value is None:
                continue
            unit = column.unit_words[0] if column.unit_words else column.name
            if unit == "$":
                parts.append(f"${value}")
            else:
                parts.append(f"{value} {unit}")
        filler_count = self.rng.randint(2, 4)
        if self.spec.filler_phrases:
            parts.extend(
                self.rng.sample(
                    self.spec.filler_phrases,
                    k=min(filler_count, len(self.spec.filler_phrases)),
                )
            )
        return ", ".join(parts)


@dataclass
class DomainDataset:
    """One domain's generated data, loaded into a table.

    Attributes
    ----------
    spec:
        The domain specification.
    table:
        The populated :class:`~repro.db.table.Table`.
    ads:
        The generated ads, aligned with the table's records
        (``ads[i]`` produced ``records[i]``).
    records:
        Inserted records in insertion order.
    value_ranges:
        Per numeric column: the paper's ebay-style
        ``Attribute_Value_Range`` — mean of the 10 largest values minus
        mean of the 10 smallest (Section 4.3.2).
    """

    spec: DomainSpec
    table: Table
    ads: list[GeneratedAd]
    records: list[Record]
    value_ranges: dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    def ad_texts(self) -> list[str]:
        return [ad.text for ad in self.ads]

    def product_of_record(self, record_id: int) -> Product:
        """The source product of a record (ground truth for appraisers)."""
        for record, ad in zip(self.records, self.ads):
            if record.record_id == record_id:
                return ad.product
        raise KeyError(f"no generated record with id {record_id}")

    def compute_value_ranges(self) -> None:
        """Compute the top-10/bottom-10 range statistic per Eq. 4."""
        self.value_ranges = {}
        for column in self.spec.schema.numeric_columns:
            values = sorted(
                float(record[column.name])
                for record in self.records
                if record.get(column.name) is not None
            )
            if not values:
                continue
            k = min(10, len(values))
            low_mean = sum(values[:k]) / k
            high_mean = sum(values[-k:]) / k
            span = high_mean - low_mean
            if span <= 0:
                # degenerate single-value column: fall back to spec range
                low, high = self.spec.numeric_range(column.name)
                span = high - low
            self.value_ranges[column.name] = span


def build_dataset(
    domain: str | DomainSpec,
    database: Database,
    ads_per_domain: int = 500,
    seed: int = 7,
    shards: int | None = None,
    partitioner=None,
    scatter_workers: int | None = None,
    scatter_mode: str | None = None,
) -> DomainDataset:
    """Generate *ads_per_domain* ads for *domain* into *database*.

    The default of 500 matches the paper's per-domain ad count
    (Section 4.1.4).  The table name comes from the domain schema.
    With ``shards`` the records load into a partitioned
    :class:`~repro.shard.table.ShardedTable` instead of a single
    table; generation is identical either way (same rng stream, same
    global record ids), so a sharded and an unsharded build of the
    same seed hold bit-identical data.
    """
    spec = domain if isinstance(domain, DomainSpec) else build_domain_spec(domain)
    # str hashes are salted per-process, so derive a stable per-domain
    # seed with crc32 instead of hash().
    rng = random.Random(seed ^ zlib.crc32(spec.name.encode()))
    generator = AdsGenerator(spec, rng)
    ads = generator.generate_many(ads_per_domain)
    table = database.create_table(
        spec.schema,
        shards=shards,
        partitioner=partitioner,
        scatter_workers=scatter_workers,
        scatter_mode=scatter_mode,
    )
    # insert_many notifies mutation listeners once for the whole seed
    # batch — on a warm system (lazy provisioning) per-row inserts
    # would run every cache-invalidation sweep per ad.
    records = table.insert_many(ad.values for ad in ads)
    dataset = DomainDataset(spec=spec, table=table, ads=ads, records=records)
    dataset.compute_value_ranges()
    return dataset
