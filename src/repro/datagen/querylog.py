"""Synthetic ads-search query logs (the TI-matrix's training data).

Section 4.3.2 of the paper builds the TI-matrix from "query logs
obtained from local ads search engines", where each session carries a
user ID, query texts, dates/times, and clicked documents with their
engine ranks.  No such log is publicly available, so this module
simulates one from the latent similarity model:

* a session starts at a product and *reformulates*: with high
  probability the next query targets a similar product (sampled
  proportionally to latent similarity), otherwise the user jumps
  somewhere unrelated;
* reformulations between similar products happen *faster* (users
  refine quickly, wander slowly);
* each query returns a ranked result list in which similar products
  rank higher (plus noise — the simulated engine is imperfect);
* users click results of similar products more, and dwell on them
  longer.

The TI-matrix learner sees only these observable fields — never the
latent model — so recovering the similarity structure is a genuine
learning task.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.datagen.latent import LatentSimilarity
from repro.datagen.vocab.base import DomainSpec, Product

__all__ = ["LogResult", "LoggedQuery", "Session", "QueryLogGenerator", "generate_query_log"]


@dataclass(frozen=True)
class LogResult:
    """One ranked result shown for a query."""

    product_key: tuple[str, ...]
    rank: int  # 1-based position assigned by the simulated engine
    clicked: bool
    dwell_seconds: float  # 0.0 when not clicked


@dataclass
class LoggedQuery:
    """One query within a session."""

    user_id: str
    timestamp: float  # seconds since session start
    text: str  # the query keywords ("honda accord")
    product_key: tuple[str, ...]
    results: list[LogResult] = field(default_factory=list)


@dataclass
class Session:
    """One user session: a period of sustained activity."""

    user_id: str
    queries: list[LoggedQuery] = field(default_factory=list)


class QueryLogGenerator:
    """Generates sessions for one domain."""

    def __init__(
        self,
        spec: DomainSpec,
        latent: LatentSimilarity,
        rng: random.Random,
        results_per_query: int = 10,
        reformulate_probability: float = 0.7,
    ) -> None:
        self.spec = spec
        self.latent = latent
        self.rng = rng
        self.results_per_query = results_per_query
        self.reformulate_probability = reformulate_probability
        self._weights = [product.popularity for product in spec.products]

    # ------------------------------------------------------------------
    def generate(self, n_sessions: int) -> list[Session]:
        return [self._session(index) for index in range(n_sessions)]

    # ------------------------------------------------------------------
    def _session(self, index: int) -> Session:
        user_id = f"user{index:06d}"
        session = Session(user_id=user_id)
        product = self._random_product()
        timestamp = 0.0
        n_queries = self.rng.randint(1, 5)
        for _ in range(n_queries):
            query = LoggedQuery(
                user_id=user_id,
                timestamp=timestamp,
                text=product.label(),
                product_key=product.key(),
            )
            query.results = self._results_for(product)
            session.queries.append(query)
            next_product = self._next_product(product)
            similarity = self.latent.product_similarity(
                product.key(), next_product.key()
            )
            # Similar reformulations come quickly; topic changes slowly.
            gap = 20.0 + 300.0 * (1.0 - similarity) + self.rng.uniform(0, 60)
            timestamp += gap
            product = next_product
        return session

    def _random_product(self) -> Product:
        return self.rng.choices(self.spec.products, weights=self._weights, k=1)[0]

    def _next_product(self, current: Product) -> Product:
        if self.rng.random() < self.reformulate_probability:
            weights = [
                self.latent.product_similarity(current.key(), candidate.key())
                + 0.01
                for candidate in self.spec.products
            ]
            return self.rng.choices(self.spec.products, weights=weights, k=1)[0]
        return self._random_product()

    def _results_for(self, queried: Product) -> list[LogResult]:
        """Ranked results: similar products float to the top, noisily."""
        scored = []
        for candidate in self.spec.products:
            similarity = self.latent.product_similarity(
                queried.key(), candidate.key()
            )
            scored.append((similarity + self.rng.gauss(0, 0.15), candidate))
        scored.sort(key=lambda pair: -pair[0])
        results: list[LogResult] = []
        for position, (noisy_score, candidate) in enumerate(
            scored[: self.results_per_query], start=1
        ):
            similarity = self.latent.product_similarity(
                queried.key(), candidate.key()
            )
            click_probability = similarity * 0.8 / position**0.5
            clicked = self.rng.random() < click_probability
            dwell = 0.0
            if clicked:
                dwell = 20.0 + 240.0 * similarity + self.rng.uniform(0, 30)
            results.append(
                LogResult(
                    product_key=candidate.key(),
                    rank=position,
                    clicked=clicked,
                    dwell_seconds=dwell,
                )
            )
        return results


def generate_query_log(
    spec: DomainSpec,
    latent: LatentSimilarity | None = None,
    n_sessions: int = 2000,
    seed: int = 11,
) -> list[Session]:
    """Generate a query log for *spec* with a stable per-domain seed."""
    latent = latent or LatentSimilarity(spec)
    rng = random.Random(seed ^ zlib.crc32(spec.name.encode()))
    generator = QueryLogGenerator(spec, latent, rng)
    return generator.generate(n_sessions)
