"""Synthetic document corpus (the WS-matrix's training data).

The paper builds its 54,625x54,625 word-similarity matrix from the
Wikipedia collection (Section 4.3.2), scoring word pairs by
co-occurrence frequency and relative distance.  This module generates
a topical corpus with the same statistical property the matrix
learner needs: *semantically related words co-occur often and close
together*.

Each document draws a topic — one of the domain word clusters — and
interleaves its words with filler text; unrelated cluster words only
meet by chance.  A WS-matrix built from this corpus therefore assigns
high similarity inside clusters ("black" ~ "grey") and low similarity
across them ("black" ~ "automatic"), which is what Feat_Sim consumes.
"""

from __future__ import annotations

import random
import zlib

from repro.datagen.vocab.base import DomainSpec

__all__ = ["CorpusGenerator", "generate_corpus"]

_GENERIC_FILLER = (
    "sale offer item listing great deal available today contact seller "
    "photo description posted local pickup buyer shipping condition "
    "details view ask question original owner"
).split()


class CorpusGenerator:
    """Generates topical documents for one or more domains."""

    def __init__(self, specs: list[DomainSpec], rng: random.Random) -> None:
        if not specs:
            raise ValueError("CorpusGenerator needs at least one DomainSpec")
        self.specs = specs
        self.rng = rng
        self._topics: list[list[str]] = []
        for spec in specs:
            for cluster in spec.word_clusters:
                words = [word.lower() for phrase in cluster for word in phrase.split()]
                if len(words) >= 2:
                    self._topics.append(words)
            # identity words of each product group form a topic too, so
            # "honda" and "accord" co-occur tightly
            for group in spec.groups():
                words = []
                for product in spec.products_in_group(group):
                    words.extend(product.label().split())
                if len(words) >= 2:
                    self._topics.append(words)

    # ------------------------------------------------------------------
    def document(self, length: int = 80) -> str:
        """One document: a topic's words interleaved with filler."""
        topic = self.rng.choice(self._topics)
        spec = self.rng.choice(self.specs)
        filler = list(_GENERIC_FILLER)
        for phrase in spec.filler_phrases[:10]:
            filler.extend(phrase.split())
        words: list[str] = []
        while len(words) < length:
            # Emit a burst of 2-4 topic words close together, then
            # some filler: closeness is what the WS-matrix rewards.
            burst = self.rng.randint(2, min(4, len(topic)))
            words.extend(self.rng.sample(topic, k=burst))
            words.extend(
                self.rng.choice(filler) for _ in range(self.rng.randint(2, 6))
            )
        return " ".join(words[:length])

    def generate(self, n_documents: int, length: int = 80) -> list[str]:
        return [self.document(length) for _ in range(n_documents)]


def generate_corpus(
    specs: list[DomainSpec],
    n_documents: int = 1500,
    seed: int = 13,
) -> list[str]:
    """Generate a corpus spanning *specs* with a stable seed."""
    tag = "|".join(spec.name for spec in specs)
    rng = random.Random(seed ^ zlib.crc32(tag.encode()))
    return CorpusGenerator(specs, rng).generate(n_documents)
