"""Noise channels for question generation.

Section 4.2 of the paper enumerates the errors users make: misspelled
keywords, forgotten spaces between keywords, missing attribute names
next to numbers, and shorthand notations.  Each channel here takes the
clean surface form and an ``random.Random`` and produces the noisy
variant, so the question generator can label exactly which corruption
it applied (the correction benchmarks need that ground truth).
"""

from __future__ import annotations

import random

__all__ = [
    "misspell",
    "drop_space",
    "to_shorthand",
    "number_to_shorthand",
]

_LETTERS = "abcdefghijklmnopqrstuvwxyz"
_VOWELS = set("aeiou")

# Adjacent keys on a QWERTY keyboard: substitutions users actually make.
_QWERTY_NEIGHBORS = {
    "a": "sq", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "ry", "u": "yi", "v": "cb", "w": "qe", "x": "zc",
    "y": "tu", "z": "x",
}


def misspell(word: str, rng: random.Random) -> str:
    """Return a single-edit misspelling of *word*.

    Edits mimic real typos: drop a letter, double a letter, swap two
    adjacent letters, or substitute a QWERTY neighbor.  The first
    character is never touched — users rarely mistype it, and the
    paper's trie-based corrector relies on a good prefix.  Words of
    three characters or fewer are returned unchanged (a one-character
    edit would destroy them).
    """
    if len(word) <= 3 or not word.isalpha():
        return word
    kind = rng.choice(("drop", "double", "swap", "substitute"))
    position = rng.randrange(1, len(word))
    if kind == "drop":
        return word[:position] + word[position + 1 :]
    if kind == "double":
        return word[:position] + word[position] + word[position:]
    if kind == "swap":
        if position == len(word) - 1:
            position -= 1
        if position < 1:
            return word
        return (
            word[:position]
            + word[position + 1]
            + word[position]
            + word[position + 2 :]
        )
    neighbors = _QWERTY_NEIGHBORS.get(word[position], _LETTERS)
    return word[:position] + rng.choice(neighbors) + word[position + 1 :]


def drop_space(phrase: str, rng: random.Random) -> str:
    """Remove one random space from *phrase* ("honda accord" -> "hondaaccord")."""
    positions = [i for i, ch in enumerate(phrase) if ch == " "]
    if not positions:
        return phrase
    position = rng.choice(positions)
    return phrase[:position] + phrase[position + 1 :]


def to_shorthand(value: str, rng: random.Random) -> str:
    """Produce a shorthand notation of *value* (Section 4.2.3).

    Keeps characters in order (the paper's invariant): either the first
    word's consonant skeleton ("door" -> "dr"), a truncation
    ("automatic" -> "auto"), or digits joined to the next word
    ("4 door" -> "4dr" / "4door").
    """
    words = value.lower().split()
    if len(words) > 1 and words[0].isdigit():
        rest = " ".join(words[1:])
        tail = _consonant_skeleton(rest) if rng.random() < 0.5 else rest.replace(" ", "")
        return words[0] + tail
    word = words[0]
    if len(word) > 5 and rng.random() < 0.5:
        short = word[:4]
    else:
        skeleton = _consonant_skeleton(word)
        short = skeleton if len(skeleton) >= 2 else word
    # Multi-word values keep their remaining words: users write
    # "lrg pizza", not "lrgpzz".
    if len(words) > 1:
        return " ".join([short] + words[1:])
    return short


def _consonant_skeleton(text: str) -> str:
    """First character plus subsequent consonants ("door" -> "dr")."""
    text = text.replace(" ", "")
    if not text:
        return text
    kept = [text[0]]
    kept.extend(ch for ch in text[1:] if ch not in _VOWELS and ch.isalpha())
    # Collapse doubled consonants; shorthand users don't repeat letters.
    collapsed = [kept[0]]
    for ch in kept[1:]:
        if ch != collapsed[-1]:
            collapsed.append(ch)
    return "".join(collapsed)


def number_to_shorthand(value: float, rng: random.Random) -> str:
    """Render a number the way users type it: "20k", "20,000" or "20000"."""
    value = float(value)
    style = rng.random()
    if value >= 1000 and value % 1000 == 0 and style < 0.4:
        return f"{int(value // 1000)}k"
    if value >= 1000 and style < 0.7:
        return f"{int(value):,}"
    if value == int(value):
        return str(int(value))
    return f"{value:g}"
