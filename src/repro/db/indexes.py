"""Index structures for the ads database.

Section 4.1.1 maps the attribute types onto index kinds: Type I columns
are primary-indexed, Type II columns secondary-indexed, Type III
columns range-searchable.  Section 4.5 adds "a primary MySQL substring
index of length 3 on all the attributes" to speed up substring
matching.  This module provides the three index families:

* :class:`HashIndex` — exact-match lookup for categorical values
  (primary and secondary indexes share the implementation; the
  distinction in the paper is about which columns get one);
* :class:`SortedIndex` — a sorted array with binary search for numeric
  range predicates and min/max superlatives;
* :class:`SubstringIndex` — length-``n`` (default 3) substring grams
  mapping to record ids, mirroring MySQL's prefix/substring index.

All indexes map values to sets of integer record ids; the
:class:`repro.db.table.Table` owns them and keeps them consistent on
insert/delete.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Iterable

__all__ = ["HashIndex", "NullIndex", "SortedIndex", "SubstringIndex"]


class NullIndex:
    """Ids whose column is NULL (absent key or explicit ``None``).

    The `!=` and NULL-semantics branches of the SQL executor used to
    re-scan the whole table to find NULL rows on every evaluation; this
    set makes that O(1).  Maintained by the table alongside the other
    index families on every insert/delete/update.
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._ids: set[int] = set()

    def add(self, record_id: int) -> None:
        self._ids.add(record_id)

    def discard(self, record_id: int) -> None:
        self._ids.discard(record_id)

    def ids(self) -> set[int]:
        """The live NULL-id set — callers must treat it as read-only."""
        return self._ids

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._ids

    def __len__(self) -> int:
        return len(self._ids)


class HashIndex:
    """Exact-match index: value -> set of record ids.

    Values are stored as given; the table lowercases categorical values
    before they get here, so lookups are effectively case-insensitive.
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._buckets: dict[object, set[int]] = defaultdict(set)

    def add(self, value: object, record_id: int) -> None:
        if value is not None:
            self._buckets[value].add(record_id)

    def remove(self, value: object, record_id: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(record_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: object) -> set[int]:
        """Record ids whose column equals *value* (empty set if none)."""
        return set(self._buckets.get(value, ()))

    def distinct_values(self) -> list[object]:
        """All distinct indexed values (used for supertuples in AIMQ)."""
        return list(self._buckets.keys())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """Sorted (value, record_id) pairs supporting range and extremes.

    Backed by parallel sorted lists; ``bisect`` gives O(log n) range
    boundaries.  Deletion is O(n) but the ads workload is append-mostly.
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._values: list[float] = []
        self._ids: list[int] = []

    def add(self, value: object, record_id: int) -> None:
        if value is None:
            return
        number = float(value)  # schema guarantees numeric
        position = bisect.bisect_left(self._values, number)
        # Among equal values keep ids ordered for deterministic output.
        while (
            position < len(self._values)
            and self._values[position] == number
            and self._ids[position] < record_id
        ):
            position += 1
        self._values.insert(position, number)
        self._ids.insert(position, record_id)

    def remove(self, value: object, record_id: int) -> None:
        if value is None:
            return
        number = float(value)
        position = bisect.bisect_left(self._values, number)
        while position < len(self._values) and self._values[position] == number:
            if self._ids[position] == record_id:
                del self._values[position]
                del self._ids[position]
                return
            position += 1

    # ------------------------------------------------------------------
    def range(
        self,
        low: float | None = None,
        high: float | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> set[int]:
        """Record ids with ``low (<|<=) value (<|<=) high``.

        ``None`` bounds are unbounded on that side.
        """
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._values, low)
        else:
            start = bisect.bisect_right(self._values, low)
        if high is None:
            stop = len(self._values)
        elif include_high:
            stop = bisect.bisect_right(self._values, high)
        else:
            stop = bisect.bisect_left(self._values, high)
        return set(self._ids[start:stop])

    def equal(self, value: float) -> set[int]:
        return self.range(value, value)

    def min_value(self) -> float | None:
        return self._values[0] if self._values else None

    def max_value(self) -> float | None:
        return self._values[-1] if self._values else None

    def min_ids(self) -> set[int]:
        """Ids of the records holding the minimum value."""
        minimum = self.min_value()
        return set() if minimum is None else self.equal(minimum)

    def max_ids(self) -> set[int]:
        maximum = self.max_value()
        return set() if maximum is None else self.equal(maximum)

    def __len__(self) -> int:
        return len(self._values)


class SubstringIndex:
    """Length-``n`` substring-gram index, the paper's length-3 index.

    Every contiguous length-``n`` substring (gram) of an indexed string
    maps to the set of record ids containing it.  A substring query of
    length >= ``n`` intersects the gram postings and then verifies the
    candidates; shorter queries fall back to scanning the indexed
    strings (the caller handles verification either way, so the index
    only needs to be complete, never exact).
    """

    def __init__(self, column: str, gram_length: int = 3) -> None:
        if gram_length < 1:
            raise ValueError("gram_length must be >= 1")
        self.column = column
        self.gram_length = gram_length
        self._grams: dict[str, set[int]] = defaultdict(set)
        self._values: dict[int, str] = {}

    def _grams_of(self, text: str) -> Iterable[str]:
        n = self.gram_length
        if len(text) < n:
            # index short strings under themselves so they stay findable
            yield text
            return
        for i in range(len(text) - n + 1):
            yield text[i : i + n]

    def add(self, value: object, record_id: int) -> None:
        if value is None:
            return
        text = str(value).lower()
        self._values[record_id] = text
        for gram in self._grams_of(text):
            self._grams[gram].add(record_id)

    def remove(self, value: object, record_id: int) -> None:
        text = self._values.pop(record_id, None)
        if text is None:
            return
        for gram in set(self._grams_of(text)):
            bucket = self._grams.get(gram)
            if bucket is not None:
                bucket.discard(record_id)
                if not bucket:
                    del self._grams[gram]

    def candidates(self, needle: str) -> set[int]:
        """Superset of record ids whose value contains *needle*.

        Complete but not exact: callers must verify with an actual
        substring test.  For needles shorter than the gram length every
        indexed record is a candidate.
        """
        needle = needle.lower()
        if len(needle) < self.gram_length:
            return set(self._values.keys())
        result: set[int] | None = None
        for gram in self._grams_of(needle):
            posting = self._grams.get(gram, set())
            result = posting if result is None else result & posting
            if not result:
                return set()
        return result or set()

    def search(self, needle: str) -> set[int]:
        """Record ids whose indexed value contains *needle* (verified)."""
        needle = needle.lower()
        return {
            record_id
            for record_id in self.candidates(needle)
            if needle in self._values[record_id]
        }

    def __len__(self) -> int:
        return len(self._values)
