"""Record storage for one ads domain, with automatic index maintenance.

A :class:`Table` owns the records of one ads domain and keeps three
index families consistent with them (Section 4.1.1 / 4.5 of the paper):

* a :class:`~repro.db.indexes.HashIndex` per Type I column (primary)
  and per Type II column (secondary);
* a :class:`~repro.db.indexes.SortedIndex` per numeric Type III column;
* a :class:`~repro.db.indexes.SubstringIndex` of length 3 per
  categorical column.

Records are plain dicts validated by the schema; each gets a stable
integer id on insert.

Every mutation (insert/delete/update) bumps the table's monotonically
increasing **epoch** and notifies registered listeners with a *typed
mutation delta* — :class:`InsertDelta`, :class:`RemoveDelta`,
:class:`UpdateDelta` (which carries the changed columns and their old/
new values) or :class:`BatchDelta` (the single event a bulk
``insert_many``/``remove_many`` emits, wrapping the per-row deltas).
All deltas subclass :class:`MutationEvent`, so epoch-only listeners
keep working unchanged; delta-aware caches use the payload to *patch*
their state in place instead of rebuilding it (column stores, fragment
id-sets — see ``PERFORMANCE.md`` for the incremental-maintenance
contract).  Epochs still version every cache: a cache entry keyed on
the epoch it was computed at can never be served stale, and the
rebuild path remains the fallback for any delta a structure cannot
absorb.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.db.indexes import HashIndex, NullIndex, SortedIndex, SubstringIndex
from repro.db.schema import AttributeType, TableSchema
from repro.errors import RecordNotFoundError, SchemaError

__all__ = [
    "BatchDelta",
    "InsertDelta",
    "MutationEvent",
    "Record",
    "RemoveDelta",
    "Table",
    "UpdateDelta",
]


@dataclass(frozen=True)
class MutationEvent:
    """One table mutation, as delivered to epoch listeners.

    ``kind`` is ``"insert"``, ``"delete"`` or ``"update"``; ``epoch``
    is the table's epoch *after* the mutation.  Listeners run
    synchronously on the mutating thread, after indexes are consistent.

    Concrete events are always one of the typed subclasses below; the
    base class survives as the common surface (and for hand-built
    events in tests).  ``shard_index``/``shard_epoch`` are ``None`` on
    plain-table events; a :class:`repro.shard.table.ShardedTable`
    re-stamps relayed shard events with the facade table, the facade's
    aggregate epoch, the owning shard's index and that shard's own
    post-mutation epoch, so shard-granular caches can patch exactly
    the state that moved.
    """

    table: "Table"
    kind: str
    record_id: int
    epoch: int
    shard_index: int | None = None
    shard_epoch: int | None = None


@dataclass(frozen=True)
class InsertDelta(MutationEvent):
    """A single inserted row; ``record`` is the stored (live) record."""

    record: Record | None = None


@dataclass(frozen=True)
class RemoveDelta(MutationEvent):
    """A single deleted row; ``record`` is the removed record object
    (already popped from the table, so it can no longer change)."""

    record: Record | None = None


@dataclass(frozen=True)
class UpdateDelta(MutationEvent):
    """A single in-place update.

    ``changed_columns`` lists exactly the columns whose normalized
    stored value differs from before; ``old_values``/``new_values``
    hold those columns' values on either side of the update (immutable
    snapshots — unlike ``record``, which is the live object and keeps
    mutating on later updates).  An update that changes nothing still
    bumps the epoch and carries an empty ``changed_columns``.
    """

    changed_columns: tuple[str, ...] = ()
    old_values: dict[str, object] = field(default_factory=dict)
    new_values: dict[str, object] = field(default_factory=dict)
    record: Record | None = None


@dataclass(frozen=True)
class BatchDelta(MutationEvent):
    """The single event a bulk mutation emits for its whole batch.

    ``deltas`` holds the per-row typed deltas in application order
    (each carrying its own post-row epoch, so consumers can replay the
    batch delta-by-delta); ``record_id``/``epoch`` are the last row's
    id and the final epoch, preserving the pre-delta bulk contract.
    """

    deltas: tuple[MutationEvent, ...] = ()

    @property
    def record_ids(self) -> tuple[int, ...]:
        """The affected row ids, in application order."""
        return tuple(delta.record_id for delta in self.deltas)


class _BatchProgress:
    """Mutable cursor a bulk mutation advances row by row; the batch
    scope emits one :class:`BatchDelta` when at least one row landed
    (even when a later row raised)."""

    __slots__ = ("last_id",)

    def __init__(self) -> None:
        self.last_id: int | None = None


@contextmanager
def batch_notifications(table, kind: str):
    """Suppress *table*'s per-row notifications for the scope, then
    emit the collected row deltas as one :class:`BatchDelta`.

    Shared by :meth:`Table.insert_many`/:meth:`Table.remove_many` and
    the :class:`repro.shard.table.ShardedTable` bulk methods — *table*
    only needs the ``_pending_deltas`` list, the
    ``_suppressed_notifications`` counter, an ``_emit_batch(delta)``
    dispatcher and the ``epoch`` property.  The per-row epoch still
    advances inside the scope (versioned caches see every state); the
    single event carries the last landed id, the final epoch, and the
    per-row deltas for consumers that patch.  Nested scopes slice
    their own rows, and an exception mid-batch still announces the
    rows that landed before it.
    """
    mark = len(table._pending_deltas)
    table._suppressed_notifications += 1
    progress = _BatchProgress()
    try:
        yield progress
    finally:
        table._suppressed_notifications -= 1
        deltas = tuple(table._pending_deltas[mark:])
        del table._pending_deltas[mark:]
        if progress.last_id is not None:
            table._emit_batch(
                BatchDelta(
                    table, kind, progress.last_id, table.epoch, deltas=deltas
                )
            )


class Record(dict):
    """One ad: a dict of column -> value plus a stable ``record_id``."""

    __slots__ = ("record_id",)

    def __init__(self, record_id: int, values: dict[str, object]) -> None:
        super().__init__(values)
        self.record_id = record_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Record(#{self.record_id}, {dict(self)!r})"


class Table:
    """Storage plus indexes for one ads domain."""

    def __init__(self, schema: TableSchema, substring_gram: int = 3) -> None:
        self.schema = schema
        self.name = schema.table_name
        self._records: dict[int, Record] = {}
        self._next_id = 1
        self._epoch = 0
        self._listeners: list[Callable[[MutationEvent], None]] = []
        self._suppressed_notifications = 0
        #: Row deltas collected while notifications are suppressed
        #: (bulk mutations); the batch emits them as one BatchDelta.
        self._pending_deltas: list[MutationEvent] = []
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        self._substring_indexes: dict[str, SubstringIndex] = {}
        #: Per-column NULL-id sets (every schema column), so `!=`
        #: complements and NULL-semantics checks never re-scan.
        self._null_indexes: dict[str, NullIndex] = {
            column.name: NullIndex(column.name) for column in schema.columns
        }
        for column in schema.columns:
            if column.is_numeric:
                self._sorted_indexes[column.name] = SortedIndex(column.name)
            else:
                if column.attribute_type in (
                    AttributeType.TYPE_I,
                    AttributeType.TYPE_II,
                ):
                    self._hash_indexes[column.name] = HashIndex(column.name)
                self._substring_indexes[column.name] = SubstringIndex(
                    column.name, substring_gram
                )

    # ------------------------------------------------------------------
    # epoch and listeners
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonically increasing mutation counter (never reused).

        Any insert, delete or update bumps it, so a cache keyed on
        ``(table, epoch)`` can never serve data from a different table
        state.
        """
        return self._epoch

    def add_listener(self, listener: Callable[[MutationEvent], None]) -> None:
        """Call *listener* after every mutation of this table."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[MutationEvent], None]) -> None:
        """Detach *listener*; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _emit(self, delta: MutationEvent) -> None:
        """Deliver *delta* to listeners, or queue it for the batch.

        While a bulk mutation suppresses notifications, per-row deltas
        accumulate instead of firing; the bulk method wraps them into
        one :class:`BatchDelta` when it finishes.
        """
        if self._suppressed_notifications:
            self._pending_deltas.append(delta)
            return
        if not self._listeners:
            return
        for listener in list(self._listeners):
            listener(delta)

    #: How :func:`batch_notifications` dispatches the batch event (the
    #: suppression-aware path, so a nested outer batch collects it).
    _emit_batch = _emit

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(
        self, values: dict[str, object], record_id: int | None = None
    ) -> Record:
        """Validate *values*, assign an id, index and store the record.

        ``record_id`` lets a coordinating layer impose externally
        assigned ids — the sharding facade
        (:class:`repro.shard.ShardedTable`) allocates globally
        sequential ids and routes each record to one shard, so shard
        tables must store the global id rather than mint their own.
        The id must be unused; ``_next_id`` advances past it so later
        auto-assigned ids never collide.
        """
        if record_id is None:
            record_id = self._next_id
        elif record_id in self._records:
            raise SchemaError(
                f"table {self.name!r} already has a record #{record_id}"
            )
        normalized = self.schema.validate_record(values)
        record = Record(record_id, normalized)
        self._next_id = max(self._next_id, record_id + 1)
        self._records[record.record_id] = record
        self._index_record(record, add=True)
        self._epoch += 1
        if self._listeners:
            self._emit(
                InsertDelta(
                    self, "insert", record.record_id, self._epoch, record=record
                )
            )
        return record

    def insert_many(self, rows: Iterable[dict[str, object]]) -> list[Record]:
        """Insert *rows*, notifying listeners **once** for the batch.

        The epoch still advances per row (versioned caches see every
        state), but cache-maintenance listeners — each at least an
        O(cache) sweep — run once instead of once per row, so bulk
        loads on a warm system stay linear.  The single
        :class:`BatchDelta` carries the last inserted id, the final
        epoch, and the per-row deltas for consumers that patch.
        """
        inserted: list[Record] = []
        with batch_notifications(self, "insert") as batch:
            for row in rows:
                inserted.append(self.insert(row))
                batch.last_id = inserted[-1].record_id
        return inserted

    def delete(self, record_id: int) -> None:
        """Remove the record with *record_id*; raise if absent."""
        record = self._records.pop(record_id, None)
        if record is None:
            raise RecordNotFoundError(self.name, record_id, "delete")
        self._index_record(record, add=False)
        self._epoch += 1
        if self._listeners:
            self._emit(
                RemoveDelta(
                    self, "delete", record_id, self._epoch, record=record
                )
            )

    def remove_many(self, record_ids: Iterable[int]) -> int:
        """Delete *record_ids*, notifying listeners **once** for the batch.

        The bulk counterpart of :meth:`insert_many`: the epoch still
        advances per row, but the O(cache) maintenance listeners run
        once for the whole batch instead of once per deleted record.
        Unknown ids raise (like :meth:`delete`) after the rows deleted
        so far have been notified.  Returns the number of records
        removed; an empty batch notifies nobody.
        """
        removed = 0
        with batch_notifications(self, "delete") as batch:
            for record_id in record_ids:
                self.delete(record_id)
                removed += 1
                batch.last_id = record_id
        return removed

    def update(self, record_id: int, values: dict[str, object]) -> Record:
        """Merge *values* into an existing record, revalidate, reindex.

        The record keeps its id and identity (it is mutated in place),
        so references held elsewhere observe the new values.  The
        emitted :class:`UpdateDelta` carries exactly the columns whose
        normalized value changed (with old and new values), so
        delta-aware caches patch the touched slots instead of
        rebuilding; a missing *record_id* raises
        :class:`~repro.errors.RecordNotFoundError`.
        """
        record = self._records.get(record_id)
        if record is None:
            raise RecordNotFoundError(self.name, record_id, "update")
        merged = dict(record)
        merged.update(values)
        normalized = self.schema.validate_record(merged)
        changed = tuple(
            column
            for column, value in normalized.items()
            if record.get(column) != value
        )
        old_values = {column: record.get(column) for column in changed}
        new_values = {column: normalized[column] for column in changed}
        self._index_record(record, add=False)
        record.clear()
        record.update(normalized)
        self._index_record(record, add=True)
        self._epoch += 1
        if self._listeners:
            self._emit(
                UpdateDelta(
                    self,
                    "update",
                    record_id,
                    self._epoch,
                    changed_columns=changed,
                    old_values=old_values,
                    new_values=new_values,
                    record=record,
                )
            )
        return record

    def _index_record(self, record: Record, add: bool) -> None:
        # NULL tracking must sweep the schema, not the record: a NULL
        # can be an absent key, which record.items() never yields.
        for column_name, null_index in self._null_indexes.items():
            if record.get(column_name) is None:
                (null_index.add if add else null_index.discard)(
                    record.record_id
                )
        for column_name, value in record.items():
            hash_index = self._hash_indexes.get(column_name)
            if hash_index is not None:
                (hash_index.add if add else hash_index.remove)(
                    value, record.record_id
                )
            sorted_index = self._sorted_indexes.get(column_name)
            if sorted_index is not None:
                (sorted_index.add if add else sorted_index.remove)(
                    value, record.record_id
                )
            substring_index = self._substring_indexes.get(column_name)
            if substring_index is not None:
                (substring_index.add if add else substring_index.remove)(
                    value, record.record_id
                )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def get(self, record_id: int) -> Record | None:
        return self._records.get(record_id)

    def snapshot(self) -> list[Record]:
        """A point-in-time list of the records (insertion order).

        ``list(dict.values())`` copies in one C-level step under the
        GIL, so — unlike plain iteration — a concurrent insert/delete
        cannot raise "dictionary changed size during iteration".
        Readers that scan while another thread mutates (the column
        store rebuild) use this instead of ``__iter__``.
        """
        return list(self._records.values())

    def fetch(self, record_ids: Iterable[int]) -> list[Record]:
        """Records for *record_ids*, sorted by id for determinism."""
        return [
            self._records[record_id]
            for record_id in sorted(record_ids)
            if record_id in self._records
        ]

    def all_ids(self) -> set[int]:
        return set(self._records.keys())

    def null_ids(self, column_name: str) -> set[int]:
        """Ids whose *column_name* is NULL (absent or ``None``).

        Returns the **live** index set for speed — callers must treat
        it as read-only and copy before mutating or storing it.
        """
        index = self._null_indexes.get(column_name)
        return index.ids() if index is not None else set()

    # ------------------------------------------------------------------
    # index-backed lookups (used by the SQL executor's planner)
    # ------------------------------------------------------------------
    def lookup_equal(self, column_name: str, value: object) -> set[int]:
        """Ids with ``column == value`` via the best available index."""
        column = self.schema.column(column_name)
        if column.is_numeric:
            index = self._sorted_indexes[column.name]
            try:
                return index.equal(float(value))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return set()
        normalized = str(value).lower()
        hash_index = self._hash_indexes.get(column.name)
        if hash_index is not None:
            return hash_index.lookup(normalized)
        # Categorical column without a hash index (not Type I/II):
        # fall back to the substring index with exact verification.
        substring_index = self._substring_indexes.get(column.name)
        if substring_index is not None:
            return {
                record_id
                for record_id in substring_index.search(normalized)
                if self._records[record_id].get(column.name) == normalized
            }
        return self.scan(lambda record: record.get(column.name) == normalized)

    def lookup_range(
        self,
        column_name: str,
        low: float | None,
        high: float | None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> set[int]:
        """Ids with the numeric column inside the given range."""
        column = self.schema.column(column_name)
        if not column.is_numeric:
            raise SchemaError(
                f"range lookup on non-numeric column {column_name!r}"
            )
        return self._sorted_indexes[column.name].range(
            low, high, include_low, include_high
        )

    def lookup_substring(self, column_name: str, needle: str) -> set[int]:
        """Ids whose categorical column contains *needle* (length-3 index)."""
        index = self._substring_indexes.get(column_name.lower())
        if index is None:
            needle = needle.lower()
            return self.scan(
                lambda record: needle in str(record.get(column_name.lower(), ""))
            )
        return index.search(needle)

    def column_extreme(self, column_name: str, maximum: bool) -> set[int]:
        """Ids of records holding the min (or max) of a numeric column."""
        index = self._sorted_indexes.get(column_name.lower())
        if index is None:
            raise SchemaError(
                f"superlative on non-numeric column {column_name!r}"
            )
        return index.max_ids() if maximum else index.min_ids()

    def column_bounds(self, column_name: str) -> tuple[float, float] | None:
        """Observed (min, max) of a numeric column, or ``None`` if empty.

        The incomplete-question analysis (Section 4.2.2) uses these
        bounds as the "valid range" of each Type III attribute.
        """
        index = self._sorted_indexes.get(column_name.lower())
        if index is None or len(index) == 0:
            return None
        minimum = index.min_value()
        maximum = index.max_value()
        assert minimum is not None and maximum is not None
        return minimum, maximum

    def distinct_values(self, column_name: str) -> list[object]:
        """Distinct values of a column (via index when available)."""
        column = self.schema.column(column_name)
        hash_index = self._hash_indexes.get(column.name)
        if hash_index is not None:
            return sorted(hash_index.distinct_values(), key=str)
        seen = {record.get(column.name) for record in self}
        seen.discard(None)
        return sorted(seen, key=str)

    def scan(self, predicate: Callable[[Record], bool]) -> set[int]:
        """Full scan: ids of records satisfying *predicate*."""
        return {
            record.record_id for record in self._records.values() if predicate(record)
        }
