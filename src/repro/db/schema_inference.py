"""Automated database schema generation (future work item (ii) of the
paper's Section 6).

Given raw ad dictionaries scraped from a website, infer the
:class:`~repro.db.schema.TableSchema` CQAds needs — including the
Type I/II/III classification of Section 4.1.1:

* a column whose values are (almost) all numeric becomes a **Type III**
  numeric column, with its valid range taken from the data;
* categorical columns present in *every* ad are Type I candidates —
  the paper defines Type I values as "required values to be included
  in an ad"; among the candidates, the ones with the highest value
  diversity (they identify the product rather than describe it) are
  selected, up to ``max_type_i``;
* every other categorical column is **Type II** (descriptive,
  optional).

Unit words and synonyms cannot be inferred from values alone; the
caller can pass ``unit_hints`` (column -> unit words) and the inferrer
also recognizes a few universal money/mileage column names.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.schema import AttributeType, Column, ColumnKind, TableSchema
from repro.errors import DataGenerationError

__all__ = ["ColumnProfile", "profile_columns", "infer_schema"]

#: Columns whose names imply a well-known unit vocabulary.
_KNOWN_UNITS: dict[str, tuple[str, ...]] = {
    "price": ("usd", "dollars", "dollar", "$"),
    "salary": ("usd", "dollars", "dollar", "$", "a year"),
    "cost": ("usd", "dollars", "dollar", "$"),
    "mileage": ("miles", "mile", "mi"),
    "miles": ("miles", "mile", "mi"),
}

#: Fraction of non-null values that must parse as numbers for a column
#: to be classified numeric (tolerates a little scraping noise).
_NUMERIC_THRESHOLD = 0.9


@dataclass
class ColumnProfile:
    """Observed statistics for one raw column."""

    name: str
    total: int = 0
    present: int = 0
    numeric: int = 0
    distinct: set = None  # type: ignore[assignment]
    numeric_min: float | None = None
    numeric_max: float | None = None

    def __post_init__(self) -> None:
        if self.distinct is None:
            self.distinct = set()

    @property
    def presence_ratio(self) -> float:
        return self.present / self.total if self.total else 0.0

    @property
    def numeric_ratio(self) -> float:
        return self.numeric / self.present if self.present else 0.0

    @property
    def cardinality(self) -> int:
        return len(self.distinct)

    def observe(self, value: object) -> None:
        self.total += 1
        if value is None or (isinstance(value, str) and not value.strip()):
            return
        self.present += 1
        number = _as_number(value)
        if number is not None:
            self.numeric += 1
            if self.numeric_min is None or number < self.numeric_min:
                self.numeric_min = number
            if self.numeric_max is None or number > self.numeric_max:
                self.numeric_max = number
            self.distinct.add(number)
        else:
            self.distinct.add(str(value).strip().lower())


def _as_number(value: object) -> float | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip().replace(",", "").lstrip("$")
        try:
            return float(text)
        except ValueError:
            return None
    return None


def profile_columns(records: list[dict[str, object]]) -> dict[str, ColumnProfile]:
    """Profile every column appearing in *records*.

    A key absent from a record counts as a missing value for that
    column (the paper's optional Type II attributes).
    """
    if not records:
        raise DataGenerationError("cannot infer a schema from zero records")
    names: list[str] = []
    for record in records:
        for key in record:
            if key not in names:
                names.append(key)
    profiles = {name: ColumnProfile(name=name) for name in names}
    for record in records:
        for name in names:
            profiles[name].observe(record.get(name))
    return profiles


def infer_schema(
    records: list[dict[str, object]],
    table_name: str,
    max_type_i: int = 2,
    unit_hints: dict[str, tuple[str, ...]] | None = None,
) -> TableSchema:
    """Infer a CQAds table schema from raw ad dictionaries.

    Raises :class:`~repro.errors.DataGenerationError` when no column
    qualifies as a Type I identity (every ad needs one).
    """
    profiles = profile_columns(records)
    unit_hints = dict(unit_hints or {})
    columns: list[Column] = []
    numeric_names: list[str] = []
    type_i_candidates: list[ColumnProfile] = []
    for profile in profiles.values():
        name = profile.name.strip().lower().replace(" ", "_")
        if profile.present and profile.numeric_ratio >= _NUMERIC_THRESHOLD:
            numeric_names.append(name)
            continue
        if profile.presence_ratio >= 1.0 and profile.cardinality >= 2:
            type_i_candidates.append(profile)
    if not type_i_candidates:
        raise DataGenerationError(
            f"no column of {table_name!r} is present in every ad; "
            "cannot choose a Type I identity"
        )
    # Highest-diversity always-present columns identify the product.
    type_i_candidates.sort(key=lambda p: (-p.cardinality, p.name))
    chosen = type_i_candidates[:max_type_i]
    # (candidates beyond max_type_i fall through to Type II below)
    # Preserve the original column order for readability: Type I first.
    original_order = list(profiles)
    chosen_names = {p.name for p in chosen}

    def clean(name: str) -> str:
        return name.strip().lower().replace(" ", "_")

    for profile in sorted(chosen, key=lambda p: original_order.index(p.name)):
        columns.append(
            Column(clean(profile.name), AttributeType.TYPE_I)
        )
    for profile in profiles.values():
        name = clean(profile.name)
        if profile.name in chosen_names:
            continue
        if name in numeric_names:
            low = profiles[profile.name].numeric_min or 0.0
            high = profiles[profile.name].numeric_max or low
            units = unit_hints.get(name, _KNOWN_UNITS.get(name, ()))
            columns.append(
                Column(
                    name,
                    AttributeType.TYPE_III,
                    ColumnKind.NUMERIC,
                    unit_words=tuple(units),
                    synonyms=(name.replace("_", " "),),
                    valid_range=(low, high),
                )
            )
        else:
            columns.append(Column(name, AttributeType.TYPE_II))
    return TableSchema(table_name=table_name, columns=columns)
