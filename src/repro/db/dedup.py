"""Near-duplicate ad detection (future work item (iv) of Section 6).

Ads websites carry reposts: the same car listed twice with a slightly
different price or a retyped description.  The paper lists
"de-duplication of data to remove similar data records from a DB" as
future work; this module implements it over the Type I/II/III model:

* records are *blocked* by their Type I identity (two ads for
  different products are never duplicates), keeping the comparison
  near-linear;
* within a block, two records are duplicates when every Type II value
  matches (missing values are wildcards) and every numeric value is
  within ``numeric_tolerance`` of the attribute's observed range.

``find_duplicate_groups`` reports the groups; ``deduplicate`` removes
all but the earliest record of each group.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.db.table import Record, Table

__all__ = ["DuplicateGroup", "find_duplicate_groups", "deduplicate"]

DEFAULT_TOLERANCE = 0.02  # 2% of the column's observed range


@dataclass(frozen=True)
class DuplicateGroup:
    """One set of mutually-duplicate records (ids ascending)."""

    record_ids: tuple[int, ...]

    @property
    def keeper(self) -> int:
        """The record that survives deduplication (the earliest)."""
        return self.record_ids[0]

    @property
    def removable(self) -> tuple[int, ...]:
        return self.record_ids[1:]


def _identity_key(table: Table, record: Record) -> tuple[str, ...]:
    return tuple(
        str(record.get(column.name, "") or "")
        for column in table.schema.type_i_columns
    )


def _numeric_tolerances(table: Table, fraction: float) -> dict[str, float]:
    tolerances: dict[str, float] = {}
    for column in table.schema.numeric_columns:
        bounds = table.column_bounds(column.name)
        span = (bounds[1] - bounds[0]) if bounds else 0.0
        tolerances[column.name] = max(span * fraction, 1e-9)
    return tolerances


def _same_ad(
    table: Table,
    a: Record,
    b: Record,
    tolerances: dict[str, float],
) -> bool:
    for column in table.schema.type_ii_columns:
        value_a = a.get(column.name)
        value_b = b.get(column.name)
        if value_a is None or value_b is None:
            continue  # a missing property never contradicts
        if value_a != value_b:
            return False
    for column in table.schema.numeric_columns:
        value_a = a.get(column.name)
        value_b = b.get(column.name)
        if value_a is None or value_b is None:
            continue
        if abs(float(value_a) - float(value_b)) > tolerances[column.name]:
            return False
    return True


def find_duplicate_groups(
    table: Table, numeric_tolerance: float = DEFAULT_TOLERANCE
) -> list[DuplicateGroup]:
    """All near-duplicate groups in *table*, smallest keeper id first."""
    blocks: dict[tuple[str, ...], list[Record]] = defaultdict(list)
    for record in table:
        blocks[_identity_key(table, record)].append(record)
    tolerances = _numeric_tolerances(table, numeric_tolerance)
    groups: list[DuplicateGroup] = []
    for block in blocks.values():
        if len(block) < 2:
            continue
        block.sort(key=lambda record: record.record_id)
        assigned: set[int] = set()
        for i, seed in enumerate(block):
            if seed.record_id in assigned:
                continue
            members = [seed.record_id]
            for other in block[i + 1 :]:
                if other.record_id in assigned:
                    continue
                if _same_ad(table, seed, other, tolerances):
                    members.append(other.record_id)
                    assigned.add(other.record_id)
            if len(members) > 1:
                assigned.add(seed.record_id)
                groups.append(DuplicateGroup(tuple(members)))
    groups.sort(key=lambda group: group.keeper)
    return groups


def deduplicate(
    table: Table, numeric_tolerance: float = DEFAULT_TOLERANCE
) -> int:
    """Remove near-duplicates from *table*; returns the removal count.

    Deletion goes through :meth:`~repro.db.table.Table.remove_many`,
    so cache-invalidation listeners run once for the whole sweep
    instead of once per removed record.
    """
    return table.remove_many(
        record_id
        for group in find_duplicate_groups(table, numeric_tolerance)
        for record_id in group.removable
    )
