"""The database catalog: named tables, one per ads domain."""

from __future__ import annotations

from typing import Iterator

from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.errors import UnknownTableError

__all__ = ["Database"]


class Database:
    """A named collection of :class:`~repro.db.table.Table` objects.

    The paper stores "a table in the DB for each domain"
    (Section 4.1); this catalog is what the SQL executor resolves
    table names against.  Names are case-insensitive, and spaces are
    treated as underscores so the paper's ``Car Ads`` example resolves
    to a ``car_ads`` table.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    @staticmethod
    def _canonical(name: str) -> str:
        return name.strip().lower().replace(" ", "_")

    def create_table(self, schema: TableSchema, substring_gram: int = 3) -> Table:
        """Create and register a table for *schema*; name must be new."""
        name = self._canonical(schema.table_name)
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(schema, substring_gram=substring_gram)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        canonical = self._canonical(name)
        if canonical not in self._tables:
            raise UnknownTableError(name)
        del self._tables[canonical]

    def table(self, name: str) -> Table:
        canonical = self._canonical(name)
        try:
            return self._tables[canonical]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return self._canonical(name) in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables.keys())

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
