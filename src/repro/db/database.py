"""The database catalog: named tables, one per ads domain."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.db.schema import TableSchema
from repro.db.table import MutationEvent, Table
from repro.errors import UnknownTableError

__all__ = ["Database"]


class Database:
    """A named collection of :class:`~repro.db.table.Table` objects.

    The paper stores "a table in the DB for each domain"
    (Section 4.1); this catalog is what the SQL executor resolves
    table names against.  Names are case-insensitive, and spaces are
    treated as underscores so the paper's ``Car Ads`` example resolves
    to a ``car_ads`` table.

    Catalog-level mutation listeners (:meth:`add_listener`) receive
    every table's :class:`~repro.db.table.MutationEvent`, including
    tables created after subscription — this is what the fragment,
    plan and answer caches hang their auto-invalidation on.

    An optional storage backend (``storage=`` /
    :meth:`attach_storage`) observes the same stream plus a
    table-creation hook and makes it durable; the default stays pure
    in-memory (see :mod:`repro.store`).
    """

    def __init__(self, storage=None) -> None:
        self._tables: dict[str, Table] = {}
        #: The durability backend, or ``None`` for pure in-memory.
        self._storage = None
        #: Catalog-level listeners, attached to every current and
        #: future table.  The default plan cache's hygiene hook is
        #: always present: plans hold no table data (invalidation is
        #: never *required*), but dropping statements that read a
        #: mutated table keeps the contract uniform across caches.
        self._listeners: list[Callable[[MutationEvent], None]] = [
            _drop_default_plans
        ]
        if storage is not None:
            self.attach_storage(storage)

    @staticmethod
    def _canonical(name: str) -> str:
        return name.strip().lower().replace(" ", "_")

    @property
    def storage(self):
        """The attached storage backend, or ``None`` (in-memory)."""
        return self._storage

    def attach_storage(self, storage, *, attached: bool = False) -> None:
        """Wire *storage* as this catalog's durability backend.

        The backend subscribes to the full delta stream (its listener
        covers current and future tables) and gets
        ``on_create_table`` for configuration that deltas cannot
        carry.  One backend per catalog; ``attached=True`` skips the
        ``storage.attach(self)`` call for the recovery path, which
        subscribes the backend first (it needs the resume generation)
        and only then registers it here.
        """
        if self._storage is not None:
            raise ValueError("database already has a storage backend")
        self._storage = storage
        if not attached:
            storage.attach(self)

    def add_listener(self, listener: Callable[[MutationEvent], None]) -> None:
        """Subscribe *listener* to mutations of every table.

        Tables created after this call are covered too; listeners run
        synchronously on the mutating thread.
        """
        self._listeners.append(listener)
        for table in self._tables.values():
            table.add_listener(listener)

    def remove_listener(self, listener: Callable[[MutationEvent], None]) -> None:
        """Unsubscribe *listener* everywhere; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass
        for table in self._tables.values():
            table.remove_listener(listener)

    def create_table(
        self,
        schema: TableSchema,
        substring_gram: int = 3,
        *,
        shards: int | None = None,
        partitioner=None,
        scatter_workers: int | None = None,
        scatter_mode: str | None = None,
    ) -> Table:
        """Create and register a table for *schema*; name must be new.

        With ``shards`` the catalog registers a
        :class:`repro.shard.table.ShardedTable` facade instead of a
        plain table: records partition across that many shards (via
        *partitioner*, default hash-by-record-id) and every read
        scatters and gathers behind the same surface.  ``shards=1`` is
        a valid degenerate facade (the parity battery uses it);
        ``None`` keeps the seed's single table.  Catalog listeners
        attach to the facade, which relays every shard's typed
        mutation deltas re-stamped with the aggregated epoch, the
        owning shard's index and that shard's own epoch.

        ``scatter_mode="process"`` routes the facade's heavy scatter
        paths through the shared-memory worker-process pool (see
        :mod:`repro.shard.procpool`); it is a runtime execution
        policy, not part of the persisted table identity — recovery
        recreates tables with the default mode.
        """
        name = self._canonical(schema.table_name)
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        if shards is None:
            table = Table(schema, substring_gram=substring_gram)
        else:
            # Imported lazily: the shard facade builds on repro.db.table,
            # so a module-level import here would cycle the db package.
            from repro.shard.table import ShardedTable

            table = ShardedTable(
                schema,
                shards,
                partitioner=partitioner,
                substring_gram=substring_gram,
                scatter_workers=scatter_workers,
                scatter_mode=scatter_mode or "thread",
            )
        for listener in self._listeners:
            table.add_listener(listener)
        self._tables[name] = table
        if self._storage is not None:
            # After registration, before any row can exist: the logged
            # create frame always precedes the table's insert frames.
            self._storage.on_create_table(
                table,
                substring_gram=substring_gram,
                shards=shards,
                partitioner=partitioner,
            )
        return table

    def drop_table(self, name: str) -> None:
        """Remove the table from the catalog — and tell every listener.

        Dropping is a mutation like any other: catalog listeners get a
        ``kind="drop"`` event (``record_id=-1``) so the plan, fragment
        and answer caches sweep the dead table's entries and a storage
        backend logs the drop — without this, a recreated same-name
        table could be served results cached from the dropped one.
        Catalog listeners are then detached from the dead table object
        (mutating a stale reference no longer reaches the caches) and
        a sharded facade's scatter executor is released.
        """
        canonical = self._canonical(name)
        table = self._tables.pop(canonical, None)
        if table is None:
            raise UnknownTableError(name)
        event = MutationEvent(table, "drop", -1, table.epoch)
        for listener in list(self._listeners):
            listener(event)
        for listener in self._listeners:
            table.remove_listener(listener)
        close = getattr(table, "close", None)
        if close is not None:
            close()

    def table(self, name: str) -> Table:
        canonical = self._canonical(name)
        try:
            return self._tables[canonical]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return self._canonical(name) in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables.keys())

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)


def _drop_default_plans(event: MutationEvent) -> None:
    """Drop shared-plan-cache statements that read the mutated table.

    Imported lazily so the catalog does not pull the SQL layer at
    module load (the executor imports :mod:`repro.db.database`).
    """
    from repro.db.sql.plan_cache import DEFAULT_PLAN_CACHE

    DEFAULT_PLAN_CACHE.invalidate_table(event.table.name)
