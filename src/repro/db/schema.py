"""Table schemas with the paper's attribute-type classification.

Section 4.1.1 defines three attribute types for ads records:

* **Type I** — the unique identifier of the product/service (e.g. car
  Make and Model); primary-indexed fields, required in every ad.
* **Type II** — descriptive properties (e.g. Color, Transmission);
  secondary-indexed fields, optional.
* **Type III** — quantitative values (e.g. Price, Mileage, Year);
  range-searchable numeric fields, optionally carrying a unit
  ("usd", "miles").

A :class:`TableSchema` couples that classification with the storage
kind of each column (categorical string vs. numeric), the valid range
for numeric columns, and the synonyms users employ to name the
attribute in questions ("price", "cost", "$" all denote Price).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError, UnknownColumnError

__all__ = ["AttributeType", "ColumnKind", "Column", "TableSchema"]


class AttributeType(enum.Enum):
    """The paper's Type I / II / III attribute classification."""

    TYPE_I = "I"
    TYPE_II = "II"
    TYPE_III = "III"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Type {self.value}"


class ColumnKind(enum.Enum):
    """Storage kind of a column."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"


@dataclass(frozen=True)
class Column:
    """One column of an ads table.

    Attributes
    ----------
    name:
        Canonical column name (lowercase, e.g. ``"make"``).
    attribute_type:
        The paper's Type I/II/III classification, which drives both
        indexing (primary vs. secondary) and question evaluation order
        (Section 4.3).
    kind:
        Categorical (string equality/similarity) or numeric
        (range-searchable).
    unit_words:
        Words that identify this column's unit in questions, e.g.
        ``("usd", "dollars", "$")`` for a price column.  Unit words are
        themselves Type III attribute values per Section 4.1.1.
    synonyms:
        Words users write to name this attribute ("cost" for price).
    valid_range:
        Inclusive ``(low, high)`` bounds for numeric columns; used by
        the incomplete-question "best guess" (Section 4.2.2) to decide
        which attributes a bare number could quantify.
    """

    name: str
    attribute_type: AttributeType
    kind: ColumnKind = ColumnKind.CATEGORICAL
    unit_words: tuple[str, ...] = ()
    synonyms: tuple[str, ...] = ()
    valid_range: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.name != self.name.lower():
            raise SchemaError(f"column names must be lowercase: {self.name!r}")
        if self.kind is ColumnKind.NUMERIC and self.attribute_type is not AttributeType.TYPE_III:
            raise SchemaError(
                f"numeric column {self.name!r} must be Type III "
                f"(got {self.attribute_type})"
            )
        if self.valid_range is not None and self.valid_range[0] > self.valid_range[1]:
            raise SchemaError(
                f"column {self.name!r} has inverted valid_range {self.valid_range}"
            )

    @property
    def is_numeric(self) -> bool:
        return self.kind is ColumnKind.NUMERIC


@dataclass
class TableSchema:
    """Schema of one ads-domain table.

    Columns are ordered; Type I columns must come first (they are the
    primary key of the ad per Section 4.1.1).
    """

    table_name: str
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(
                f"table {self.table_name!r} declares duplicate columns: "
                f"{sorted(duplicates)}"
            )
        if not any(
            column.attribute_type is AttributeType.TYPE_I for column in self.columns
        ):
            raise SchemaError(
                f"table {self.table_name!r} must declare at least one "
                "Type I (identifier) column"
            )
        self._by_name = {column.name: column for column in self.columns}

    # ------------------------------------------------------------------
    def column(self, name: str) -> Column:
        """Return the column called *name* (case-insensitive)."""
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise UnknownColumnError(self.table_name, name) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def columns_of_type(self, attribute_type: AttributeType) -> list[Column]:
        """All columns with the given Type I/II/III classification."""
        return [
            column
            for column in self.columns
            if column.attribute_type is attribute_type
        ]

    @property
    def type_i_columns(self) -> list[Column]:
        return self.columns_of_type(AttributeType.TYPE_I)

    @property
    def type_ii_columns(self) -> list[Column]:
        return self.columns_of_type(AttributeType.TYPE_II)

    @property
    def type_iii_columns(self) -> list[Column]:
        return self.columns_of_type(AttributeType.TYPE_III)

    @property
    def numeric_columns(self) -> list[Column]:
        return [column for column in self.columns if column.is_numeric]

    # ------------------------------------------------------------------
    def validate_record(self, record: dict[str, object]) -> dict[str, object]:
        """Validate and normalize a record against this schema.

        * every key must be a known column;
        * Type I values are required and non-empty;
        * numeric columns get coerced to ``float``/``int``;
        * categorical values are lowercased strings (CQAds matches
          case-insensitively).

        Returns the normalized record; raises :class:`SchemaError` on
        violations.
        """
        normalized: dict[str, object] = {}
        for key, value in record.items():
            column = self.column(key)
            if value is None:
                normalized[column.name] = None
                continue
            if column.is_numeric:
                if isinstance(value, bool) or not isinstance(value, (int, float, str)):
                    raise SchemaError(
                        f"{self.table_name}.{column.name}: numeric column got "
                        f"{value!r}"
                    )
                try:
                    number = float(value)
                except ValueError:
                    raise SchemaError(
                        f"{self.table_name}.{column.name}: cannot convert "
                        f"{value!r} to a number"
                    ) from None
                normalized[column.name] = int(number) if number.is_integer() else number
            else:
                normalized[column.name] = str(value).strip().lower()
        for column in self.type_i_columns:
            if not normalized.get(column.name):
                raise SchemaError(
                    f"{self.table_name}: Type I column {column.name!r} is "
                    "required in every ad"
                )
        return normalized
