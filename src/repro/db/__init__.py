"""Relational database substrate.

The paper runs CQAds on MySQL with one table per ads domain, a primary
index on Type I attributes, secondary indexes on Type II attributes and
a substring index of length 3 on all attributes (Sections 4.1 and 4.5).
This subpackage is a from-scratch, in-memory reimplementation of that
substrate:

* :mod:`repro.db.schema` — typed columns carrying the paper's
  Type I/II/III attribute classification;
* :mod:`repro.db.table` — record storage with validation and automatic
  index maintenance;
* :mod:`repro.db.indexes` — hash (primary/secondary), sorted-numeric
  and length-3 substring indexes;
* :mod:`repro.db.database` — the named-table catalog;
* :mod:`repro.db.sql` — lexer, parser, AST and executor for the SQL
  subset CQAds generates (nested ``IN`` subqueries, ``BETWEEN``,
  ``LIKE``, ``ORDER BY``/``GROUP BY``, ``LIMIT``, ``MIN``/``MAX``).
"""

from repro.db.database import Database
from repro.db.schema import AttributeType, Column, ColumnKind, TableSchema
from repro.db.table import (
    BatchDelta,
    InsertDelta,
    MutationEvent,
    Record,
    RemoveDelta,
    Table,
    UpdateDelta,
)

__all__ = [
    "AttributeType",
    "BatchDelta",
    "Column",
    "ColumnKind",
    "InsertDelta",
    "MutationEvent",
    "RemoveDelta",
    "TableSchema",
    "Record",
    "Table",
    "UpdateDelta",
    "Database",
]
