"""Recursive-descent parser for the SQL dialect.

Grammar (lowercase = nonterminal, UPPERCASE = token)::

    select    := SELECT items FROM name [alias] [WHERE expr]
                 [GROUP BY keys] [ORDER BY keys] [LIMIT NUMBER]
    items     := '*' | item (',' item)*
    item      := (MIN|MAX) '(' column ')' | column
    expr      := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | primary
    primary   := '(' expr ')' | predicate
    predicate := column op literal
               | column [NOT] BETWEEN literal AND literal
               | column [NOT] IN '(' (select | literal_list) ')'
               | column [NOT] LIKE STRING
               | column IS [NOT] NULL
    column    := IDENT ['.' IDENT]
    keys      := column [ASC|DESC] (',' column [ASC|DESC])*

Operator precedence matches standard SQL: NOT > AND > OR.
"""

from __future__ import annotations

from repro.db.sql.ast import (
    Aggregate,
    BetweenExpr,
    BinaryExpr,
    ColumnRef,
    Comparison,
    Expr,
    InExpr,
    LikeExpr,
    Literal,
    NotExpr,
    OrderBy,
    SelectStatement,
)
from repro.db.sql.lexer import SQLToken, tokenize_sql
from repro.errors import SQLSyntaxError

__all__ = ["parse_select", "Parser"]


class Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, tokens: list[SQLToken]) -> None:
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    # cursor helpers
    # ------------------------------------------------------------------
    def peek(self) -> SQLToken | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> SQLToken:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of SQL input")
        self.index += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> SQLToken | None:
        token = self.peek()
        if token is None or token.kind != kind:
            return None
        if text is not None and token.text != text:
            return None
        self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> SQLToken:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text or kind
            if actual is None:
                raise SQLSyntaxError(f"expected {wanted!r}, found end of input")
            raise SQLSyntaxError(
                f"expected {wanted!r}, found {actual.text!r}", actual.position
            )
        return token

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_select(self) -> SelectStatement:
        self.expect("keyword", "select")
        select_items = self._parse_select_items()
        self.expect("keyword", "from")
        table = self.expect("identifier").text
        alias = None
        alias_token = self.peek()
        if alias_token is not None and alias_token.kind == "identifier":
            alias = self.advance().text
        where = None
        if self.accept("keyword", "where"):
            where = self._parse_expr()
        group_by: tuple[OrderBy, ...] = ()
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            group_by = tuple(self._parse_order_keys())
        order_by: tuple[OrderBy, ...] = ()
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            order_by = tuple(self._parse_order_keys())
        limit = None
        if self.accept("keyword", "limit"):
            limit = int(self.expect("number").text)
        return SelectStatement(
            table=table,
            select_items=tuple(select_items),
            alias=alias,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    def _parse_select_items(self) -> list[object]:
        if self.accept("punct", "*"):
            return ["*"]
        items: list[object] = []
        while True:
            self.accept("keyword", "distinct")  # tolerated, no-op for sets
            aggregate = self.accept("keyword", "min") or self.accept(
                "keyword", "max"
            )
            if aggregate is not None:
                self.expect("punct", "(")
                column = self._parse_column()
                self.expect("punct", ")")
                items.append(Aggregate(aggregate.text.upper(), column))
            else:
                items.append(self._parse_column())
            if not self.accept("punct", ","):
                break
        return items

    def _parse_column(self) -> ColumnRef:
        first = self.expect("identifier").text
        if self.accept("punct", "."):
            second = self.expect("identifier").text
            return ColumnRef(second.lower(), qualifier=first.lower())
        return ColumnRef(first.lower())

    def _parse_order_keys(self) -> list[OrderBy]:
        keys: list[OrderBy] = []
        while True:
            column = self._parse_column()
            descending = False
            if self.accept("keyword", "desc"):
                descending = True
            else:
                self.accept("keyword", "asc")
            keys.append(OrderBy(column, descending))
            if not self.accept("punct", ","):
                break
        return keys

    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        left = self._parse_and_expr()
        while self.accept("keyword", "or"):
            right = self._parse_and_expr()
            left = BinaryExpr("OR", left, right)
        return left

    def _parse_and_expr(self) -> Expr:
        left = self._parse_not_expr()
        while self.accept("keyword", "and"):
            right = self._parse_not_expr()
            left = BinaryExpr("AND", left, right)
        return left

    def _parse_not_expr(self) -> Expr:
        if self.accept("keyword", "not"):
            return NotExpr(self._parse_not_expr())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        if self.accept("punct", "("):
            inner = self._parse_expr()
            self.expect("punct", ")")
            return inner
        return self._parse_predicate()

    def _parse_literal(self) -> Literal:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("expected a literal, found end of input")
        if token.kind == "number":
            self.advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.text)
        if token.kind == "keyword" and token.text == "null":
            self.advance()
            return Literal(None)
        raise SQLSyntaxError(
            f"expected a literal, found {token.text!r}", token.position
        )

    def _parse_predicate(self) -> Expr:
        column = self._parse_column()
        negated = self.accept("keyword", "not") is not None
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("incomplete predicate at end of input")
        expr: Expr
        if token.kind == "operator":
            if negated:
                raise SQLSyntaxError(
                    "NOT cannot directly precede a comparison operator",
                    token.position,
                )
            operator = self.advance().text
            value = self._parse_literal()
            expr = Comparison(column, operator, value)
            return expr
        if token.kind == "keyword" and token.text == "between":
            self.advance()
            low = self._parse_literal()
            self.expect("keyword", "and")
            high = self._parse_literal()
            expr = BetweenExpr(column, low, high)
        elif token.kind == "keyword" and token.text == "in":
            self.advance()
            self.expect("punct", "(")
            inner_token = self.peek()
            if inner_token is not None and inner_token.kind == "keyword" and (
                inner_token.text == "select"
            ):
                subquery = self.parse_select()
                expr = InExpr(column, subquery=subquery)
            else:
                values = [self._parse_literal()]
                while self.accept("punct", ","):
                    values.append(self._parse_literal())
                expr = InExpr(column, values=tuple(values))
            self.expect("punct", ")")
        elif token.kind == "keyword" and token.text == "like":
            self.advance()
            pattern = self.expect("string").text
            expr = LikeExpr(column, pattern)
        elif token.kind == "keyword" and token.text == "is":
            self.advance()
            is_not = self.accept("keyword", "not") is not None
            self.expect("keyword", "null")
            null_comparison = Comparison(column, "=", Literal(None))
            expr = NotExpr(null_comparison) if is_not else null_comparison
        else:
            raise SQLSyntaxError(
                f"unexpected token {token.text!r} in predicate", token.position
            )
        return NotExpr(expr) if negated else expr


def parse_select(sql: str) -> SelectStatement:
    """Parse *sql* into a :class:`SelectStatement`.

    Raises :class:`~repro.errors.SQLSyntaxError` when the text does
    not conform to the dialect, or leaves trailing tokens.
    """
    parser = Parser(tokenize_sql(sql))
    statement = parser.parse_select()
    trailing = parser.peek()
    if trailing is not None:
        raise SQLSyntaxError(
            f"unexpected trailing token {trailing.text!r}", trailing.position
        )
    return statement
