"""Abstract syntax tree for the SQL subset.

The dialect covers exactly what CQAds emits (Section 4.5 and
Example 7 of the paper):

.. code-block:: sql

    SELECT * FROM car_ads WHERE record_id IN
        (SELECT record_id FROM car_ads c WHERE c.transmission = 'automatic')
    AND record_id IN
        (SELECT record_id FROM car_ads c WHERE c.color = 'blue')

plus the pieces the identifier rules of Table 1 generate: comparison
operators (=, !=, <, <=, >, >=), ``BETWEEN``, ``LIKE`` (substring
match), ``GROUP BY``/``ORDER BY`` with ``DESC`` (superlatives),
``LIMIT`` and ``MIN``/``MAX`` aggregates (valid-range probing for
incomplete questions).

Every node renders back to SQL text via ``to_sql()`` so generated
queries are inspectable and round-trippable through the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "Expr",
    "Literal",
    "ColumnRef",
    "Comparison",
    "BetweenExpr",
    "InExpr",
    "LikeExpr",
    "NotExpr",
    "BinaryExpr",
    "BooleanExpr",
    "Aggregate",
    "OrderBy",
    "SelectStatement",
]

COMPARISON_OPERATORS = ("=", "!=", "<>", "<", "<=", ">", ">=")


def _quote_string(value: str) -> str:
    escaped = value.replace("'", "''")
    return f"'{escaped}'"


@dataclass(frozen=True)
class Literal:
    """A constant: number, string or NULL."""

    value: Union[int, float, str, None]

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return _quote_string(self.value)
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly alias-qualified) column reference."""

    name: str
    qualifier: str | None = None

    def to_sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` with op in =, !=, <>, <, <=, >, >=."""

    column: ColumnRef
    operator: str
    value: Literal

    def __post_init__(self) -> None:
        if self.operator not in COMPARISON_OPERATORS:
            raise ValueError(f"unknown comparison operator {self.operator!r}")

    def to_sql(self) -> str:
        return f"{self.column.to_sql()} {self.operator} {self.value.to_sql()}"


@dataclass(frozen=True)
class BetweenExpr:
    """``column BETWEEN low AND high`` (inclusive both ends)."""

    column: ColumnRef
    low: Literal
    high: Literal

    def to_sql(self) -> str:
        return (
            f"{self.column.to_sql()} BETWEEN {self.low.to_sql()} "
            f"AND {self.high.to_sql()}"
        )


@dataclass(frozen=True)
class LikeExpr:
    """``column LIKE pattern`` with % wildcards only.

    CQAds uses LIKE for substring matching backed by the length-3
    substring index, so the executor special-cases the
    ``'%needle%'`` shape.
    """

    column: ColumnRef
    pattern: str

    def to_sql(self) -> str:
        return f"{self.column.to_sql()} LIKE {_quote_string(self.pattern)}"


@dataclass(frozen=True)
class InExpr:
    """``column IN (subquery)`` or ``column IN (v1, v2, ...)``."""

    column: ColumnRef
    subquery: "SelectStatement | None" = None
    values: tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        if (self.subquery is None) == (not self.values):
            raise ValueError("InExpr needs exactly one of subquery or values")

    def to_sql(self) -> str:
        if self.subquery is not None:
            return f"{self.column.to_sql()} IN ({self.subquery.to_sql()})"
        inner = ", ".join(value.to_sql() for value in self.values)
        return f"{self.column.to_sql()} IN ({inner})"


@dataclass(frozen=True)
class NotExpr:
    operand: "Expr"

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"


@dataclass(frozen=True)
class BinaryExpr:
    """``left AND right`` / ``left OR right``."""

    operator: str  # "AND" | "OR"
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.operator not in ("AND", "OR"):
            raise ValueError(f"unknown boolean operator {self.operator!r}")

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.operator} {self.right.to_sql()})"


BooleanExpr = BinaryExpr  # historical alias kept for the public API

Expr = Union[Comparison, BetweenExpr, LikeExpr, InExpr, NotExpr, BinaryExpr]


@dataclass(frozen=True)
class Aggregate:
    """``MIN(column)`` / ``MAX(column)`` in a select list."""

    function: str  # "MIN" | "MAX"
    column: ColumnRef

    def __post_init__(self) -> None:
        if self.function not in ("MIN", "MAX"):
            raise ValueError(f"unsupported aggregate {self.function!r}")

    def to_sql(self) -> str:
        return f"{self.function}({self.column.to_sql()})"


@dataclass(frozen=True)
class OrderBy:
    """One ORDER BY / GROUP BY key with direction."""

    column: ColumnRef
    descending: bool = False

    def to_sql(self) -> str:
        direction = " DESC" if self.descending else ""
        return f"{self.column.to_sql()}{direction}"


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT.

    ``select_items`` is either ``["*"]``, a list of :class:`ColumnRef`,
    or a list of :class:`Aggregate`.  ``group_by`` captures the paper's
    Table 1 ``group by price`` idiom for superlatives — the executor
    treats it as ORDER BY (the paper uses it purely to surface extreme
    values first).
    """

    table: str
    select_items: tuple[object, ...] = ("*",)
    alias: str | None = None
    where: Expr | None = None
    group_by: tuple[OrderBy, ...] = ()
    order_by: tuple[OrderBy, ...] = ()
    limit: int | None = None

    def to_sql(self) -> str:
        parts = ["SELECT"]
        rendered_items = []
        for item in self.select_items:
            if item == "*":
                rendered_items.append("*")
            else:
                rendered_items.append(item.to_sql())  # type: ignore[union-attr]
        parts.append(", ".join(rendered_items))
        parts.append("FROM")
        parts.append(self.table if self.alias is None else f"{self.table} {self.alias}")
        if self.where is not None:
            parts.append("WHERE")
            parts.append(self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(key.to_sql() for key in self.group_by))
        if self.order_by:
            parts.append("ORDER BY")
            parts.append(", ".join(key.to_sql() for key in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


def conjoin(expressions: list[Expr]) -> Expr | None:
    """AND together *expressions* (left-deep); None for empty input."""
    result: Expr | None = None
    for expression in expressions:
        result = expression if result is None else BinaryExpr("AND", result, expression)
    return result


def disjoin(expressions: list[Expr]) -> Expr | None:
    """OR together *expressions* (left-deep); None for empty input."""
    result: Expr | None = None
    for expression in expressions:
        result = expression if result is None else BinaryExpr("OR", result, expression)
    return result
