"""LRU cache of parsed SELECT statements, keyed by SQL text.

``SQLExecutor.execute_sql`` used to re-tokenize and re-parse its SQL
string on every call.  The question pipeline itself executes
pre-built ASTs (``generate_sql`` → ``execute``) and never pays that
cost, but every textual entry point — the module-level
:func:`~repro.db.sql.executor.execute` helper, external callers,
tools, tests — re-parsed identical statements over and over.
:class:`~repro.db.sql.ast.SelectStatement` is a frozen dataclass, so a
parsed plan can be shared freely across threads and requests.

A module-level :data:`DEFAULT_PLAN_CACHE` is shared by every executor
that is not given its own cache; pass a private :class:`PlanCache` to
``SQLExecutor`` to isolate a workload.  Knobs are documented in
``PERFORMANCE.md``.
"""

from __future__ import annotations

from repro.db.sql.ast import SelectStatement
from repro.db.sql.parser import parse_select
from repro.obs.hooks import cache_event
from repro.perf.lru import LRUCache

__all__ = ["PlanCache", "DEFAULT_PLAN_CACHE"]


class PlanCache:
    """A bounded, thread-safe LRU of ``SQL text -> parsed statement``.

    Parse errors propagate to the caller and are never cached, so a
    malformed statement cannot poison the cache.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._plans = LRUCache(capacity)

    @property
    def capacity(self) -> int:
        return self._plans.capacity

    @property
    def hits(self) -> int:
        return self._plans.hits

    @property
    def misses(self) -> int:
        return self._plans.misses

    @property
    def evictions(self) -> int:
        return self._plans.evictions

    def get(self, sql: str) -> SelectStatement:
        """The parsed plan for *sql*, parsing (and caching) on a miss."""
        plan = self._plans.get(sql)
        cache_event("plan", plan is not None)
        if plan is not None:
            return plan  # type: ignore[return-value]
        # Parse outside any lock: statements are immutable, so two
        # threads racing the same miss just do the work twice once.
        plan = parse_select(sql)
        self._plans.put(sql, plan)
        return plan

    def invalidate_table(self, table_name: str) -> int:
        """Drop cached plans whose FROM clause reads *table_name*.

        Plans hold no table data — the cache keys on SQL text only —
        so this is hygiene, not a correctness requirement; it exists
        so every cache in the system follows the same mutation-epoch
        auto-invalidation contract (``Database`` calls it for the
        shared :data:`DEFAULT_PLAN_CACHE` on every table mutation).
        Returns the number of plans dropped.
        """
        canonical = table_name.strip().lower().replace(" ", "_")
        return self._plans.pop_where(
            lambda _key, plan: (
                plan.table.strip().lower().replace(" ", "_") == canonical  # type: ignore[union-attr]
            )
        )

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, sql: str) -> bool:
        return sql in self._plans


#: Shared by every :class:`~repro.db.sql.executor.SQLExecutor` that is
#: not constructed with an explicit cache.
DEFAULT_PLAN_CACHE = PlanCache()
