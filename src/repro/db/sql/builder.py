"""Programmatic query construction.

The question pipeline never concatenates question text into SQL
strings; it assembles ASTs through this builder.  The builder mirrors
the shapes the paper generates: one ``record_id IN (subquery)`` clause
per selection criterion, ANDed (or ORed, for the N-1 partial pass and
Boolean rules) together — see Example 7 and footnote 4 of the paper.
"""

from __future__ import annotations

from repro.db.sql.ast import (
    BetweenExpr,
    ColumnRef,
    Comparison,
    Expr,
    InExpr,
    LikeExpr,
    Literal,
    NotExpr,
    OrderBy,
    SelectStatement,
    conjoin,
    disjoin,
)

__all__ = ["QueryBuilder"]

RECORD_ID = "record_id"


class QueryBuilder:
    """Builds SELECT statements for one table.

    Usage::

        builder = QueryBuilder("car_ads")
        statement = builder.select(
            where=builder.and_(
                builder.eq("make", "honda"),
                builder.lt("price", 15000),
            ),
            limit=30,
        )
    """

    def __init__(self, table: str) -> None:
        self.table = table

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def column(self, name: str) -> ColumnRef:
        return ColumnRef(name.lower())

    def eq(self, column: str, value: object) -> Comparison:
        return Comparison(self.column(column), "=", Literal(value))  # type: ignore[arg-type]

    def ne(self, column: str, value: object) -> Comparison:
        return Comparison(self.column(column), "!=", Literal(value))  # type: ignore[arg-type]

    def lt(self, column: str, value: float) -> Comparison:
        return Comparison(self.column(column), "<", Literal(value))

    def le(self, column: str, value: float) -> Comparison:
        return Comparison(self.column(column), "<=", Literal(value))

    def gt(self, column: str, value: float) -> Comparison:
        return Comparison(self.column(column), ">", Literal(value))

    def ge(self, column: str, value: float) -> Comparison:
        return Comparison(self.column(column), ">=", Literal(value))

    def between(self, column: str, low: float, high: float) -> BetweenExpr:
        return BetweenExpr(self.column(column), Literal(low), Literal(high))

    def contains(self, column: str, needle: str) -> LikeExpr:
        """Substring match, served by the length-3 substring index."""
        return LikeExpr(self.column(column), f"%{needle}%")

    def not_(self, expr: Expr) -> NotExpr:
        return NotExpr(expr)

    def and_(self, *expressions: Expr | None) -> Expr | None:
        return conjoin([e for e in expressions if e is not None])

    def or_(self, *expressions: Expr | None) -> Expr | None:
        return disjoin([e for e in expressions if e is not None])

    def in_subquery(self, where: Expr) -> InExpr:
        """The paper's ``record_id IN (SELECT record_id ... WHERE crit)``."""
        subquery = SelectStatement(
            table=self.table,
            select_items=(ColumnRef(RECORD_ID),),
            where=where,
        )
        return InExpr(ColumnRef(RECORD_ID), subquery=subquery)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def select(
        self,
        where: Expr | None = None,
        order_by: list[tuple[str, bool]] | None = None,
        limit: int | None = None,
    ) -> SelectStatement:
        """SELECT * with optional WHERE / ORDER BY / LIMIT.

        *order_by* entries are ``(column, descending)`` pairs.
        """
        keys = tuple(
            OrderBy(self.column(name), descending)
            for name, descending in (order_by or [])
        )
        return SelectStatement(
            table=self.table,
            select_items=("*",),
            where=where,
            order_by=keys,
            limit=limit,
        )

    def select_conjunction(
        self, criteria: list[Expr], limit: int | None = None
    ) -> SelectStatement:
        """The paper's Example 7 shape: AND of per-criterion subqueries."""
        clauses: list[Expr] = [self.in_subquery(criterion) for criterion in criteria]
        return self.select(where=conjoin(clauses), limit=limit)

    def select_disjunction(
        self, criteria: list[Expr], limit: int | None = None
    ) -> SelectStatement:
        """Footnote 4 of the paper: the N-1 pass swaps AND for OR."""
        clauses: list[Expr] = [self.in_subquery(criterion) for criterion in criteria]
        return self.select(where=disjoin(clauses), limit=limit)

    def select_min_max(self, column: str) -> SelectStatement:
        """``SELECT MIN(col), MAX(col)`` — valid-range probing."""
        from repro.db.sql.ast import Aggregate

        return SelectStatement(
            table=self.table,
            select_items=(
                Aggregate("MIN", self.column(column)),
                Aggregate("MAX", self.column(column)),
            ),
        )
