"""SQL subsystem: the dialect CQAds generates and evaluates.

The paper translates every question into a SQL statement (Example 7)
with nested ``IN`` subqueries, one per selection criterion, and ships
it to MySQL.  This subpackage provides the equivalent machinery:

* :mod:`repro.db.sql.lexer` / :mod:`repro.db.sql.parser` — tokenize and
  parse the dialect into the AST of :mod:`repro.db.sql.ast`;
* :mod:`repro.db.sql.executor` — evaluate an AST against a
  :class:`~repro.db.database.Database`, using the table's indexes for
  equality, range, ``LIKE`` and superlative predicates;
* :mod:`repro.db.sql.builder` — a small programmatic query builder the
  question pipeline uses so it never does string concatenation of
  untrusted question text into SQL.
"""

from repro.db.sql.ast import (
    Aggregate,
    BetweenExpr,
    BinaryExpr,
    BooleanExpr,
    ColumnRef,
    Comparison,
    InExpr,
    LikeExpr,
    Literal,
    NotExpr,
    OrderBy,
    SelectStatement,
)
from repro.db.sql.builder import QueryBuilder
from repro.db.sql.executor import SQLExecutor, execute
from repro.db.sql.lexer import SQLToken, tokenize_sql
from repro.db.sql.parser import parse_select
from repro.db.sql.plan_cache import DEFAULT_PLAN_CACHE, PlanCache

__all__ = [
    "Aggregate",
    "BetweenExpr",
    "BinaryExpr",
    "BooleanExpr",
    "ColumnRef",
    "Comparison",
    "InExpr",
    "LikeExpr",
    "Literal",
    "NotExpr",
    "OrderBy",
    "SelectStatement",
    "QueryBuilder",
    "SQLExecutor",
    "execute",
    "SQLToken",
    "tokenize_sql",
    "parse_select",
    "PlanCache",
    "DEFAULT_PLAN_CACHE",
]
