"""Set-algebra evaluation of SELECT statements over the ads database.

The executor turns a WHERE tree into record-id sets: AND is
intersection, OR is union, NOT is complement against the table, and
leaf predicates are answered by the table's indexes —

* equality on Type I/II columns via the hash indexes (the paper's
  primary/secondary indexes),
* numeric comparisons, BETWEEN and superlative extremes via the sorted
  indexes,
* ``LIKE '%needle%'`` via the length-3 substring index (Section 4.5).

NULL handling is two-valued: a NULL value simply fails every predicate
except ``IS NULL``, which is the behaviour CQAds relies on (an ad that
omits a property never matches a constraint on it).

Two performance devices keep the WHERE evaluation cheap without
changing any result set (both are pure set algebra — see
``PERFORMANCE.md``):

* **lazy complements** — ``NOT`` and ``!=`` produce a
  :class:`_IdSet` carrying a *complemented* flag instead of
  materializing ``all_ids() - ids``; complements combine with AND/OR
  symbolically and are subtracted from the table at most once, at the
  top of the tree;
* **selectivity-ordered conjunctions** — AND (and OR) chains are
  flattened and evaluated cheapest-leaf-first (indexed equality before
  ranges before substring scans before complements), short-circuiting
  as soon as the accumulated intersection is empty (or the union
  covers the table).

The pseudo-column ``record_id`` is available on every table; CQAds uses
it for the paper's ``Car_ID IN (subquery)`` idiom (Example 7).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.db.database import Database
from repro.db.sql.ast import (
    Aggregate,
    BetweenExpr,
    BinaryExpr,
    ColumnRef,
    Comparison,
    Expr,
    InExpr,
    LikeExpr,
    NotExpr,
    SelectStatement,
)
from repro.db.sql.plan_cache import DEFAULT_PLAN_CACHE, PlanCache
from repro.db.table import Record, Table
from repro.errors import SQLExecutionError

__all__ = ["SQLResult", "SQLExecutor", "execute"]

RECORD_ID = "record_id"


class _IdSet:
    """A possibly-complemented record-id set.

    ``ids`` holds the matching ids when ``complemented`` is False, and
    the *non*-matching ids otherwise (relative to the table's full id
    set).  Leaf sets are always subsets of the table, so flipping the
    flag is an exact lazy NOT.
    """

    __slots__ = ("ids", "complemented")

    def __init__(self, ids: set[int], complemented: bool = False) -> None:
        self.ids = ids
        self.complemented = complemented

    def negated(self) -> "_IdSet":
        return _IdSet(self.ids, not self.complemented)

    def intersect(self, other: "_IdSet") -> "_IdSet":
        if not self.complemented and not other.complemented:
            return _IdSet(self.ids & other.ids)
        if not self.complemented:
            return _IdSet(self.ids - other.ids)
        if not other.complemented:
            return _IdSet(other.ids - self.ids)
        return _IdSet(self.ids | other.ids, True)

    def union(self, other: "_IdSet") -> "_IdSet":
        if not self.complemented and not other.complemented:
            return _IdSet(self.ids | other.ids)
        if not self.complemented:
            return _IdSet(other.ids - self.ids, True)
        if not other.complemented:
            return _IdSet(self.ids - other.ids, True)
        return _IdSet(self.ids & other.ids, True)

    def is_empty(self) -> bool:
        """Definitely matches nothing (complements are never empty
        without consulting the table, so they report False)."""
        return not self.complemented and not self.ids

    def is_universal(self) -> bool:
        """Definitely matches the whole table."""
        return self.complemented and not self.ids

    def materialize(self, table: Table) -> set[int]:
        if self.complemented:
            return table.all_ids() - self.ids
        return self.ids


def _flatten_chain(expr: BinaryExpr) -> list[Expr]:
    """Flatten a left-deep AND/OR chain into its operand list."""
    operator = expr.operator
    operands: list[Expr] = []
    stack: list[Expr] = [expr.right, expr.left]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryExpr) and node.operator == operator:
            stack.append(node.right)
            stack.append(node.left)
        else:
            operands.append(node)
    return operands


def _static_cost(expr: Expr) -> int:
    """Rough evaluation-cost rank of a WHERE leaf (lower = cheaper).

    Indexed equality is the cheapest and typically the most selective;
    sorted-index ranges come next; substring/IN lookups after; scans
    and complements (``!=``, NULL tests, NOT) last.  AND chains cost
    what their cheapest operand costs (they can short-circuit there);
    OR chains cost their dearest operand.
    """
    if isinstance(expr, Comparison):
        if expr.value.value is None:
            return 4  # NULL tests scan the table
        if expr.operator == "=":
            return 0
        if expr.operator in ("!=", "<>"):
            return 4
        if isinstance(expr.value.value, str):
            return 3  # lexicographic range on a categorical: full scan
        return 1
    if isinstance(expr, BetweenExpr):
        return 1
    if isinstance(expr, LikeExpr):
        return 2
    if isinstance(expr, InExpr):
        return 5 if expr.subquery is not None else 2
    if isinstance(expr, NotExpr):
        return 4 + _static_cost(expr.operand)
    if isinstance(expr, BinaryExpr):
        left, right = _static_cost(expr.left), _static_cost(expr.right)
        base = min(left, right) if expr.operator == "AND" else max(left, right)
        return base + 1
    return 6


@dataclass
class SQLResult:
    """Outcome of a SELECT.

    ``records`` always holds the matching records in output order;
    ``rows`` holds the projected rows (dicts) when the select list was
    not ``*``; ``scalars`` holds aggregate values keyed by their SQL
    rendering (e.g. ``"MIN(price)"``).
    """

    records: list[Record] = field(default_factory=list)
    rows: list[dict[str, object]] = field(default_factory=list)
    scalars: dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records) if not self.scalars else len(self.rows)

    def record_ids(self) -> list[int]:
        return [record.record_id for record in self.records]

    def column_values(self, column: str) -> list[object]:
        """Values of *column* across the result, in output order."""
        column = column.lower()
        if column == RECORD_ID:
            return [record.record_id for record in self.records]
        return [record.get(column) for record in self.records]


class SQLExecutor:
    """Evaluates parsed SELECT statements against a database.

    ``plan_cache`` backs :meth:`execute_sql`; the module-wide
    :data:`~repro.db.sql.plan_cache.DEFAULT_PLAN_CACHE` is shared when
    none is given (executors are routinely constructed per call, so a
    per-instance cache would never get warm).
    """

    def __init__(
        self, database: Database, plan_cache: PlanCache | None = None
    ) -> None:
        self.database = database
        self.plan_cache = plan_cache if plan_cache is not None else DEFAULT_PLAN_CACHE

    # ------------------------------------------------------------------
    def execute(self, statement: SelectStatement) -> SQLResult:
        """Run *statement* and return a :class:`SQLResult`."""
        table = self.database.table(statement.table)
        if statement.where is None:
            ids = table.all_ids()
        else:
            ids = self.eval_where(table, statement.where)
        return self._finish(table, statement, ids)

    def execute_with_ids(
        self, statement: SelectStatement, ids: Iterable[int]
    ) -> SQLResult:
        """Run *statement*'s post-WHERE phases over a precomputed id set.

        The shared-subplan relaxation engine derives each N-1 pool's id
        set by intersecting cached per-unit sets; this entry point runs
        the identical ordering/limit/projection code on them, so the
        two paths cannot drift apart.
        """
        table = self.database.table(statement.table)
        return self._finish(table, statement, ids)

    def _finish(
        self, table: Table, statement: SelectStatement, ids: Iterable[int]
    ) -> SQLResult:
        records = table.fetch(ids)
        sort_keys = list(statement.order_by) + list(statement.group_by)
        if sort_keys:
            records = self._sort(table, records, sort_keys)
        if statement.limit is not None:
            records = records[: statement.limit]
        return self._project(table, statement, records)

    def execute_sql(self, sql: str) -> SQLResult:
        """Run a SQL string through the plan cache."""
        return self.execute(self.plan_cache.get(sql))

    # ------------------------------------------------------------------
    # projection and ordering
    # ------------------------------------------------------------------
    def _sort(
        self, table: Table, records: list[Record], keys: list
    ) -> list[Record]:
        def sort_key(record: Record):
            parts = []
            for key in keys:
                value = self._record_value(record, key.column)
                # None sorts after everything, regardless of direction.
                missing = value is None
                if isinstance(value, str):
                    ordinal: object = value
                else:
                    ordinal = value if value is not None else 0
                if key.descending and isinstance(ordinal, (int, float)):
                    ordinal = -ordinal
                parts.append((missing, ordinal))
            parts.append(record.record_id)
            return tuple(parts)

        # String columns with DESC need a separate pass since strings
        # cannot be negated; handle the common single-key case directly.
        if len(keys) == 1:
            key = keys[0]
            column = key.column.name

            def single(record: Record):
                value = self._record_value(record, key.column)
                return (value is None, value if value is not None else 0, record.record_id)

            ordered = sorted(records, key=single)
            if key.descending:
                present = [r for r in ordered if r.get(column) is not None or column == RECORD_ID]
                absent = [r for r in ordered if r.get(column) is None and column != RECORD_ID]
                present.reverse()
                return present + absent
            return ordered
        return sorted(records, key=sort_key)

    def _record_value(self, record: Record, column: ColumnRef) -> object:
        if column.name == RECORD_ID:
            return record.record_id
        return record.get(column.name)

    def _project(
        self, table: Table, statement: SelectStatement, records: list[Record]
    ) -> SQLResult:
        items = statement.select_items
        if items == ("*",) or items == ["*"]:
            return SQLResult(records=records)
        aggregates = [item for item in items if isinstance(item, Aggregate)]
        if aggregates:
            if len(aggregates) != len(items):
                raise SQLExecutionError(
                    "cannot mix aggregates and plain columns in a select list"
                )
            scalars: dict[str, object] = {}
            for aggregate in aggregates:
                values = [
                    self._record_value(record, aggregate.column)
                    for record in records
                ]
                values = [value for value in values if value is not None]
                if not values:
                    scalars[aggregate.to_sql()] = None
                elif aggregate.function == "MIN":
                    scalars[aggregate.to_sql()] = min(values)  # type: ignore[type-var]
                else:
                    scalars[aggregate.to_sql()] = max(values)  # type: ignore[type-var]
            return SQLResult(records=records, scalars=scalars)
        rows = []
        for record in records:
            row: dict[str, object] = {}
            for item in items:
                assert isinstance(item, ColumnRef)
                if item.name != RECORD_ID and not table.schema.has_column(item.name):
                    raise SQLExecutionError(
                        f"unknown column {item.name!r} in select list of "
                        f"{table.name!r}"
                    )
                row[item.name] = self._record_value(record, item)
            rows.append(row)
        return SQLResult(records=records, rows=rows)

    # ------------------------------------------------------------------
    # WHERE evaluation
    # ------------------------------------------------------------------
    def eval_where(self, table: Table, expr: Expr) -> set[int]:
        """The id set matching a WHERE expression against *table*."""
        return self._eval_lazy(table, expr).materialize(table)

    def _eval_expr(self, table: Table, expr: Expr) -> set[int]:
        # Retained name from the eager implementation; callers get the
        # same materialized set as before.
        return self.eval_where(table, expr)

    def _eval_lazy(self, table: Table, expr: Expr) -> _IdSet:
        if isinstance(expr, BinaryExpr):
            operands = sorted(_flatten_chain(expr), key=_static_cost)
            accumulated: _IdSet | None = None
            for index, operand in enumerate(operands):
                if accumulated is not None and (
                    accumulated.is_empty()
                    if expr.operator == "AND"
                    else accumulated.is_universal()
                ):
                    # Short-circuit: the outcome is decided.  Still
                    # validate the skipped operands so a malformed
                    # query raises deterministically instead of
                    # depending on which leaf happened to be empty.
                    for skipped in operands[index:]:
                        self._validate_expr(table, skipped)
                    break
                evaluated = self._eval_lazy(table, operand)
                if accumulated is None:
                    accumulated = evaluated
                elif expr.operator == "AND":
                    accumulated = accumulated.intersect(evaluated)
                else:
                    accumulated = accumulated.union(evaluated)
            assert accumulated is not None  # chains have >= 2 operands
            return accumulated
        if isinstance(expr, NotExpr):
            return self._eval_lazy(table, expr.operand).negated()
        if isinstance(expr, Comparison):
            return self._eval_comparison(table, expr)
        if isinstance(expr, BetweenExpr):
            return _IdSet(self._eval_between(table, expr))
        if isinstance(expr, LikeExpr):
            return _IdSet(self._eval_like(table, expr))
        if isinstance(expr, InExpr):
            return _IdSet(self._eval_in(table, expr))
        raise SQLExecutionError(f"unsupported expression node {expr!r}")

    def _validate_expr(self, table: Table, expr: Expr) -> None:
        """Raise exactly the errors evaluating *expr* would, sans work.

        Mirrors each leaf evaluator's error conditions (unknown
        columns, NULL with an ordering operator, numeric columns vs
        non-numbers, BETWEEN/LIKE type constraints, IN-subquery shape)
        so short-circuited operands still surface malformed queries.
        """
        if isinstance(expr, BinaryExpr):
            self._validate_expr(table, expr.left)
            self._validate_expr(table, expr.right)
            return
        if isinstance(expr, NotExpr):
            self._validate_expr(table, expr.operand)
            return
        if isinstance(expr, Comparison):
            name = self._check_column(table, expr.column)
            value = expr.value.value
            operator = "!=" if expr.operator == "<>" else expr.operator
            if value is None:
                if operator not in ("=", "!="):
                    raise SQLExecutionError(
                        "NULL only supports = / != comparisons"
                    )
                return
            if name != RECORD_ID and table.schema.column(name).is_numeric:
                try:
                    float(value)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    raise SQLExecutionError(
                        f"numeric column {name!r} compared to non-number "
                        f"{value!r}"
                    ) from None
            return
        if isinstance(expr, BetweenExpr):
            name = self._check_column(table, expr.column)
            if name != RECORD_ID and not table.schema.column(name).is_numeric:
                raise SQLExecutionError(
                    f"BETWEEN requires a numeric column, got {name!r}"
                )
            if expr.low.value is None or expr.high.value is None:
                raise SQLExecutionError("BETWEEN bounds must not be NULL")
            return
        if isinstance(expr, LikeExpr):
            name = self._check_column(table, expr.column)
            if name == RECORD_ID:
                raise SQLExecutionError("LIKE is not supported on record_id")
            if table.schema.column(name).is_numeric:
                raise SQLExecutionError(
                    f"LIKE requires a categorical column, got {name!r}"
                )
            return
        if isinstance(expr, InExpr):
            self._check_column(table, expr.column)
            if expr.subquery is not None:
                sub_items = expr.subquery.select_items
                if sub_items == ("*",) or sub_items == ["*"]:
                    raise SQLExecutionError(
                        "IN subquery must select a single column, not *"
                    )
                if len(sub_items) != 1 or not isinstance(sub_items[0], ColumnRef):
                    raise SQLExecutionError(
                        "IN subquery must select exactly one plain column"
                    )
                sub_table = self.database.table(expr.subquery.table)
                if expr.subquery.where is not None:
                    self._validate_expr(sub_table, expr.subquery.where)
            return
        raise SQLExecutionError(f"unsupported expression node {expr!r}")

    def _check_column(self, table: Table, column: ColumnRef) -> str:
        if column.name == RECORD_ID:
            return RECORD_ID
        return table.schema.column(column.name).name

    def _eval_comparison(self, table: Table, expr: Comparison) -> _IdSet:
        name = self._check_column(table, expr.column)
        value = expr.value.value
        operator = "!=" if expr.operator == "<>" else expr.operator
        if value is None:
            null_ids = table.scan(lambda record: record.get(name) is None)
            if operator == "=":
                return _IdSet(null_ids)
            if operator == "!=":
                return _IdSet(null_ids, complemented=True)
            raise SQLExecutionError("NULL only supports = / != comparisons")
        if name == RECORD_ID:
            try:
                target = int(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return _IdSet(set())
            return _IdSet(
                {
                    record_id
                    for record_id in table.all_ids()
                    if _compare(record_id, operator, target)
                }
            )
        column = table.schema.column(name)
        if column.is_numeric:
            try:
                number = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise SQLExecutionError(
                    f"numeric column {name!r} compared to non-number {value!r}"
                ) from None
            if operator == "=":
                return _IdSet(table.lookup_range(name, number, number))
            if operator == "!=":
                return _IdSet(
                    table.lookup_range(name, number, number), complemented=True
                )
            if operator == "<":
                return _IdSet(
                    table.lookup_range(name, None, number, include_high=False)
                )
            if operator == "<=":
                return _IdSet(table.lookup_range(name, None, number))
            if operator == ">":
                return _IdSet(
                    table.lookup_range(name, number, None, include_low=False)
                )
            return _IdSet(table.lookup_range(name, number, None))
        text = str(value).lower()
        if operator == "=":
            return _IdSet(table.lookup_equal(name, text))
        if operator == "!=":
            matched = table.lookup_equal(name, text)
            # NULLs fail every predicate, != included: complement the
            # matches *and* the NULLs (same set as non_null - matched,
            # without copying all_ids()).
            null_ids = table.scan(lambda record: record.get(name) is None)
            return _IdSet(matched | null_ids, complemented=True)
        # Lexicographic comparisons on categorical columns: full scan.
        return _IdSet(
            table.scan(
                lambda record: record.get(name) is not None
                and _compare(str(record.get(name)), operator, text)
            )
        )

    def _eval_between(self, table: Table, expr: BetweenExpr) -> set[int]:
        name = self._check_column(table, expr.column)
        if name == RECORD_ID:
            low, high = int(expr.low.value), int(expr.high.value)  # type: ignore[arg-type]
            return {rid for rid in table.all_ids() if low <= rid <= high}
        column = table.schema.column(name)
        if not column.is_numeric:
            raise SQLExecutionError(
                f"BETWEEN requires a numeric column, got {name!r}"
            )
        low_value = expr.low.value
        high_value = expr.high.value
        if low_value is None or high_value is None:
            raise SQLExecutionError("BETWEEN bounds must not be NULL")
        return table.lookup_range(name, float(low_value), float(high_value))  # type: ignore[arg-type]

    def _eval_like(self, table: Table, expr: LikeExpr) -> set[int]:
        name = self._check_column(table, expr.column)
        if name == RECORD_ID:
            raise SQLExecutionError("LIKE is not supported on record_id")
        column = table.schema.column(name)
        if column.is_numeric:
            raise SQLExecutionError(
                f"LIKE requires a categorical column, got {name!r}"
            )
        pattern = expr.pattern.lower()
        stripped = pattern.strip("%")
        if "%" not in stripped and pattern.startswith("%") and pattern.endswith("%"):
            # The common '%needle%' shape: answered by the substring
            # index directly.
            return table.lookup_substring(name, stripped)
        regex = re.compile(
            "^" + ".*".join(re.escape(part) for part in pattern.split("%")) + "$"
        )
        return table.scan(
            lambda record: record.get(name) is not None
            and regex.match(str(record.get(name))) is not None
        )

    def _eval_in(self, table: Table, expr: InExpr) -> set[int]:
        name = self._check_column(table, expr.column)
        if expr.subquery is not None:
            sub_result = self.execute(expr.subquery)
            sub_items = expr.subquery.select_items
            if sub_items == ("*",) or sub_items == ["*"]:
                raise SQLExecutionError(
                    "IN subquery must select a single column, not *"
                )
            if len(sub_items) != 1 or not isinstance(sub_items[0], ColumnRef):
                raise SQLExecutionError(
                    "IN subquery must select exactly one plain column"
                )
            values = set(sub_result.column_values(sub_items[0].name))
        else:
            values = {literal.value for literal in expr.values}
        if name == RECORD_ID:
            wanted: set[int] = set()
            for value in values:
                try:
                    wanted.add(int(value))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
            return table.all_ids() & wanted
        column = table.schema.column(name)
        result: set[int] = set()
        for value in values:
            if value is None:
                continue
            if column.is_numeric:
                try:
                    result |= table.lookup_range(name, float(value), float(value))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
            else:
                result |= table.lookup_equal(name, str(value).lower())
        return result


def _compare(left, operator: str, right) -> bool:
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise SQLExecutionError(f"unknown operator {operator!r}")


def execute(database: Database, sql: str) -> SQLResult:
    """Convenience one-shot: parse and execute *sql* against *database*."""
    return SQLExecutor(database).execute_sql(sql)
