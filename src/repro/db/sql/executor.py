"""Set-algebra evaluation of SELECT statements over the ads database.

The executor turns a WHERE tree into record-id sets: AND is
intersection, OR is union, NOT is complement against the table, and
leaf predicates are answered by the table's indexes —

* equality on Type I/II columns via the hash indexes (the paper's
  primary/secondary indexes),
* numeric comparisons, BETWEEN and superlative extremes via the sorted
  indexes,
* ``LIKE '%needle%'`` via the length-3 substring index (Section 4.5).

NULL handling is two-valued: a NULL value simply fails every predicate
except ``IS NULL``, which is the behaviour CQAds relies on (an ad that
omits a property never matches a constraint on it).

Three performance devices keep the WHERE evaluation cheap without
changing any result set (all pure set algebra — see
``PERFORMANCE.md``):

* **lazy complements** — ``NOT`` and ``!=`` produce a
  :class:`_IdSet` carrying a *complemented* flag instead of
  materializing ``all_ids() - ids``; complements combine with AND/OR
  symbolically and are subtracted from the table at most once, at the
  top of the tree;
* **selectivity-ordered conjunctions** — AND (and OR) chains are
  flattened and evaluated cheapest-leaf-first (indexed equality before
  ranges before substring scans before complements), short-circuiting
  as soon as the accumulated intersection is empty (or the union
  covers the table);
* **ordered windows + adaptive access-path planning** — range,
  comparison and BETWEEN leaves are answered by bisecting a
  delta-maintained sorted column window
  (:mod:`repro.perf.window`) into a lazy :class:`_WindowSet` that
  intersects by membership instead of materializing, and a
  per-``(table, column, shape)`` :class:`AccessPlanner` tracks
  observed selectivity to choose scan vs. index vs. window (or the
  window's *complement*, when the range matches most of the table)
  per leaf; every choice is recorded on the executor's ``plan_trace``
  for explain output.

The pseudo-column ``record_id`` is available on every table; CQAds uses
it for the paper's ``Car_ID IN (subquery)`` idiom (Example 7).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.db.database import Database
from repro.db.sql.ast import (
    Aggregate,
    BetweenExpr,
    BinaryExpr,
    ColumnRef,
    Comparison,
    Expr,
    InExpr,
    LikeExpr,
    NotExpr,
    SelectStatement,
)
from repro.db.sql.plan_cache import DEFAULT_PLAN_CACHE, PlanCache
from repro.db.table import Record, Table
from repro.errors import SQLExecutionError
from repro.obs.registry import get_default_registry
from repro.obs.trace import current_span
from repro.perf.window import ColumnWindow, IdWindow, windows_for

__all__ = [
    "ACCESS_PATH_MODES",
    "AccessDecision",
    "AccessPlanner",
    "DEFAULT_ACCESS_PLANNER",
    "SQLExecutor",
    "SQLResult",
    "execute",
]

RECORD_ID = "record_id"

#: Valid ``SQLExecutor(access_paths=...)`` values: ``adaptive`` lets
#: observed selectivity pick per leaf, ``window``/``index``/``scan``
#: pin every range leaf to one access path (oracles for parity tests
#: and bench baselines).
ACCESS_PATH_MODES = ("adaptive", "window", "index", "scan")

#: Adaptive mode flips a range leaf to the *complement* representation
#: when its predicted selectivity exceeds this fraction (a wide range
#: has a small outside, so carrying the complement keeps AND chains
#: cheap).
COMPLEMENT_THRESHOLD = 0.5

#: Below this many rows adaptive mode skips windows entirely: the
#: sorted index materializes tiny sets faster than window bookkeeping.
MIN_WINDOW_ROWS = 64

#: Window-assisted ORDER BY only pays off once the sort is big enough
#: to beat Timsort on a cached position map.
WINDOW_ORDER_MIN_ROWS = 512

#: ``plan_trace`` length cap; the oldest half is dropped when hit so
#: long-lived executors cannot leak unbounded trace memory.
MAX_PLAN_TRACE = 4096


@dataclass(frozen=True)
class AccessDecision:
    """One recorded access-path choice for one WHERE leaf (or sort).

    ``shape`` names the leaf family the planner keys on (``range``,
    ``between``, ``lex-range``, ``id-range``, ``id-between``,
    ``order-by``); ``path`` is what was chosen (``window``,
    ``window-complement``, ``index``, ``scan``, ``window-order``);
    ``predicted``/``observed`` are the planner's selectivity estimate
    before the leaf ran and the fraction actually matched (``None``
    when the leaf never consulted a window).
    """

    table: str
    column: str
    shape: str
    path: str
    predicted: float | None
    observed: float | None
    rows: int


class AccessPlanner:
    """Running per-``(table, column, shape)`` selectivity estimates.

    An exponentially weighted moving average (``ALPHA = 0.5``) over
    the observed match fractions: heavy enough smoothing to ignore one
    odd query, fast enough to flip the access path after a couple of
    consistently wide (or narrow) ranges.  Thread-safe; the module
    shares one :data:`DEFAULT_ACCESS_PLANNER` across executors for the
    same reason the plan cache is shared — executors are built per
    call, and a per-instance planner would never learn anything.
    """

    ALPHA = 0.5
    DEFAULT_SELECTIVITY = 0.25

    def __init__(self) -> None:
        self._stats: dict[tuple[str, str, str], float] = {}
        self._lock = threading.Lock()

    def predict(self, key: tuple[str, str, str]) -> float:
        """The current selectivity estimate for *key* (default prior)."""
        return self._stats.get(key, self.DEFAULT_SELECTIVITY)

    def observe(self, key: tuple[str, str, str], selectivity: float) -> None:
        """Fold one observed match fraction into the estimate."""
        with self._lock:
            prior = self._stats.get(key)
            if prior is None:
                self._stats[key] = selectivity
            else:
                self._stats[key] = prior + self.ALPHA * (selectivity - prior)


#: Shared planner instance (see :class:`AccessPlanner`); tests pass a
#: private planner to keep their selectivity history isolated.
DEFAULT_ACCESS_PLANNER = AccessPlanner()


class _IdSet:
    """A possibly-complemented record-id set.

    ``ids`` holds the matching ids when ``complemented`` is False, and
    the *non*-matching ids otherwise (relative to the table's full id
    set).  Leaf sets are always subsets of the table, so flipping the
    flag is an exact lazy NOT.
    """

    __slots__ = ("ids", "complemented")

    def __init__(self, ids: set[int], complemented: bool = False) -> None:
        self.ids = ids
        self.complemented = complemented

    def negated(self) -> "_IdSet":
        return _IdSet(self.ids, not self.complemented)

    def intersect(self, other: "_IdSet | _WindowSet") -> "_IdSet":
        if isinstance(other, _WindowSet):
            return other.intersect(self)  # intersection commutes
        if not self.complemented and not other.complemented:
            return _IdSet(self.ids & other.ids)
        if not self.complemented:
            return _IdSet(self.ids - other.ids)
        if not other.complemented:
            return _IdSet(other.ids - self.ids)
        return _IdSet(self.ids | other.ids, True)

    def union(self, other: "_IdSet | _WindowSet") -> "_IdSet":
        if isinstance(other, _WindowSet):
            return other.union(self)  # union commutes
        if not self.complemented and not other.complemented:
            return _IdSet(self.ids | other.ids)
        if not self.complemented:
            return _IdSet(other.ids - self.ids, True)
        if not other.complemented:
            return _IdSet(self.ids - other.ids, True)
        return _IdSet(self.ids & other.ids, True)

    def is_empty(self) -> bool:
        """Definitely matches nothing (complements are never empty
        without consulting the table, so they report False)."""
        return not self.complemented and not self.ids

    def is_universal(self) -> bool:
        """Definitely matches the whole table."""
        return self.complemented and not self.ids

    def materialize(self, table: Table) -> set[int]:
        if self.complemented:
            return table.all_ids() - self.ids
        return self.ids


class _WindowSet:
    """A lazy range-leaf result: an :class:`~repro.perf.window.IdWindow`
    participating in the :class:`_IdSet` algebra without materializing.

    As long as it only meets plain (non-complemented) sets it stays a
    window: emptiness/universality are slice arithmetic, and an
    intersection probes membership (one record fetch + bounds check
    per candidate) when the other side is smaller than the window —
    the payoff case, since a selective AND chain evaluates its cheap
    equality leaves first.  Any operation that genuinely needs the
    ids (union, complement-vs-complement) forces a one-time
    materialization into a plain :class:`_IdSet`.
    """

    __slots__ = ("window", "complemented")

    def __init__(self, window: IdWindow, complemented: bool = False) -> None:
        self.window = window
        self.complemented = complemented

    def negated(self) -> "_WindowSet":
        return _WindowSet(self.window, not self.complemented)

    def _plain(self) -> _IdSet:
        return _IdSet(self.window.materialize(), self.complemented)

    def is_empty(self) -> bool:
        return not self.complemented and self.window.count() == 0

    def is_universal(self) -> bool:
        # The complement of an empty window is every id, NULLs included.
        return self.complemented and self.window.count() == 0

    def intersect(self, other: "_IdSet | _WindowSet") -> _IdSet:
        if isinstance(other, _WindowSet):
            other = other._plain()
        if not other.complemented:
            if not self.complemented:
                if self.window.count() <= len(other.ids):
                    return _IdSet(self.window.materialize() & other.ids)
                return _IdSet(
                    {rid for rid in other.ids if rid in self.window}
                )
            # complemented window ∩ plain set: keep the ids *outside*
            # the range (NULL values are outside by definition).
            return _IdSet({rid for rid in other.ids if rid not in self.window})
        if not self.complemented:
            return _IdSet(self.window.materialize() - other.ids)
        return _IdSet(self.window.materialize() | other.ids, True)

    def union(self, other: "_IdSet | _WindowSet") -> _IdSet:
        if isinstance(other, _WindowSet):
            other = other._plain()
        return self._plain().union(other)

    def materialize(self, table: Table) -> set[int]:
        ids = self.window.materialize()
        if self.complemented:
            return table.all_ids() - ids
        return ids


def _flatten_chain(expr: BinaryExpr) -> list[Expr]:
    """Flatten a left-deep AND/OR chain into its operand list."""
    operator = expr.operator
    operands: list[Expr] = []
    stack: list[Expr] = [expr.right, expr.left]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryExpr) and node.operator == operator:
            stack.append(node.right)
            stack.append(node.left)
        else:
            operands.append(node)
    return operands


def _static_cost(expr: Expr) -> int:
    """Rough evaluation-cost rank of a WHERE leaf (lower = cheaper).

    Indexed equality is the cheapest and typically the most selective;
    sorted-index ranges come next; substring/IN lookups after; scans
    and complements (``!=``, NULL tests, NOT) last.  AND chains cost
    what their cheapest operand costs (they can short-circuit there);
    OR chains cost their dearest operand.
    """
    if isinstance(expr, Comparison):
        if expr.value.value is None:
            return 4  # NULL tests scan the table
        if expr.operator == "=":
            return 0
        if expr.operator in ("!=", "<>"):
            return 4
        if isinstance(expr.value.value, str):
            return 3  # lexicographic range on a categorical: full scan
        return 1
    if isinstance(expr, BetweenExpr):
        return 1
    if isinstance(expr, LikeExpr):
        return 2
    if isinstance(expr, InExpr):
        return 5 if expr.subquery is not None else 2
    if isinstance(expr, NotExpr):
        return 4 + _static_cost(expr.operand)
    if isinstance(expr, BinaryExpr):
        left, right = _static_cost(expr.left), _static_cost(expr.right)
        base = min(left, right) if expr.operator == "AND" else max(left, right)
        return base + 1
    return 6


@dataclass
class SQLResult:
    """Outcome of a SELECT.

    ``records`` always holds the matching records in output order;
    ``rows`` holds the projected rows (dicts) when the select list was
    not ``*``; ``scalars`` holds aggregate values keyed by their SQL
    rendering (e.g. ``"MIN(price)"``).
    """

    records: list[Record] = field(default_factory=list)
    rows: list[dict[str, object]] = field(default_factory=list)
    scalars: dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records) if not self.scalars else len(self.rows)

    def record_ids(self) -> list[int]:
        return [record.record_id for record in self.records]

    def column_values(self, column: str) -> list[object]:
        """Values of *column* across the result, in output order."""
        column = column.lower()
        if column == RECORD_ID:
            return [record.record_id for record in self.records]
        return [record.get(column) for record in self.records]


class SQLExecutor:
    """Evaluates parsed SELECT statements against a database.

    ``plan_cache`` backs :meth:`execute_sql`; the module-wide
    :data:`~repro.db.sql.plan_cache.DEFAULT_PLAN_CACHE` is shared when
    none is given (executors are routinely constructed per call, so a
    per-instance cache would never get warm).

    ``access_paths`` picks how range/comparison/BETWEEN leaves are
    answered (see :data:`ACCESS_PATH_MODES`); every mode is
    bit-identical by construction, so ``scan`` doubles as the parity
    oracle for the window path.  ``planner`` supplies the selectivity
    stats for ``adaptive`` mode (shared
    :data:`DEFAULT_ACCESS_PLANNER` when omitted).  Each evaluated
    range leaf appends an :class:`AccessDecision` to ``plan_trace``,
    which the explain pipeline surfaces.
    """

    def __init__(
        self,
        database: Database,
        plan_cache: PlanCache | None = None,
        access_paths: str = "adaptive",
        planner: AccessPlanner | None = None,
    ) -> None:
        if access_paths not in ACCESS_PATH_MODES:
            raise ValueError(
                f"access_paths must be one of {ACCESS_PATH_MODES}, "
                f"got {access_paths!r}"
            )
        self.database = database
        self.plan_cache = plan_cache if plan_cache is not None else DEFAULT_PLAN_CACHE
        self.access_paths = access_paths
        self.planner = planner if planner is not None else DEFAULT_ACCESS_PLANNER
        self.plan_trace: list[AccessDecision] = []
        #: Decisions evicted by the ``MAX_PLAN_TRACE`` cap — surfaced in
        #: :meth:`plan_summary` so a truncated trace is never mistaken
        #: for a complete one.
        self.plan_dropped = 0

    def _record(self, decision: AccessDecision) -> None:
        if len(self.plan_trace) >= MAX_PLAN_TRACE:
            evicted = MAX_PLAN_TRACE // 2
            del self.plan_trace[:evicted]
            self.plan_dropped += evicted
            get_default_registry().counter(
                "repro_plan_trace_dropped_total"
            ).value += evicted
            current = current_span()
            if current is not None:
                current.add_event(
                    "plan_trace_dropped", evicted=evicted, total=self.plan_dropped
                )
        self.plan_trace.append(decision)

    def plan_summary(self) -> str:
        """Compact ``path xN`` rendering of ``plan_trace`` for explain.

        Reports ``dropped N`` when the trace cap evicted decisions, so
        the counts are known to be a floor rather than exact.
        """
        counts: dict[str, int] = {}
        for decision in self.plan_trace:
            counts[decision.path] = counts.get(decision.path, 0) + 1
        if not counts and not self.plan_dropped:
            return "no planned leaves"
        summary = ", ".join(
            f"{path} x{count}" for path, count in sorted(counts.items())
        )
        if self.plan_dropped:
            suffix = f"dropped {self.plan_dropped}"
            summary = f"{summary}, {suffix}" if summary else suffix
        return summary

    # ------------------------------------------------------------------
    def execute(self, statement: SelectStatement) -> SQLResult:
        """Run *statement* and return a :class:`SQLResult`."""
        table = self.database.table(statement.table)
        if statement.where is None:
            ids = table.all_ids()
        else:
            ids = self.eval_where(table, statement.where)
        return self._finish(table, statement, ids)

    def execute_with_ids(
        self, statement: SelectStatement, ids: Iterable[int]
    ) -> SQLResult:
        """Run *statement*'s post-WHERE phases over a precomputed id set.

        The shared-subplan relaxation engine derives each N-1 pool's id
        set by intersecting cached per-unit sets; this entry point runs
        the identical ordering/limit/projection code on them, so the
        two paths cannot drift apart.
        """
        table = self.database.table(statement.table)
        return self._finish(table, statement, ids)

    def _finish(
        self, table: Table, statement: SelectStatement, ids: Iterable[int]
    ) -> SQLResult:
        records = table.fetch(ids)
        sort_keys = list(statement.order_by) + list(statement.group_by)
        if sort_keys:
            records = self._sort(table, records, sort_keys)
        if statement.limit is not None:
            records = records[: statement.limit]
        return self._project(table, statement, records)

    def execute_sql(self, sql: str) -> SQLResult:
        """Run a SQL string through the plan cache."""
        return self.execute(self.plan_cache.get(sql))

    # ------------------------------------------------------------------
    # projection and ordering
    # ------------------------------------------------------------------
    def _sort(
        self, table: Table, records: list[Record], keys: list
    ) -> list[Record]:
        def sort_key(record: Record):
            parts = []
            for key in keys:
                value = self._record_value(record, key.column)
                # None sorts after everything, regardless of direction.
                missing = value is None
                if isinstance(value, str):
                    ordinal: object = value
                else:
                    ordinal = value if value is not None else 0
                if key.descending and isinstance(ordinal, (int, float)):
                    ordinal = -ordinal
                parts.append((missing, ordinal))
            parts.append(record.record_id)
            return tuple(parts)

        # String columns with DESC need a separate pass since strings
        # cannot be negated; handle the common single-key case directly.
        if len(keys) == 1:
            key = keys[0]
            column = key.column.name

            def single(record: Record):
                value = self._record_value(record, key.column)
                return (value is None, value if value is not None else 0, record.record_id)

            ordered = self._window_sorted(table, records, column)
            if ordered is None:
                ordered = sorted(records, key=single)
            if key.descending:
                present = [r for r in ordered if r.get(column) is not None or column == RECORD_ID]
                absent = [r for r in ordered if r.get(column) is None and column != RECORD_ID]
                present.reverse()
                return present + absent
            return ordered
        return sorted(records, key=sort_key)

    def _window_sorted(
        self, table: Table, records: list[Record], column: str
    ) -> list[Record] | None:
        """Order *records* via the column window's cached position map.

        The window's id array is already ``(value asc, id asc)`` —
        exactly the single-key sort order for present values — so a
        big enough sort becomes a position lookup per record plus one
        integer sort, instead of Timsort over tuple keys.  Declines
        (``None``) for small inputs, sharded facades (per-shard
        positions don't merge), non-numeric keys and ``record_id``
        (already id-sorted by ``fetch``).
        """
        if self.access_paths not in ("adaptive", "window"):
            return None
        if column == RECORD_ID or getattr(table, "shards", None) is not None:
            return None
        if len(records) < WINDOW_ORDER_MIN_ROWS:
            return None
        if not table.schema.has_column(column):
            return None
        if not table.schema.column(column).is_numeric:
            return None
        positions = windows_for(table).window(column).order_positions()
        present: list[tuple[int, Record]] = []
        absent: list[Record] = []
        for record in records:  # fetch() order: id-ascending
            position = positions.get(record.record_id)
            if position is None:
                absent.append(record)  # NULL sorts last, id-ascending
            else:
                present.append((position, record))
        present.sort(key=lambda pair: pair[0])
        self._record(
            AccessDecision(
                table.name,
                column,
                "order-by",
                "window-order",
                None,
                None,
                len(records),
            )
        )
        return [record for _, record in present] + absent

    def _record_value(self, record: Record, column: ColumnRef) -> object:
        if column.name == RECORD_ID:
            return record.record_id
        return record.get(column.name)

    def _project(
        self, table: Table, statement: SelectStatement, records: list[Record]
    ) -> SQLResult:
        items = statement.select_items
        if items == ("*",) or items == ["*"]:
            return SQLResult(records=records)
        aggregates = [item for item in items if isinstance(item, Aggregate)]
        if aggregates:
            if len(aggregates) != len(items):
                raise SQLExecutionError(
                    "cannot mix aggregates and plain columns in a select list"
                )
            scalars: dict[str, object] = {}
            for aggregate in aggregates:
                values = [
                    self._record_value(record, aggregate.column)
                    for record in records
                ]
                values = [value for value in values if value is not None]
                if not values:
                    scalars[aggregate.to_sql()] = None
                elif aggregate.function == "MIN":
                    scalars[aggregate.to_sql()] = min(values)  # type: ignore[type-var]
                else:
                    scalars[aggregate.to_sql()] = max(values)  # type: ignore[type-var]
            return SQLResult(records=records, scalars=scalars)
        rows = []
        for record in records:
            row: dict[str, object] = {}
            for item in items:
                assert isinstance(item, ColumnRef)
                if item.name != RECORD_ID and not table.schema.has_column(item.name):
                    raise SQLExecutionError(
                        f"unknown column {item.name!r} in select list of "
                        f"{table.name!r}"
                    )
                row[item.name] = self._record_value(record, item)
            rows.append(row)
        return SQLResult(records=records, rows=rows)

    # ------------------------------------------------------------------
    # WHERE evaluation
    # ------------------------------------------------------------------
    def eval_where(self, table: Table, expr: Expr) -> set[int]:
        """The id set matching a WHERE expression against *table*."""
        return self._eval_lazy(table, expr).materialize(table)

    def _eval_expr(self, table: Table, expr: Expr) -> set[int]:
        # Retained name from the eager implementation; callers get the
        # same materialized set as before.
        return self.eval_where(table, expr)

    def _eval_lazy(self, table: Table, expr: Expr) -> _IdSet:
        if isinstance(expr, BinaryExpr):
            operands = sorted(_flatten_chain(expr), key=_static_cost)
            accumulated: _IdSet | None = None
            for index, operand in enumerate(operands):
                if accumulated is not None and (
                    accumulated.is_empty()
                    if expr.operator == "AND"
                    else accumulated.is_universal()
                ):
                    # Short-circuit: the outcome is decided.  Still
                    # validate the skipped operands so a malformed
                    # query raises deterministically instead of
                    # depending on which leaf happened to be empty.
                    for skipped in operands[index:]:
                        self._validate_expr(table, skipped)
                    break
                evaluated = self._eval_lazy(table, operand)
                if accumulated is None:
                    accumulated = evaluated
                elif expr.operator == "AND":
                    accumulated = accumulated.intersect(evaluated)
                else:
                    accumulated = accumulated.union(evaluated)
            assert accumulated is not None  # chains have >= 2 operands
            return accumulated
        if isinstance(expr, NotExpr):
            return self._eval_lazy(table, expr.operand).negated()
        if isinstance(expr, Comparison):
            return self._eval_comparison(table, expr)
        if isinstance(expr, BetweenExpr):
            return self._eval_between(table, expr)
        if isinstance(expr, LikeExpr):
            return _IdSet(self._eval_like(table, expr))
        if isinstance(expr, InExpr):
            return _IdSet(self._eval_in(table, expr))
        raise SQLExecutionError(f"unsupported expression node {expr!r}")

    def _validate_expr(self, table: Table, expr: Expr) -> None:
        """Raise exactly the errors evaluating *expr* would, sans work.

        Mirrors each leaf evaluator's error conditions (unknown
        columns, NULL with an ordering operator, numeric columns vs
        non-numbers, BETWEEN/LIKE type constraints, IN-subquery shape)
        so short-circuited operands still surface malformed queries.
        """
        if isinstance(expr, BinaryExpr):
            self._validate_expr(table, expr.left)
            self._validate_expr(table, expr.right)
            return
        if isinstance(expr, NotExpr):
            self._validate_expr(table, expr.operand)
            return
        if isinstance(expr, Comparison):
            name = self._check_column(table, expr.column)
            value = expr.value.value
            operator = "!=" if expr.operator == "<>" else expr.operator
            if value is None:
                if operator not in ("=", "!="):
                    raise SQLExecutionError(
                        "NULL only supports = / != comparisons"
                    )
                return
            if name != RECORD_ID and table.schema.column(name).is_numeric:
                try:
                    float(value)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    raise SQLExecutionError(
                        f"numeric column {name!r} compared to non-number "
                        f"{value!r}"
                    ) from None
            return
        if isinstance(expr, BetweenExpr):
            name = self._check_column(table, expr.column)
            if name != RECORD_ID and not table.schema.column(name).is_numeric:
                raise SQLExecutionError(
                    f"BETWEEN requires a numeric column, got {name!r}"
                )
            if expr.low.value is None or expr.high.value is None:
                raise SQLExecutionError("BETWEEN bounds must not be NULL")
            return
        if isinstance(expr, LikeExpr):
            name = self._check_column(table, expr.column)
            if name == RECORD_ID:
                raise SQLExecutionError("LIKE is not supported on record_id")
            if table.schema.column(name).is_numeric:
                raise SQLExecutionError(
                    f"LIKE requires a categorical column, got {name!r}"
                )
            return
        if isinstance(expr, InExpr):
            self._check_column(table, expr.column)
            if expr.subquery is not None:
                sub_items = expr.subquery.select_items
                if sub_items == ("*",) or sub_items == ["*"]:
                    raise SQLExecutionError(
                        "IN subquery must select a single column, not *"
                    )
                if len(sub_items) != 1 or not isinstance(sub_items[0], ColumnRef):
                    raise SQLExecutionError(
                        "IN subquery must select exactly one plain column"
                    )
                sub_table = self.database.table(expr.subquery.table)
                if expr.subquery.where is not None:
                    self._validate_expr(sub_table, expr.subquery.where)
            return
        raise SQLExecutionError(f"unsupported expression node {expr!r}")

    def _check_column(self, table: Table, column: ColumnRef) -> str:
        if column.name == RECORD_ID:
            return RECORD_ID
        return table.schema.column(column.name).name

    # Operator -> (low?, high?, include_low, include_high) for the
    # window/index range translation; `=`/`!=` are handled separately.
    _RANGE_BOUNDS = {
        "<": (False, True, True, False),
        "<=": (False, True, True, True),
        ">": (True, False, False, True),
        ">=": (True, False, True, True),
    }

    def _eval_range(
        self,
        table: Table,
        name: str,
        kind: str,
        low: object | None,
        high: object | None,
        include_low: bool,
        include_high: bool,
        shape: str,
    ) -> "_IdSet | _WindowSet | None":
        """Answer one range leaf through the window layer (or decline).

        Returns ``None`` when the legacy index path should run instead
        (``index`` mode, or ``adaptive`` on a table too small for
        windows to pay off); otherwise builds the column's
        :class:`~repro.perf.window.IdWindow` — one segment per shard —
        observes its selectivity, and returns either the lazy window or
        (adaptive, predicted-wide ranges) its complement as a plain
        outside-ids set.  Every outcome lands on ``plan_trace``.
        """
        rows = len(table)
        if self.access_paths == "index" or (
            self.access_paths == "adaptive" and rows < MIN_WINDOW_ROWS
        ):
            self._record(
                AccessDecision(table.name, name, shape, "index", None, None, rows)
            )
            return None
        windows = windows_for(table).column_windows(name)
        window = IdWindow(
            table, name, kind, low, high, include_low, include_high, windows
        )
        observed = (window.count() / rows) if rows else 0.0
        key = (table.name, name, shape)
        predicted = self.planner.predict(key)
        self.planner.observe(key, observed)
        if self.access_paths == "adaptive" and predicted > COMPLEMENT_THRESHOLD:
            # Predicted wide: carry the (small) complement instead.
            # The complement of "in range" is "outside the range or
            # NULL", so the NULL ids join the outside set.
            outside = window.outside()
            if kind != ColumnWindow.RECORD_ID:
                outside |= table.null_ids(name)
            self._record(
                AccessDecision(
                    table.name,
                    name,
                    shape,
                    "window-complement",
                    predicted,
                    observed,
                    rows,
                )
            )
            return _IdSet(outside, complemented=True)
        self._record(
            AccessDecision(
                table.name, name, shape, "window", predicted, observed, rows
            )
        )
        return _WindowSet(window)

    def _eval_comparison(
        self, table: Table, expr: Comparison
    ) -> "_IdSet | _WindowSet":
        name = self._check_column(table, expr.column)
        value = expr.value.value
        operator = "!=" if expr.operator == "<>" else expr.operator
        if value is None:
            if operator not in ("=", "!="):
                raise SQLExecutionError("NULL only supports = / != comparisons")
            if name != RECORD_ID and self.access_paths != "scan":
                # Delta-maintained null index; copied because _IdSet
                # results can escape into caches.
                null_ids = set(table.null_ids(name))
            else:
                # Legacy scan — also the deliberate path for the
                # record_id pseudo-column, where `record.get(...)` is
                # always None and `= NULL` therefore matches every
                # record (a quirk callers rely on).
                null_ids = table.scan(lambda record: record.get(name) is None)
            if operator == "=":
                return _IdSet(null_ids)
            return _IdSet(null_ids, complemented=True)
        if name == RECORD_ID:
            try:
                target = int(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return _IdSet(set())
            if self.access_paths not in ("scan", "index"):
                if operator == "=":
                    present = table.get(target) is not None
                    return _IdSet({target} if present else set())
                if operator == "!=":
                    present = table.get(target) is not None
                    return _IdSet(
                        {target} if present else set(), complemented=True
                    )
                bounds = self._RANGE_BOUNDS[operator]
                result = self._eval_range(
                    table,
                    RECORD_ID,
                    ColumnWindow.RECORD_ID,
                    target if bounds[0] else None,
                    target if bounds[1] else None,
                    bounds[2],
                    bounds[3],
                    "id-range",
                )
                if result is not None:
                    return result
            return _IdSet(
                {
                    record_id
                    for record_id in table.all_ids()
                    if _compare(record_id, operator, target)
                }
            )
        column = table.schema.column(name)
        if column.is_numeric:
            try:
                number = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise SQLExecutionError(
                    f"numeric column {name!r} compared to non-number {value!r}"
                ) from None
            if self.access_paths == "scan":
                return self._scan_numeric(table, name, operator, number)
            if operator == "=":
                return _IdSet(table.lookup_range(name, number, number))
            if operator == "!=":
                return _IdSet(
                    table.lookup_range(name, number, number), complemented=True
                )
            bounds = self._RANGE_BOUNDS[operator]
            result = self._eval_range(
                table,
                name,
                ColumnWindow.NUMERIC,
                number if bounds[0] else None,
                number if bounds[1] else None,
                bounds[2],
                bounds[3],
                "range",
            )
            if result is not None:
                return result
            if operator == "<":
                return _IdSet(
                    table.lookup_range(name, None, number, include_high=False)
                )
            if operator == "<=":
                return _IdSet(table.lookup_range(name, None, number))
            if operator == ">":
                return _IdSet(
                    table.lookup_range(name, number, None, include_low=False)
                )
            return _IdSet(table.lookup_range(name, number, None))
        text = str(value).lower()
        if self.access_paths == "scan":
            return self._scan_categorical(table, name, operator, text)
        if operator == "=":
            return _IdSet(table.lookup_equal(name, text))
        if operator == "!=":
            # NULLs fail every predicate, != included: complement the
            # matches *and* the NULLs.  The delta-maintained null
            # index replaces what used to be a full-table re-scan; the
            # `|` allocates a fresh set, leaving the live index alone.
            matched = table.lookup_equal(name, text)
            return _IdSet(matched | table.null_ids(name), complemented=True)
        # Lexicographic comparisons on categorical columns: the sorted
        # categorical window (string-keyed) replaces the full scan.
        bounds = self._RANGE_BOUNDS[operator]
        result = self._eval_range(
            table,
            name,
            ColumnWindow.CATEGORICAL,
            text if bounds[0] else None,
            text if bounds[1] else None,
            bounds[2],
            bounds[3],
            "lex-range",
        )
        if result is not None:
            return result
        return _IdSet(
            table.scan(
                lambda record: record.get(name) is not None
                and _compare(str(record.get(name)), operator, text)
            )
        )

    def _scan_numeric(
        self, table: Table, name: str, operator: str, number: float
    ) -> _IdSet:
        """Full-scan oracle for numeric comparisons (``scan`` mode)."""
        if operator == "!=":
            # Same complemented representation as the index path, so
            # NULL semantics match exactly.
            return _IdSet(
                table.scan(
                    lambda record: record.get(name) is not None
                    and float(record.get(name)) == number  # type: ignore[arg-type]
                ),
                complemented=True,
            )
        return _IdSet(
            table.scan(
                lambda record: record.get(name) is not None
                and _compare(float(record.get(name)), operator, number)  # type: ignore[arg-type]
            )
        )

    def _scan_categorical(
        self, table: Table, name: str, operator: str, text: str
    ) -> _IdSet:
        """Full-scan oracle for categorical comparisons (``scan`` mode)."""
        if operator == "=":
            return _IdSet(
                table.scan(lambda record: record.get(name) == text)
            )
        if operator == "!=":
            return _IdSet(
                table.scan(
                    lambda record: record.get(name) == text
                    or record.get(name) is None
                ),
                complemented=True,
            )
        return _IdSet(
            table.scan(
                lambda record: record.get(name) is not None
                and _compare(str(record.get(name)), operator, text)
            )
        )

    def _eval_between(
        self, table: Table, expr: BetweenExpr
    ) -> "_IdSet | _WindowSet":
        name = self._check_column(table, expr.column)
        if name == RECORD_ID:
            low, high = int(expr.low.value), int(expr.high.value)  # type: ignore[arg-type]
            if self.access_paths not in ("scan", "index"):
                result = self._eval_range(
                    table,
                    RECORD_ID,
                    ColumnWindow.RECORD_ID,
                    low,
                    high,
                    True,
                    True,
                    "id-between",
                )
                if result is not None:
                    return result
            return _IdSet(
                {rid for rid in table.all_ids() if low <= rid <= high}
            )
        column = table.schema.column(name)
        if not column.is_numeric:
            raise SQLExecutionError(
                f"BETWEEN requires a numeric column, got {name!r}"
            )
        low_value = expr.low.value
        high_value = expr.high.value
        if low_value is None or high_value is None:
            raise SQLExecutionError("BETWEEN bounds must not be NULL")
        low_f, high_f = float(low_value), float(high_value)  # type: ignore[arg-type]
        if self.access_paths == "scan":
            return _IdSet(
                table.scan(
                    lambda record: record.get(name) is not None
                    and low_f <= float(record.get(name)) <= high_f  # type: ignore[arg-type]
                )
            )
        result = self._eval_range(
            table,
            name,
            ColumnWindow.NUMERIC,
            low_f,
            high_f,
            True,
            True,
            "between",
        )
        if result is not None:
            return result
        return _IdSet(table.lookup_range(name, low_f, high_f))

    def _eval_like(self, table: Table, expr: LikeExpr) -> set[int]:
        name = self._check_column(table, expr.column)
        if name == RECORD_ID:
            raise SQLExecutionError("LIKE is not supported on record_id")
        column = table.schema.column(name)
        if column.is_numeric:
            raise SQLExecutionError(
                f"LIKE requires a categorical column, got {name!r}"
            )
        pattern = expr.pattern.lower()
        stripped = pattern.strip("%")
        if "%" not in stripped and pattern.startswith("%") and pattern.endswith("%"):
            # The common '%needle%' shape: answered by the substring
            # index directly.
            return table.lookup_substring(name, stripped)
        regex = re.compile(
            "^" + ".*".join(re.escape(part) for part in pattern.split("%")) + "$"
        )
        return table.scan(
            lambda record: record.get(name) is not None
            and regex.match(str(record.get(name))) is not None
        )

    def _eval_in(self, table: Table, expr: InExpr) -> set[int]:
        name = self._check_column(table, expr.column)
        if expr.subquery is not None:
            sub_result = self.execute(expr.subquery)
            sub_items = expr.subquery.select_items
            if sub_items == ("*",) or sub_items == ["*"]:
                raise SQLExecutionError(
                    "IN subquery must select a single column, not *"
                )
            if len(sub_items) != 1 or not isinstance(sub_items[0], ColumnRef):
                raise SQLExecutionError(
                    "IN subquery must select exactly one plain column"
                )
            values = set(sub_result.column_values(sub_items[0].name))
        else:
            values = {literal.value for literal in expr.values}
        if name == RECORD_ID:
            wanted: set[int] = set()
            for value in values:
                try:
                    wanted.add(int(value))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
            return table.all_ids() & wanted
        column = table.schema.column(name)
        result: set[int] = set()
        for value in values:
            if value is None:
                continue
            if column.is_numeric:
                try:
                    result |= table.lookup_range(name, float(value), float(value))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
            else:
                result |= table.lookup_equal(name, str(value).lower())
        return result


def _compare(left, operator: str, right) -> bool:
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise SQLExecutionError(f"unknown operator {operator!r}")


def execute(database: Database, sql: str) -> SQLResult:
    """Convenience one-shot: parse and execute *sql* against *database*."""
    return SQLExecutor(database).execute_sql(sql)
