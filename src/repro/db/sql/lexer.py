"""Tokenizer for the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

__all__ = ["SQLToken", "tokenize_sql", "KEYWORDS"]

KEYWORDS = frozenset(
    """
    select from where and or not in between like group order by desc asc
    limit min max null is distinct
    """.split()
)

_PUNCTUATION = {"(", ")", ",", "*", "."}
_OPERATOR_STARTS = {"=", "<", ">", "!"}


@dataclass(frozen=True)
class SQLToken:
    """One lexical token.

    ``kind`` is one of ``keyword``, ``identifier``, ``number``,
    ``string``, ``operator``, ``punct``.  Keywords are lowercased;
    identifiers keep their original text (the executor canonicalizes).
    """

    kind: str
    text: str
    position: int


def tokenize_sql(sql: str) -> list[SQLToken]:
    """Tokenize *sql*; raise :class:`SQLSyntaxError` on bad characters."""
    tokens: list[SQLToken] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            # single-quoted string with '' escaping
            j = i + 1
            chunks: list[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(sql[j])
                j += 1
            tokens.append(SQLToken("string", "".join(chunks), i))
            i = j + 1
            continue
        if ch in "`\"":
            # quoted identifier
            closing = sql.find(ch, i + 1)
            if closing == -1:
                raise SQLSyntaxError("unterminated quoted identifier", i)
            tokens.append(SQLToken("identifier", sql[i + 1 : closing], i))
            i = closing + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(SQLToken("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(SQLToken("keyword", lowered, i))
            else:
                tokens.append(SQLToken("identifier", word, i))
            i = j
            continue
        if ch in _OPERATOR_STARTS:
            two = sql[i : i + 2]
            if two in ("<=", ">=", "!=", "<>"):
                tokens.append(SQLToken("operator", two, i))
                i += 2
            elif ch == "!":
                raise SQLSyntaxError(f"unexpected character {ch!r}", i)
            else:
                tokens.append(SQLToken("operator", ch, i))
                i += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(SQLToken("punct", ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    return tokens
