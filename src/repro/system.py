"""One-call construction of a fully-provisioned CQAds system.

``build_system()`` performs the whole provisioning pipeline the paper
describes across Sections 3-4:

1. generate 500 ads per domain (Section 4.1.4) into a fresh database;
2. derive each domain's trie, numeric bounds and ebay-style value
   ranges from the generated data;
3. synthesize a query log per domain and learn its TI-matrix (Eq. 3);
4. synthesize the topical corpus and learn the shared WS-matrix;
5. register every domain with CQAds and train the JBBSM classifier on
   the ad texts.

The returned :class:`BuiltSystem` keeps every intermediate artifact
(datasets, latent models, matrices) so tests, examples and benchmarks
can inspect or re-use them without rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.naive_bayes import NaiveBayesClassifier
from repro.datagen.ads import DomainDataset, build_dataset
from repro.datagen.corpus import generate_corpus
from repro.datagen.latent import LatentSimilarity
from repro.datagen.querylog import Session, generate_query_log
from repro.datagen.vocab import DOMAIN_NAMES, build_domain_spec
from repro.db.database import Database
from repro.qa.domain import AdsDomain
from repro.qa.pipeline import CQAds
from repro.ranking.rank_sim import RankingResources
from repro.ranking.ti_matrix import TIMatrix
from repro.ranking.ws_matrix import WSMatrix

__all__ = ["BuiltDomain", "BuiltSystem", "build_system"]


@dataclass
class BuiltDomain:
    """All artifacts of one provisioned domain."""

    dataset: DomainDataset
    domain: AdsDomain
    latent: LatentSimilarity
    sessions: list[Session]
    ti_matrix: TIMatrix
    resources: RankingResources


@dataclass
class BuiltSystem:
    """A provisioned CQAds instance plus its data substrate."""

    cqads: CQAds
    database: Database
    domains: dict[str, BuiltDomain] = field(default_factory=dict)
    ws_matrix: WSMatrix | None = None
    corpus: list[str] = field(default_factory=list)

    def domain(self, name: str) -> BuiltDomain:
        return self.domains[name]


def build_system(
    domain_names: list[str] | None = None,
    ads_per_domain: int = 500,
    sessions_per_domain: int = 1500,
    corpus_documents: int = 1200,
    seed: int = 7,
    classifier: NaiveBayesClassifier | None = None,
    train_classifier: bool = True,
    **cqads_options,
) -> BuiltSystem:
    """Provision CQAds over *domain_names* (default: all eight).

    The defaults match the paper's scale: 500 ads per domain, one table
    per domain, a 30-answer cap.  Smaller values make unit tests fast.
    """
    names = list(domain_names) if domain_names is not None else list(DOMAIN_NAMES)
    database = Database()
    system = BuiltSystem(cqads=None, database=database)  # type: ignore[arg-type]
    specs = []
    for name in names:
        spec = build_domain_spec(name)
        specs.append(spec)
    system.corpus = generate_corpus(specs, n_documents=corpus_documents, seed=seed)
    system.ws_matrix = WSMatrix.from_corpus(system.corpus)
    cqads = CQAds(database, classifier=classifier, **cqads_options)
    for spec in specs:
        dataset = build_dataset(spec, database, ads_per_domain, seed=seed)
        domain = AdsDomain.from_table(spec.name, dataset.table)
        # The generated dataset's ebay-style ranges override the
        # table-derived ones (same computation, same data — kept for
        # symmetry with the paper's separate ebay statistics source).
        domain.value_ranges.update(dataset.value_ranges)
        latent = LatentSimilarity(spec)
        sessions = generate_query_log(
            spec, latent, n_sessions=sessions_per_domain, seed=seed + 4
        )
        ti_matrix = TIMatrix.from_query_log(sessions)
        resources = RankingResources(
            ti_matrix=ti_matrix,
            ws_matrix=system.ws_matrix,
            value_ranges=dict(domain.value_ranges),
            type_i_columns=[c.name for c in spec.schema.type_i_columns],
            product_keys=[product.key() for product in spec.products],
        )
        cqads.add_domain(domain, training_texts=dataset.ad_texts(), resources=resources)
        system.domains[spec.name] = BuiltDomain(
            dataset=dataset,
            domain=domain,
            latent=latent,
            sessions=sessions,
            ti_matrix=ti_matrix,
            resources=resources,
        )
    if train_classifier and len(names) > 1:
        cqads.train_classifier()
    system.cqads = cqads
    return system
