"""One-call construction of a fully-provisioned CQAds system.

``build_system()`` performs the whole provisioning pipeline the paper
describes across Sections 3-4:

1. generate 500 ads per domain (Section 4.1.4) into a fresh database;
2. derive each domain's trie, numeric bounds and ebay-style value
   ranges from the generated data;
3. synthesize a query log per domain and learn its TI-matrix (Eq. 3);
4. synthesize the topical corpus and learn the shared WS-matrix;
5. register every domain with CQAds and train the JBBSM classifier on
   the ad texts.

The returned :class:`BuiltSystem` keeps every intermediate artifact
(datasets, latent models, matrices) so tests, examples and benchmarks
can inspect or re-use them without rebuilding.

With ``lazy=True`` (what :meth:`repro.api.builder.SystemBuilder.lazy`
sets), only the shared substrate (database, corpus, WS-matrix, the
engine) is built up front; each domain is provisioned on first access
through :meth:`BuiltSystem.ensure_domain`.  Eager and lazy builds are
deterministic and identical per domain — every generator is seeded per
call, so provisioning order does not matter.

Prefer :class:`repro.api.builder.SystemBuilder` for new code; this
function remains the single implementation both surfaces share.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.classify.naive_bayes import NaiveBayesClassifier
from repro.datagen.ads import DomainDataset, build_dataset
from repro.datagen.corpus import generate_corpus
from repro.datagen.latent import LatentSimilarity
from repro.datagen.querylog import Session, generate_query_log
from repro.datagen.vocab import DOMAIN_NAMES, build_domain_spec
from repro.db.database import Database
from repro.qa.domain import AdsDomain
from repro.qa.pipeline import CQAds
from repro.ranking.rank_sim import RankingResources
from repro.ranking.ti_matrix import TIMatrix
from repro.ranking.ws_matrix import WSMatrix

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.api.service import AnswerService
    from repro.serve.service import AsyncAnswerService

__all__ = ["BuiltDomain", "BuiltSystem", "build_system"]


@dataclass
class BuiltDomain:
    """All artifacts of one provisioned domain."""

    dataset: DomainDataset
    domain: AdsDomain
    latent: LatentSimilarity
    sessions: list[Session]
    ti_matrix: TIMatrix
    resources: RankingResources


@dataclass
class BuiltSystem:
    """A provisioned CQAds instance plus its data substrate."""

    cqads: CQAds
    database: Database
    domains: dict[str, BuiltDomain] = field(default_factory=dict)
    ws_matrix: WSMatrix | None = None
    corpus: list[str] = field(default_factory=list)
    #: Names this system was asked to serve (provisioned or pending).
    requested_domains: tuple[str, ...] = ()
    _provisioner: Callable[[str], BuiltDomain] | None = field(
        default=None, repr=False, compare=False
    )
    _provision_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def domain(self, name: str) -> BuiltDomain:
        """The provisioned artifacts for *name* (provisions lazily)."""
        return self.ensure_domain(name)

    def ensure_domain(self, name: str) -> BuiltDomain:
        """Provision *name* on first access (no-op when already built).

        Thread-safe: concurrent requests (``answer_batch``) may race to
        the same unprovisioned domain; exactly one provisions it.
        """
        if name not in self.domains:
            if self._provisioner is None or name not in self.requested_domains:
                raise KeyError(name)
            with self._provision_lock:
                if name not in self.domains:
                    self.domains[name] = self._provisioner(name)
        return self.domains[name]

    def provision_all(self) -> None:
        """Provision every requested domain that is still pending."""
        for name in self.requested_domains:
            self.ensure_domain(name)

    @property
    def pending_domains(self) -> tuple[str, ...]:
        """Requested domains not yet provisioned (lazy builds only)."""
        return tuple(
            name for name in self.requested_domains if name not in self.domains
        )

    @property
    def storage(self):
        """The database's storage backend, or ``None`` (in-memory)."""
        return self.database.storage

    def close(self) -> None:
        """Release per-table scatter executors (sharded builds) and
        flush/close the storage backend (durable builds).

        A sharded table lazily creates a dedicated thread pool for
        parallel scatters (:meth:`repro.shard.table.ShardedTable.close`);
        a long-lived process that builds systems repeatedly should
        close each discarded build so idle executor threads do not
        accumulate until garbage collection.  Idempotent.  In-memory
        systems stay fully usable — scatters simply run inline
        afterwards; a storage-backed system stays readable but further
        mutations raise :class:`~repro.errors.StorageError` (the WAL
        is closed).
        """
        for table in self.database:
            close = getattr(table, "close", None)
            if close is not None:
                close()
        if self.database.storage is not None:
            self.database.storage.close()

    def __enter__(self) -> "BuiltSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def service(
        self,
        cache: int | None = None,
        max_workers: int = 4,
        observability=None,
    ) -> "AnswerService":
        """An :class:`~repro.api.service.AnswerService` over this system.

        ``cache`` attaches a bounded answer cache of that capacity
        (see :meth:`repro.api.builder.SystemBuilder.answer_cache`);
        ``max_workers`` sizes the service's persistent batch pool;
        ``observability`` attaches a :class:`~repro.obs.Observability`
        bundle (request tracing + metric registration).
        """
        from repro.api.service import AnswerService

        return AnswerService(
            self.cqads,
            cache=cache,
            max_workers=max_workers,
            observability=observability,
        )

    def async_service(
        self, cache: int | None = None, observability=None, **limits
    ) -> "AsyncAnswerService":
        """An admission-controlled asyncio front-end over this system.

        Builds a fresh synchronous :class:`AnswerService` (with an
        answer cache of capacity *cache* when given, and the
        *observability* bundle when given) and wraps it in an
        :class:`~repro.serve.service.AsyncAnswerService`, which owns it
        — ``await async_service.close()`` releases both.  *limits* are
        the async service's knobs (``workers``, ``max_queue``,
        ``rate``/``burst``, ``tenant_rates``, ``default_deadline``,
        ``coalesce``); see :mod:`repro.serve`.
        """
        from repro.serve.service import AsyncAnswerService

        return AsyncAnswerService(
            self.service(cache=cache, observability=observability),
            own_service=True,
            **limits,
        )


def _provision_domain(
    system: BuiltSystem,
    spec,
    ads_per_domain: int,
    sessions_per_domain: int,
    seed: int,
    partitioner=None,
    scatter_workers: int | None = None,
    scatter_mode: str | None = None,
) -> BuiltDomain:
    """Steps 1-3 and 5 of the provisioning pipeline for one domain."""
    assert system.ws_matrix is not None
    dataset = build_dataset(
        spec,
        system.database,
        ads_per_domain,
        seed=seed,
        shards=system.cqads.shards,
        partitioner=partitioner,
        scatter_workers=scatter_workers,
        scatter_mode=scatter_mode,
    )
    domain = AdsDomain.from_table(spec.name, dataset.table)
    # The generated dataset's ebay-style ranges override the
    # table-derived ones (same computation, same data — kept for
    # symmetry with the paper's separate ebay statistics source).
    domain.value_ranges.update(dataset.value_ranges)
    latent = LatentSimilarity(spec)
    sessions = generate_query_log(
        spec, latent, n_sessions=sessions_per_domain, seed=seed + 4
    )
    ti_matrix = TIMatrix.from_query_log(sessions)
    resources = RankingResources(
        ti_matrix=ti_matrix,
        ws_matrix=system.ws_matrix,
        value_ranges=dict(domain.value_ranges),
        type_i_columns=[c.name for c in spec.schema.type_i_columns],
        product_keys=[product.key() for product in spec.products],
    )
    system.cqads.add_domain(
        domain, training_texts=dataset.ad_texts(), resources=resources
    )
    return BuiltDomain(
        dataset=dataset,
        domain=domain,
        latent=latent,
        sessions=sessions,
        ti_matrix=ti_matrix,
        resources=resources,
    )


def build_system(
    domain_names: list[str] | None = None,
    ads_per_domain: int = 500,
    sessions_per_domain: int = 1500,
    corpus_documents: int = 1200,
    seed: int = 7,
    classifier: NaiveBayesClassifier | None = None,
    train_classifier: bool = True,
    lazy: bool = False,
    partitioner=None,
    scatter_workers: int | None = None,
    scatter_mode: str | None = None,
    storage=None,
    **cqads_options,
) -> BuiltSystem:
    """Provision CQAds over *domain_names* (default: all eight).

    The defaults match the paper's scale: 500 ads per domain, one table
    per domain, a 30-answer cap.  Smaller values make unit tests fast.

    With ``lazy=True`` the shared substrate (corpus, WS-matrix, engine)
    is built immediately but per-domain provisioning is deferred to the
    first :meth:`BuiltSystem.ensure_domain` (or ``domain``) call;
    classifier training then happens on demand inside
    :meth:`CQAds.classify_question`.

    ``shards=N`` (a :class:`~repro.qa.pipeline.CQAds` option, passed
    through ``**cqads_options``) partitions every domain's table
    across N shards and runs the answer path scatter-gather —
    bit-identical to the single-table build of the same seed.
    ``partitioner`` and ``scatter_workers`` tune the placement policy
    and the per-table scatter executor (see :mod:`repro.shard`);
    ``scatter_mode="process"`` runs the heavy scatter paths on each
    facade's shared-memory worker-process pool
    (:mod:`repro.shard.procpool`), with the thread path as automatic
    fallback — answers are bit-identical across modes.
    ``cache_maintenance="delta"|"rebuild"`` (also via
    ``**cqads_options``) selects how the hot-path caches follow
    mutations: delta patching (the default, for high-churn corpora) or
    the epoch-rebuild oracle — bit-identical answers either way (see
    ``PERFORMANCE.md``, "Incremental maintenance").

    ``storage`` attaches a durability backend to the database — a
    :class:`repro.store.StorageBackend` instance, or a directory path
    (``str``/``PathLike``) to open a
    :class:`~repro.store.WalBackend` on with default policies.  Every
    table creation and mutation of the provisioning run (and after it)
    is then WAL-logged; see :mod:`repro.store` and
    :meth:`repro.api.builder.SystemBuilder.storage`.
    """
    names = list(domain_names) if domain_names is not None else list(DOMAIN_NAMES)
    if isinstance(storage, (str, os.PathLike)):
        from repro.store import WalBackend

        storage = WalBackend(storage)
    database = Database(storage=storage)
    specs = [build_domain_spec(name) for name in names]
    spec_by_name = {spec.name: spec for spec in specs}
    corpus = generate_corpus(specs, n_documents=corpus_documents, seed=seed)
    cqads = CQAds(database, classifier=classifier, **cqads_options)
    system = BuiltSystem(
        cqads=cqads,
        database=database,
        ws_matrix=WSMatrix.from_corpus(corpus),
        corpus=corpus,
        requested_domains=tuple(spec.name for spec in specs),
    )
    system._provisioner = lambda name: _provision_domain(
        system,
        spec_by_name[name],
        ads_per_domain,
        sessions_per_domain,
        seed,
        partitioner=partitioner,
        scatter_workers=scatter_workers,
        scatter_mode=scatter_mode,
    )
    if lazy:
        # Named-domain requests provision on first use; classification
        # first provisions everything so the classifier is trained on
        # the full domain set.
        cqads.domain_loader = system.ensure_domain
        cqads.classifier_warmup = system.provision_all
        return system
    system.provision_all()
    if train_classifier and len(names) > 1:
        cqads.train_classifier()
    return system
