"""`SystemBuilder`: fluent provisioning of a CQAds system.

The seed's ``build_system()`` packs seven keyword arguments plus
``**cqads_options`` into one call; the builder names each knob as a
chainable method and adds two things the function can't express
cleanly:

* **lazy per-domain provisioning** (:meth:`SystemBuilder.lazy`) — the
  shared substrate is built up front, each domain on first use;
* a direct :meth:`SystemBuilder.build_service` that returns the
  :class:`~repro.api.service.AnswerService` most callers actually want.

::

    service = (
        SystemBuilder()
        .with_domains("cars", "motorcycles")
        .ads_per_domain(500)
        .with_seed(7)
        .build_service()
    )
    result = service.answer(AnswerRequest(question="blue honda accord"))

``build_system()`` remains the single provisioning implementation; the
builder only collects arguments, so both surfaces stay byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.classify.naive_bayes import NaiveBayesClassifier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.serve.service import AsyncAnswerService
from repro.obs import Observability
from repro.perf.answer_cache import AnswerCache
from repro.system import BuiltSystem, build_system

from repro.api.service import AnswerService

__all__ = ["SystemBuilder"]


class SystemBuilder:
    """Collects provisioning options, then delegates to ``build_system``.

    Every ``with_*``-style method returns ``self`` for chaining;
    :meth:`build` may be called repeatedly (each call provisions a
    fresh, independent system from the same recipe).
    """

    def __init__(self) -> None:
        self._domains: list[str] | None = None
        self._ads_per_domain = 500
        self._sessions_per_domain = 1500
        self._corpus_documents = 1200
        self._seed = 7
        self._classifier: NaiveBayesClassifier | None = None
        self._train_classifier = True
        self._lazy = False
        self._answer_cache_capacity: int | None = None
        self._batch_workers = 4
        self._async_limits: dict[str, object] = {}
        self._partitioner = None
        self._scatter_workers: int | None = None
        self._scatter_mode: str | None = None
        self._storage_directory = None
        self._storage_options: dict[str, object] = {}
        self._storage_backend = None
        self._observability: Observability | None = None
        self._cqads_options: dict[str, object] = {}

    # -- domains and scale ---------------------------------------------
    def with_domains(self, *names: str | Iterable[str]) -> "SystemBuilder":
        """Which domains to serve (default: all eight).

        Accepts varargs or a single iterable:
        ``.with_domains("cars", "food_coupons")`` or
        ``.with_domains(["cars", "food_coupons"])``.
        """
        flattened: list[str] = []
        for name in names:
            if isinstance(name, str):
                flattened.append(name)
            else:
                flattened.extend(name)
        self._domains = flattened
        return self

    def ads_per_domain(self, count: int) -> "SystemBuilder":
        """Synthetic ads per domain (paper scale: 500, Section 4.1.4)."""
        self._ads_per_domain = count
        return self

    def sessions_per_domain(self, count: int) -> "SystemBuilder":
        """Query-log sessions per domain feeding the TI-matrix (Eq. 3)."""
        self._sessions_per_domain = count
        return self

    def corpus_documents(self, count: int) -> "SystemBuilder":
        """Topical-corpus size feeding the shared WS-matrix."""
        self._corpus_documents = count
        return self

    def with_seed(self, seed: int) -> "SystemBuilder":
        """Master seed; every generator derives from it (determinism)."""
        self._seed = seed
        return self

    def shards(
        self,
        count: int | None,
        partitioner=None,
        scatter_workers: int | None = None,
        scatter_mode: str | None = None,
    ) -> "SystemBuilder":
        """Partition every domain's table across *count* shards.

        The answer path then runs scatter-gather (per-shard relaxation
        id-sets, per-shard column-store ranking with top-k merge) —
        bit-identical to the single-table build of the same recipe;
        see :mod:`repro.shard` and ``PERFORMANCE.md``.  *partitioner*
        overrides the default hash-by-record-id placement and
        *scatter_workers* sizes each table's dedicated scatter
        executor (default: ``min(count, cpu_count)``, or the
        ``REPRO_SCATTER_WORKERS`` env var; ``1`` forces inline
        scatters).  ``scatter_mode="process"`` additionally runs the
        heavy scatter paths on a persistent worker-process pool over
        shared-memory column segments — true multi-core scatter with
        the thread path as parity oracle and automatic fallback (see
        :mod:`repro.shard.procpool`).  ``None`` removes a
        previously-configured sharding and restores single tables.
        """
        if count is None:
            self._cqads_options.pop("shards", None)
        else:
            self._cqads_options["shards"] = count
        self._partitioner = partitioner
        self._scatter_workers = scatter_workers
        self._scatter_mode = scatter_mode
        return self

    # -- engine configuration ------------------------------------------
    def with_classifier(
        self, classifier: NaiveBayesClassifier | None
    ) -> "SystemBuilder":
        """Replace the default JBBSM Naive Bayes classifier."""
        self._classifier = classifier
        return self

    def train_classifier(self, train: bool = True) -> "SystemBuilder":
        """Train the classifier at build time (default: yes, when >1 domain)."""
        self._train_classifier = train
        return self

    def max_answers(self, count: int) -> "SystemBuilder":
        """The engine's default answer cap (the paper's 30)."""
        self._cqads_options["max_answers"] = count
        return self

    def answer_defaults(self, **cqads_options) -> "SystemBuilder":
        """Engine-level answering defaults (``correct_spelling``,
        ``relax_partial``, ``ordered_evaluation``,
        ``partial_pool_per_query``, ``relaxation_strategy``,
        ``ranking_engine``, ``ranking_top_k``, ``fragment_cache``) —
        still overridable per request where an
        :class:`~repro.api.requests.AnswerOptions` field exists."""
        self._cqads_options.update(cqads_options)
        return self

    def cache_maintenance(self, mode: str = "delta") -> "SystemBuilder":
        """How the hot-path caches follow table mutations.

        ``"delta"`` (the default) patches the fragment cache and the
        ranking column stores in place from the typed mutation deltas
        — high-churn corpora pay per-row patch costs instead of
        per-mutation rebuilds; ``"rebuild"`` keeps the epoch-sweep /
        full-rebuild behaviour (the parity oracle and the
        ``bench_incremental`` baseline).  Bit-identical answers either
        way; see PERFORMANCE.md's incremental-maintenance section.
        """
        self._cqads_options["cache_maintenance"] = mode
        return self

    def batch_workers(self, count: int) -> "SystemBuilder":
        """Size of the service's persistent batch thread pool
        (:meth:`~repro.api.service.AnswerService.answer_batch`)."""
        self._batch_workers = count
        return self

    def answer_cache(self, capacity: int | None = 1024) -> "SystemBuilder":
        """Attach a bounded answer cache to :meth:`build_service`.

        Repeated questions are then served from memory until
        :meth:`~repro.api.service.AnswerService.invalidate_cache` is
        called (the database-mutation contract — see PERFORMANCE.md).
        ``None`` removes a previously-configured cache.
        """
        self._answer_cache_capacity = capacity
        return self

    def async_limits(self, **limits) -> "SystemBuilder":
        """Admission-control knobs for :meth:`build_async_service`.

        Accepts the :class:`~repro.serve.service.AsyncAnswerService`
        constructor keywords: ``workers`` (concurrent engine calls),
        ``max_queue`` (bounded wait queue), ``rate``/``burst`` (shared
        default token bucket), ``tenant_rates`` (per-tenant buckets),
        ``default_deadline`` and ``coalesce``.  Later calls merge over
        earlier ones.
        """
        self._async_limits.update(limits)
        return self

    def storage(self, directory, **options) -> "SystemBuilder":
        """Persist the built system to *directory* (WAL + snapshots).

        Every table creation and mutation — including the provisioning
        inserts — is appended to a write-ahead log of the typed
        mutation deltas, with periodic atomic snapshots; restart with
        :func:`repro.store.open_database` (or ``python -m repro
        recover DIR``).  *options* are
        :class:`~repro.store.WalBackend` keywords (``fsync``,
        ``fsync_interval_s``, ``snapshot_every``,
        ``keep_generations``, ...).  Each :meth:`build` call opens a
        **fresh** backend on the directory, so the one-recipe-many-
        systems contract holds — but two live systems must not share a
        directory.  A pre-built :class:`~repro.store.StorageBackend`
        instance is also accepted (single build only).  ``None``
        removes a previously-configured storage.
        """
        from repro.store import StorageBackend

        self._storage_backend = None
        self._storage_directory = None
        self._storage_options = {}
        if directory is None:
            return self
        if isinstance(directory, StorageBackend):
            if options:
                raise TypeError(
                    "storage options only apply when passing a directory; "
                    "configure the backend instance directly"
                )
            self._storage_backend = directory
            return self
        self._storage_directory = directory
        self._storage_options = dict(options)
        return self

    def observability(
        self, obs: "Observability | bool | None" = True
    ) -> "SystemBuilder":
        """Attach an observability bundle to the built services.

        ``True`` (the default) creates an :class:`~repro.obs.Observability`
        over the process-default metrics registry with tracing
        configured but no sinks (add them via
        ``service.observability.tracer.add_sink(...)``); pass a
        configured :class:`~repro.obs.Observability` to control the
        registry, trace sinks and slow-query threshold; ``None`` /
        ``False`` removes a previously-configured bundle.  The bundle
        flows into :meth:`build_service` and (inherited by the async
        tier) :meth:`build_async_service`: request roots, stage spans,
        executor/shard/cache/WAL child spans and the service latency
        histograms all hang off it.
        """
        if obs is True:
            obs = Observability()
        elif obs is False:
            obs = None
        self._observability = obs
        return self

    # -- provisioning strategy -----------------------------------------
    def lazy(self, lazy: bool = True) -> "SystemBuilder":
        """Defer per-domain provisioning to first use.

        ``build()`` then returns immediately with the shared substrate
        (database, corpus, WS-matrix, engine); each domain's ads, query
        log and TI-matrix are generated on the first
        ``system.domain(name)`` / ``ensure_domain(name)`` call.
        """
        self._lazy = lazy
        return self

    # -- terminal operations -------------------------------------------
    def _storage_for_build(self):
        if self._storage_backend is not None:
            backend = self._storage_backend
            # An attached backend cannot serve a second build; surface
            # the single-build contract instead of a late attach error.
            self._storage_backend = None
            return backend
        if self._storage_directory is None:
            return None
        from repro.store import WalBackend

        return WalBackend(self._storage_directory, **self._storage_options)

    def build(self) -> BuiltSystem:
        """Provision and return the system."""
        return build_system(
            storage=self._storage_for_build(),
            domain_names=self._domains,
            ads_per_domain=self._ads_per_domain,
            sessions_per_domain=self._sessions_per_domain,
            corpus_documents=self._corpus_documents,
            seed=self._seed,
            classifier=self._classifier,
            train_classifier=self._train_classifier,
            lazy=self._lazy,
            partitioner=self._partitioner,
            scatter_workers=self._scatter_workers,
            scatter_mode=self._scatter_mode,
            **self._cqads_options,
        )

    def build_service(self) -> AnswerService:
        """Provision the system and wrap it in an :class:`AnswerService`.

        The built system stays reachable via ``service.cqads`` (and the
        full artifact set via :meth:`build` when needed separately).
        """
        cache = (
            AnswerCache(self._answer_cache_capacity)
            if self._answer_cache_capacity is not None
            else None
        )
        return AnswerService(
            self.build().cqads,
            cache=cache,
            max_workers=self._batch_workers,
            observability=self._observability,
        )

    def build_async_service(self, **limits) -> "AsyncAnswerService":
        """Provision the system behind an async, admission-controlled
        front door (:class:`~repro.serve.service.AsyncAnswerService`).

        The answer cache and batch-pool settings configure the wrapped
        synchronous service exactly as :meth:`build_service` would;
        *limits* override any :meth:`async_limits` collected so far.
        The async service owns the sync one — ``await close()``
        releases both.
        """
        from repro.serve.service import AsyncAnswerService

        merged = {**self._async_limits, **limits}
        return AsyncAnswerService(
            self.build_service(), own_service=True, **merged
        )
