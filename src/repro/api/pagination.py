"""Cursor-style pagination over a question's full ranking.

The paper caps the presented list at 30 answers (Section 4.3.1), but
the pipeline computes the full ranking anyway — exact matches in
evaluation order followed by every Rank_Sim-scored partial candidate,
kept on ``QuestionResult.ranked_pool``.  :func:`page_result` slices
that ranking, so walking past the cap costs nothing: no re-execution,
no re-ranking, and the ordering is stable because the pool is computed
exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qa.pipeline import Answer, QuestionResult

__all__ = ["AnswerPage", "page_result"]


@dataclass(frozen=True)
class AnswerPage:
    """One window into a result's full ranking."""

    answers: tuple[Answer, ...]
    offset: int
    limit: int
    total: int

    @property
    def has_more(self) -> bool:
        return self.offset + len(self.answers) < self.total

    @property
    def next_offset(self) -> int | None:
        """Cursor for the following page, or ``None`` at the end."""
        if not self.has_more:
            return None
        return self.offset + len(self.answers)

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self):
        return iter(self.answers)


def page_result(
    result: QuestionResult, offset: int = 0, limit: int = 30
) -> AnswerPage:
    """Slice *result*'s full ranking (``ranked_pool``).

    Results produced before the pool existed (hand-built in tests, or
    deserialized) fall back to the capped ``answers`` list.
    """
    if offset < 0:
        raise ValueError(f"offset must be non-negative, got {offset}")
    if limit <= 0:
        # limit=0 would make next_offset == offset: an infinite cursor.
        raise ValueError(f"limit must be positive, got {limit}")
    pool = result.ranked_pool if result.ranked_pool else result.answers
    window = tuple(pool[offset : offset + limit])
    return AnswerPage(answers=window, offset=offset, limit=limit, total=len(pool))
