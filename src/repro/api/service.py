"""`AnswerService`: the request/response front door to CQAds.

Wraps a :class:`~repro.qa.pipeline.CQAds` engine (and optionally a
customized :class:`~repro.api.stages.QueryPipeline`) behind three
calls:

* :meth:`AnswerService.answer` — one request, one result;
* :meth:`AnswerService.answer_batch` — many requests fanned out over a
  thread pool, results in input order, duplicate requests answered
  once (the pipeline is read-only, so sharing results is safe);
* :meth:`AnswerService.page` — cursor pagination over a result's full
  ranking, past the paper's 30-answer cap, without re-ranking.

With a :class:`~repro.perf.answer_cache.AnswerCache` attached
(``SystemBuilder().answer_cache(...)`` or the ``cache`` constructor
argument), repeated questions are served from memory: keys combine the
requested domain, the normalized question text and the resolved option
fingerprint, so any knob that could change the answer misses the
cache.  The cache invalidates itself: the service subscribes to the
database's mutation epochs, so inserting into, deleting from or
updating a backing table drops the affected domain's entries before
the mutating call returns.  :meth:`AnswerService.invalidate_cache`
remains as a manual override but is no longer required (see
``PERFORMANCE.md``).

Batches run on a **persistent** thread pool created lazily and sized
by ``max_workers``; call :meth:`close` (or use the service as a
context manager) to release it and unsubscribe the mutation listener.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Hashable, Iterable, Sequence

from repro.db.table import MutationEvent
from repro.errors import ServiceClosedError
from repro.obs import (
    Observability,
    cache_event,
    current_span,
    propagate,
    span,
)
from repro.obs.registry import get_default_registry
from repro.perf.answer_cache import AnswerCache
from repro.qa.pipeline import CQAds, QuestionResult

from repro.api.pagination import AnswerPage, page_result
from repro.api.requests import AnswerOptions, AnswerRequest, ResolvedOptions
from repro.api.stages import QueryPipeline

__all__ = ["AnswerService"]


class AnswerService:
    """The service layer over one provisioned :class:`CQAds` engine."""

    def __init__(
        self,
        cqads: CQAds,
        pipeline: QueryPipeline | None = None,
        cache: AnswerCache | int | None = None,
        max_workers: int = 4,
        observability: Observability | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.cqads = cqads
        self.observability = observability
        self.pipeline = pipeline if pipeline is not None else cqads.pipeline()
        if isinstance(cache, int):
            cache = AnswerCache(cache)
        self.cache = cache
        self.max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None
        self._executor_size = 0
        self._retired_executors: list[ThreadPoolExecutor] = []
        self._executor_lock = threading.Lock()
        self._closed = False
        self._subscribed = False
        #: Monotonic mutation generations, embedded in every cache key.
        #: A result computed while a mutation lands is stored under the
        #: old generation and can never be looked up again, so the
        #: store-after-invalidate race cannot resurrect stale answers.
        #: ``_generation`` versions domain-less (classified) requests —
        #: any mutation could affect whichever domain they resolve to —
        #: while explicitly-routed requests use their domain's own
        #: counter, preserving per-domain invalidation.
        self._generation = 0
        self._domain_generations: dict[str, int] = {}
        if cache is not None:
            cqads.database.add_listener(self._on_table_mutation)
            self._subscribed = True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the batch thread pool and the mutation listener.

        Idempotent.  A closed service refuses new work:
        :meth:`answer`, :meth:`answer_batch` and :meth:`page` raise
        :class:`~repro.errors.ServiceClosedError` (a
        :class:`RuntimeError` subclass, for callers written against
        the old untyped error) — build a fresh service over the same
        engine to resume answering.
        """
        with self._executor_lock:
            self._closed = True
            executors = self._retired_executors + (
                [self._executor] if self._executor is not None else []
            )
            self._executor = None
            self._retired_executors = []
            self._executor_size = 0
        for executor in executors:
            executor.shutdown(wait=True)
        if self._subscribed:
            self.cqads.database.remove_listener(self._on_table_mutation)
            self._subscribed = False

    def __enter__(self) -> "AnswerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool(self, size: int) -> ThreadPoolExecutor:
        """The persistent batch executor, grown if *size* exceeds it."""
        with self._executor_lock:
            if self._closed:
                raise ServiceClosedError("AnswerService")
            if self._executor is not None and size > self._executor_size:
                # A caller asked for more parallelism than the pool
                # has.  The old executor is *retired*, not shut down:
                # a concurrent batch may already hold a reference and
                # be about to submit to it — shutting it down here
                # would raise under its feet.  close() reaps them.
                self._retired_executors.append(self._executor)
                self._executor = None
            if self._executor is None:
                self._executor_size = max(size, self.max_workers, self._executor_size)
                self._executor = ThreadPoolExecutor(
                    max_workers=self._executor_size,
                    thread_name_prefix="answer-service",
                )
            return self._executor

    # ------------------------------------------------------------------
    # mutation-epoch listener
    # ------------------------------------------------------------------
    def _on_table_mutation(self, event: MutationEvent) -> None:
        # Unlike the fragment cache and the column stores, cached
        # *answers* cannot be patched from a typed delta — any row
        # change can reorder a ranking or move an exact match — so the
        # answer cache always takes the generation-bump path: one bump
        # per event (bulk mutations arrive as a single BatchDelta).
        cache = self.cache
        if cache is None:
            return
        # The generation bumps make the outstanding cache keys
        # unreachable (results still in flight store under the old
        # generation); the invalidate reclaims the memory eagerly.
        self._generation += 1
        domain = self.cqads.registered_domain_for_table(event.table.name)
        if domain is not None:
            self._domain_generations[domain] = (
                self._domain_generations.get(domain, 0) + 1
            )
        # An unmapped table (e.g. one whose domain is still being
        # provisioned) conservatively clears everything.
        cache.invalidate(domain)

    # ------------------------------------------------------------------
    def answer(self, request: AnswerRequest | str) -> QuestionResult:
        """Answer one request (a bare string becomes a default request).

        With a cache attached, a repeat of a previously answered
        (domain, normalized question, options) is returned from memory
        — same answers, scores and ordering, with the result's
        ``question`` field restored to this request's raw text.  Any
        request that consulted the cache reports the outcome as
        ``result.timings["cache"]`` (``True`` for a hit, ``False`` for
        a computed miss); cache-bypassing requests leave the key unset.
        """
        request = AnswerRequest.of(request)
        if self._closed:
            raise ServiceClosedError("AnswerService")
        # Root-or-child tracing: under an active trace (the serve tier,
        # or a batch sibling) this nests; with configured observability
        # and no active trace it opens a root that exports on exit.
        if self.observability is not None and current_span() is None:
            context = self.observability.trace(
                "api.answer", question=request.question, domain=request.domain
            )
        else:
            context = span("api.answer", question=request.question)
        started = time.perf_counter()
        with context as node:
            result = self._answer(request)
            if node is not None:
                node.set_attribute("domain", result.domain)
                node.set_attribute("answers", len(result.answers))
        get_default_registry().histogram("repro_api_request_seconds").observe(
            time.perf_counter() - started
        )
        return result

    def _answer(self, request: AnswerRequest) -> QuestionResult:
        """The cache-or-pipeline path proper (traced by :meth:`answer`)."""
        if self.cache is None:
            return self.pipeline.run(self.cqads, request)
        options = ResolvedOptions.resolve(request.options, self.cqads)
        if not options.use_cache:
            return self.pipeline.run(self.cqads, request)
        key = self._cache_key(request, options)
        cached = self.cache.lookup(key)
        cache_event("answer", cached is not None)
        if cached is not None:
            return replace(
                cached,
                question=request.question,
                timings={**cached.timings, "cache": True},
            )
        result = self.pipeline.run(self.cqads, request)
        # Mark before storing: the stored entry carries the miss flag,
        # and every future hit flips it on a per-caller copy above.
        result.timings["cache"] = False
        self.cache.store(key, result.domain, result)
        return result

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_question(question: str) -> str:
        """Collapse whitespace and case — the tokenizer lowercases and
        splits on whitespace, so this never changes the answer."""
        return " ".join(question.split()).lower()

    def _cache_key(
        self, request: AnswerRequest, options: ResolvedOptions
    ) -> Hashable:
        """The cache key — read *before* the pipeline runs.

        The leading mutation generation versions the entry: a mutation
        landing while the pipeline computes bumps the generation, so
        the (now possibly stale) result is stored under a key no
        future lookup can produce.  Explicitly-routed requests carry
        their domain's generation (other domains' mutations leave them
        reachable); classified requests carry the global one.
        """
        if request.domain is None:
            generation = self._generation
        else:
            generation = self._domain_generations.get(request.domain, 0)
        return (
            generation,
            request.domain,
            self._normalize_question(request.question),
            options.fingerprint(),
        )

    def invalidate_cache(self, domain: str | None = None) -> int:
        """Manually drop cached answers — all of them, or one domain's.

        **No longer required after mutations**: the service listens to
        the database's mutation epochs and invalidates automatically.
        Kept as a compatible override for callers that want to force a
        refresh for other reasons.  *domain* accepts either a
        registered domain name or its table name; ``None`` clears
        everything.  Returns the number of entries dropped (0 when the
        service has no cache).
        """
        if self.cache is None:
            return 0
        if domain is not None:
            # Accept a table name for convenience — callers touching
            # the Database layer hold table names, not domain names.
            mapped = self.cqads.registered_domain_for_table(domain)
            if mapped is not None:
                domain = mapped
        return self.cache.invalidate(domain)

    def ask(
        self,
        question: str,
        domain: str | None = None,
        options: AnswerOptions | None = None,
        **overrides,
    ) -> QuestionResult:
        """Keyword convenience: build the request inline.

        ``service.ask("blue honda", max_answers=5, explain=True)`` is
        shorthand for an :class:`AnswerRequest` with those overrides.
        """
        request = AnswerRequest(
            question=question,
            domain=domain,
            options=options if options is not None else AnswerOptions(),
        )
        if overrides:
            request = request.with_options(**overrides)
        return self.answer(request)

    # ------------------------------------------------------------------
    def answer_batch(
        self,
        requests: Iterable[AnswerRequest | str],
        workers: int | None = None,
    ) -> list[QuestionResult]:
        """Answer *requests*, returning results in input order.

        The pipeline only reads the provisioned system, so requests fan
        out over the service's **persistent** thread pool (created
        lazily, sized by the constructor's ``max_workers``, reused
        across batches — see :meth:`close`).  ``workers`` defaults to
        ``max_workers``; pass ``1`` to force a serial batch, or a
        larger value to grow the pool for this and later batches.
        Requests that compare equal (same question, domain and options
        — both dataclasses are frozen) are answered once and share the
        same result object, which is where most of the batch win comes
        from on realistic workloads where popular questions repeat.
        """
        if self._closed:
            raise ServiceClosedError("AnswerService")
        items = [AnswerRequest.of(item) for item in requests]
        order = list(dict.fromkeys(items))
        effective = self.max_workers if workers is None else workers
        if effective <= 1 or len(order) <= 1:
            results = [self.answer(request) for request in order]
        else:
            # propagate() carries the caller's active span (if any)
            # into the pool's worker threads so per-request child spans
            # attach to the batch's tree rather than vanishing.
            results = list(
                self._pool(effective).map(propagate(self.answer), order)
            )
        by_request = dict(zip(order, results))
        return [by_request[request] for request in items]

    # ------------------------------------------------------------------
    def page(
        self,
        source: QuestionResult | AnswerRequest | str,
        offset: int = 0,
        limit: int = 30,
    ) -> AnswerPage:
        """A window into a full ranking (see ``page_result``).

        *source* may be an already-computed :class:`QuestionResult`
        (sliced as before, no recomputation), or a request / bare
        question.  A request is answered with ``top_k`` bounded to
        ``offset + limit + 1`` — deep pages then cost a bounded-heap
        selection over the candidate pool instead of a full re-sort,
        and the ``+ 1`` sentinel keeps ``has_more``/``next_offset``
        exact at the requested depth.  A request that already sets
        ``options.top_k`` is honoured as-is.  Bounded pages report the
        bounded pool as ``total``, so ``total`` is a floor rather than
        the full ranking size (the cursor semantics — ``has_more`` and
        ``next_offset`` — stay correct).
        """
        if self._closed:
            raise ServiceClosedError("AnswerService")
        if isinstance(source, QuestionResult):
            return page_result(source, offset=offset, limit=limit)
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        request = AnswerRequest.of(source)
        if request.options.top_k is None:
            request = request.with_options(top_k=offset + limit + 1)
        return page_result(self.answer(request), offset=offset, limit=limit)

    def page_all(
        self,
        source: QuestionResult | AnswerRequest | str,
        page_size: int = 30,
        max_depth: int | None = None,
    ) -> Sequence[AnswerPage]:
        """Every page of a result, in order (convenience for exports).

        With a request / bare question as *source*, the question is
        answered once and paged; ``max_depth`` (or the request's own
        ``options.top_k``) bounds the ranked pool so the export pays a
        bounded-heap selection instead of sorting every candidate —
        the product-capped-pagination mode.  Without either bound the
        full ranking is computed, preserving complete exports.  On an
        already-computed result ``max_depth`` cannot save the ranking
        work, but it still caps the export to the same window the
        request path would serve (exact matches plus ``max_depth``
        ranked partials).
        """
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        if isinstance(source, QuestionResult):
            result = source
            if max_depth is not None:
                pool = result.ranked_pool if result.ranked_pool else result.answers
                exact_count = sum(1 for answer in pool if answer.exact)
                result = replace(
                    result, ranked_pool=list(pool[: exact_count + max_depth])
                )
        else:
            request = AnswerRequest.of(source)
            if max_depth is not None and request.options.top_k is None:
                request = request.with_options(top_k=max_depth)
            result = self.answer(request)
        pages: list[AnswerPage] = []
        offset = 0
        while True:
            window = page_result(result, offset=offset, limit=page_size)
            pages.append(window)
            if window.next_offset is None:
                return pages
            offset = window.next_offset
