"""`AnswerService`: the request/response front door to CQAds.

Wraps a :class:`~repro.qa.pipeline.CQAds` engine (and optionally a
customized :class:`~repro.api.stages.QueryPipeline`) behind three
calls:

* :meth:`AnswerService.answer` — one request, one result;
* :meth:`AnswerService.answer_batch` — many requests fanned out over a
  thread pool, results in input order, duplicate requests answered
  once (the pipeline is read-only, so sharing results is safe);
* :meth:`AnswerService.page` — cursor pagination over a result's full
  ranking, past the paper's 30-answer cap, without re-ranking.

With a :class:`~repro.perf.answer_cache.AnswerCache` attached
(``SystemBuilder().answer_cache(...)`` or the ``cache`` constructor
argument), repeated questions are served from memory: keys combine the
requested domain, the normalized question text and the resolved option
fingerprint, so any knob that could change the answer misses the
cache.  The cache never watches the database — after mutating a
backing table, call :meth:`AnswerService.invalidate_cache` (the
explicit invalidation contract; see ``PERFORMANCE.md``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Hashable, Iterable, Sequence

from repro.perf.answer_cache import AnswerCache
from repro.qa.pipeline import CQAds, QuestionResult

from repro.api.pagination import AnswerPage, page_result
from repro.api.requests import AnswerOptions, AnswerRequest, ResolvedOptions
from repro.api.stages import QueryPipeline

__all__ = ["AnswerService"]


class AnswerService:
    """The service layer over one provisioned :class:`CQAds` engine."""

    def __init__(
        self,
        cqads: CQAds,
        pipeline: QueryPipeline | None = None,
        cache: AnswerCache | int | None = None,
    ) -> None:
        self.cqads = cqads
        self.pipeline = pipeline if pipeline is not None else cqads.pipeline()
        if isinstance(cache, int):
            cache = AnswerCache(cache)
        self.cache = cache

    # ------------------------------------------------------------------
    def answer(self, request: AnswerRequest | str) -> QuestionResult:
        """Answer one request (a bare string becomes a default request).

        With a cache attached, a repeat of a previously answered
        (domain, normalized question, options) is returned from memory
        — same answers, scores and ordering, with the result's
        ``question`` field restored to this request's raw text.
        """
        request = AnswerRequest.of(request)
        if self.cache is None:
            return self.pipeline.run(self.cqads, request)
        options = ResolvedOptions.resolve(request.options, self.cqads)
        if not options.use_cache:
            return self.pipeline.run(self.cqads, request)
        key = self._cache_key(request, options)
        cached = self.cache.lookup(key)
        if cached is not None:
            if cached.question != request.question:
                cached = replace(cached, question=request.question)
            return cached
        result = self.pipeline.run(self.cqads, request)
        self.cache.store(key, result.domain, result)
        return result

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_question(question: str) -> str:
        """Collapse whitespace and case — the tokenizer lowercases and
        splits on whitespace, so this never changes the answer."""
        return " ".join(question.split()).lower()

    def _cache_key(
        self, request: AnswerRequest, options: ResolvedOptions
    ) -> Hashable:
        return (
            request.domain,
            self._normalize_question(request.question),
            options.fingerprint(),
        )

    def invalidate_cache(self, domain: str | None = None) -> int:
        """Drop cached answers — all of them, or one domain's.

        This is the mutation hook: call it after inserting into or
        deleting from a backing table.  *domain* accepts either a
        registered domain name or its table name; ``None`` clears
        everything.  Returns the number of entries dropped (0 when the
        service has no cache).
        """
        if self.cache is None:
            return 0
        if domain is not None:
            # Accept a table name for convenience: invalidating "after
            # a table mutation" is the contract, and callers touching
            # the Database layer hold table names, not domain names.
            for name in self.cqads.domains():
                context = self.cqads.context(name)
                if context.domain.schema.table_name == domain:
                    domain = name
                    break
        return self.cache.invalidate(domain)

    def ask(
        self,
        question: str,
        domain: str | None = None,
        options: AnswerOptions | None = None,
        **overrides,
    ) -> QuestionResult:
        """Keyword convenience: build the request inline.

        ``service.ask("blue honda", max_answers=5, explain=True)`` is
        shorthand for an :class:`AnswerRequest` with those overrides.
        """
        request = AnswerRequest(
            question=question,
            domain=domain,
            options=options if options is not None else AnswerOptions(),
        )
        if overrides:
            request = request.with_options(**overrides)
        return self.answer(request)

    # ------------------------------------------------------------------
    def answer_batch(
        self,
        requests: Iterable[AnswerRequest | str],
        workers: int = 4,
    ) -> list[QuestionResult]:
        """Answer *requests*, returning results in input order.

        The pipeline only reads the provisioned system, so requests fan
        out over a thread pool.  Requests that compare equal (same
        question, domain and options — both dataclasses are frozen) are
        answered once and share the same result object, which is where
        most of the batch win comes from on realistic workloads where
        popular questions repeat.
        """
        items = [AnswerRequest.of(item) for item in requests]
        order = list(dict.fromkeys(items))
        if workers <= 1 or len(order) <= 1:
            results = [self.answer(request) for request in order]
        else:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                results = list(executor.map(self.answer, order))
        by_request = dict(zip(order, results))
        return [by_request[request] for request in items]

    # ------------------------------------------------------------------
    def page(
        self, result: QuestionResult, offset: int = 0, limit: int = 30
    ) -> AnswerPage:
        """A window into *result*'s full ranking (see ``page_result``)."""
        return page_result(result, offset=offset, limit=limit)

    def page_all(
        self, result: QuestionResult, page_size: int = 30
    ) -> Sequence[AnswerPage]:
        """Every page of *result*, in order (convenience for exports)."""
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        pages: list[AnswerPage] = []
        offset = 0
        while True:
            window = self.page(result, offset=offset, limit=page_size)
            pages.append(window)
            if window.next_offset is None:
                return pages
            offset = window.next_offset
