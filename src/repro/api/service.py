"""`AnswerService`: the request/response front door to CQAds.

Wraps a :class:`~repro.qa.pipeline.CQAds` engine (and optionally a
customized :class:`~repro.api.stages.QueryPipeline`) behind three
calls:

* :meth:`AnswerService.answer` — one request, one result;
* :meth:`AnswerService.answer_batch` — many requests fanned out over a
  thread pool, results in input order, duplicate requests answered
  once (the pipeline is read-only, so sharing results is safe);
* :meth:`AnswerService.page` — cursor pagination over a result's full
  ranking, past the paper's 30-answer cap, without re-ranking.

The engine stays fully usable directly; the service adds no state
beyond the pipeline it runs.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from repro.qa.pipeline import CQAds, QuestionResult

from repro.api.pagination import AnswerPage, page_result
from repro.api.requests import AnswerOptions, AnswerRequest
from repro.api.stages import QueryPipeline

__all__ = ["AnswerService"]


class AnswerService:
    """The service layer over one provisioned :class:`CQAds` engine."""

    def __init__(
        self, cqads: CQAds, pipeline: QueryPipeline | None = None
    ) -> None:
        self.cqads = cqads
        self.pipeline = pipeline if pipeline is not None else cqads.pipeline()

    # ------------------------------------------------------------------
    def answer(self, request: AnswerRequest | str) -> QuestionResult:
        """Answer one request (a bare string becomes a default request)."""
        return self.pipeline.run(self.cqads, AnswerRequest.of(request))

    def ask(
        self,
        question: str,
        domain: str | None = None,
        options: AnswerOptions | None = None,
        **overrides,
    ) -> QuestionResult:
        """Keyword convenience: build the request inline.

        ``service.ask("blue honda", max_answers=5, explain=True)`` is
        shorthand for an :class:`AnswerRequest` with those overrides.
        """
        request = AnswerRequest(
            question=question,
            domain=domain,
            options=options if options is not None else AnswerOptions(),
        )
        if overrides:
            request = request.with_options(**overrides)
        return self.answer(request)

    # ------------------------------------------------------------------
    def answer_batch(
        self,
        requests: Iterable[AnswerRequest | str],
        workers: int = 4,
    ) -> list[QuestionResult]:
        """Answer *requests*, returning results in input order.

        The pipeline only reads the provisioned system, so requests fan
        out over a thread pool.  Requests that compare equal (same
        question, domain and options — both dataclasses are frozen) are
        answered once and share the same result object, which is where
        most of the batch win comes from on realistic workloads where
        popular questions repeat.
        """
        items = [AnswerRequest.of(item) for item in requests]
        order = list(dict.fromkeys(items))
        if workers <= 1 or len(order) <= 1:
            results = [self.answer(request) for request in order]
        else:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                results = list(executor.map(self.answer, order))
        by_request = dict(zip(order, results))
        return [by_request[request] for request in items]

    # ------------------------------------------------------------------
    def page(
        self, result: QuestionResult, offset: int = 0, limit: int = 30
    ) -> AnswerPage:
        """A window into *result*'s full ranking (see ``page_result``)."""
        return page_result(result, offset=offset, limit=limit)

    def page_all(
        self, result: QuestionResult, page_size: int = 30
    ) -> Sequence[AnswerPage]:
        """Every page of *result*, in order (convenience for exports)."""
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        pages: list[AnswerPage] = []
        offset = 0
        while True:
            window = self.page(result, offset=offset, limit=page_size)
            pages.append(window)
            if window.next_offset is None:
                return pages
            offset = window.next_offset
