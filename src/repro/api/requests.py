"""Request/response value objects for the service-layer API.

The seed exposed every knob (answer cap, spelling correction, partial
relaxation, evaluation order) as a :class:`~repro.qa.pipeline.CQAds`
constructor argument, so changing one for a single question meant
building a second system.  The service layer separates the two scopes:

* **system defaults** stay on the engine (``CQAds``), exactly as the
  paper configures them (Sections 4.1-4.4, 30-answer cap);
* **per-request overrides** travel on a frozen :class:`AnswerOptions`
  inside an :class:`AnswerRequest` — ``None`` means "use the engine's
  default", so an empty request reproduces legacy behaviour
  bit-for-bit.

Both dataclasses are frozen (hashable), which lets
:meth:`repro.api.service.AnswerService.answer_batch` deduplicate
identical requests inside one batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.qa.pipeline import CQAds

__all__ = ["AnswerOptions", "AnswerRequest", "ResolvedOptions"]


@dataclass(frozen=True)
class AnswerOptions:
    """Per-request overrides; ``None`` defers to the engine default.

    Parameters
    ----------
    max_answers:
        Cap on returned answers (exact + partial).  The engine default
        is the paper's 30 (Section 4.3.1 / 5.1).
    correct_spelling:
        Run the Section 4.1.2 spelling corrector during tagging.
    relax_partial:
        Run the Section 4.3.1 N-1 relaxation when fewer than
        ``max_answers`` exact matches exist.
    ordered_evaluation:
        Apply the Section 4.3 evaluation order (Type I → II → III).
    partial_pool_per_query:
        Candidate cap per relaxed N-1 query.  When unset it follows the
        engine, or ``3 * max_answers`` when ``max_answers`` itself is
        overridden (the engine's own widening rule).
    top_k:
        Bound on the *ranked* partial pool: the columnar ranking
        engine then selects the best ``top_k`` with a bounded heap
        instead of sorting every candidate.  The bounded result is
        identical to the full ranking truncated (ties included), so
        set it to the presentation cap plus the cursor window you
        intend to page through (e.g. ``30 + 60``); ``ranked_pool`` —
        and therefore pagination — stops at ``top_k`` entries.  When
        unset it follows the engine's ``ranking_top_k`` (default:
        unbounded, preserving full pagination).
    explain:
        Attach a per-stage :class:`~repro.api.stages.StageTrace` list to
        the result (timings are always recorded; the trace adds
        human-readable stage details and skip markers).
    use_cache:
        Let the service answer this request from its answer cache (and
        store the result there).  ``None``/``True`` use the cache when
        the service has one; ``False`` forces a fresh pipeline run
        without touching the cache.  No-op on services built without a
        cache.
    deadline:
        Per-request time budget in seconds, honoured by
        :class:`~repro.serve.AsyncAnswerService` (shed with
        :class:`~repro.errors.DeadlineExceededError` when it expires
        while queued or awaiting a result).  ``None`` defers to the
        async service's ``default_deadline`` (unbounded by default).
        Ignored by the synchronous :class:`AnswerService`, which never
        queues.
    """

    max_answers: int | None = None
    correct_spelling: bool | None = None
    relax_partial: bool | None = None
    ordered_evaluation: bool | None = None
    partial_pool_per_query: int | None = None
    top_k: int | None = None
    explain: bool = False
    use_cache: bool | None = None
    deadline: float | None = None

    def merged(self, **overrides) -> "AnswerOptions":
        """A copy with *overrides* applied (fluent convenience)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class AnswerRequest:
    """One question for :class:`~repro.api.service.AnswerService`.

    ``domain=None`` routes the question through the Section 3
    classifier, exactly like the legacy ``CQAds.answer(question)``.
    """

    question: str
    domain: str | None = None
    options: AnswerOptions = field(default_factory=AnswerOptions)

    @staticmethod
    def of(item: "AnswerRequest | str") -> "AnswerRequest":
        """Coerce a bare question string into a request."""
        if isinstance(item, AnswerRequest):
            return item
        return AnswerRequest(question=item)

    def with_options(self, **overrides) -> "AnswerRequest":
        """A copy of this request with option *overrides* applied."""
        return replace(self, options=self.options.merged(**overrides))


@dataclass(frozen=True)
class ResolvedOptions:
    """:class:`AnswerOptions` with every ``None`` filled from an engine.

    This is what the pipeline stages actually read — they never touch
    engine attributes directly, so a request override and a constructor
    default are indistinguishable downstream.
    """

    max_answers: int
    correct_spelling: bool
    relax_partial: bool
    ordered_evaluation: bool
    partial_pool_per_query: int | None
    explain: bool
    use_cache: bool = True
    top_k: int | None = None
    deadline: float | None = None

    def fingerprint(self) -> tuple:
        """The answer-cache key component: every resolved knob that can
        change the result.  ``use_cache`` and ``deadline`` are excluded
        — they control cache participation and scheduling, not the
        answer."""
        return (
            self.max_answers,
            self.correct_spelling,
            self.relax_partial,
            self.ordered_evaluation,
            self.partial_pool_per_query,
            self.explain,
            self.top_k,
        )

    @classmethod
    def resolve(cls, options: AnswerOptions, engine: "CQAds") -> "ResolvedOptions":
        if options.max_answers is not None and options.max_answers < 1:
            raise ValueError(
                f"max_answers must be positive, got {options.max_answers}"
            )
        if (
            options.partial_pool_per_query is not None
            and options.partial_pool_per_query < 1
        ):
            raise ValueError(
                "partial_pool_per_query must be positive, got "
                f"{options.partial_pool_per_query}"
            )
        if options.top_k is not None and options.top_k < 1:
            raise ValueError(f"top_k must be positive, got {options.top_k}")
        if options.deadline is not None and options.deadline <= 0:
            raise ValueError(
                f"deadline must be positive, got {options.deadline}"
            )
        max_answers = (
            options.max_answers
            if options.max_answers is not None
            else engine.max_answers
        )
        if options.partial_pool_per_query is not None:
            pool = options.partial_pool_per_query
        elif options.max_answers is not None and not engine.partial_pool_explicit:
            # Mirror the engine's own default formula when the cap is
            # overridden per-request: each N-1 query contributes up to
            # three times the answer cap.  An engine pool the caller
            # set explicitly is kept as-is.
            pool = 3 * max_answers
        else:
            pool = engine.partial_pool_per_query
        return cls(
            max_answers=max_answers,
            correct_spelling=(
                options.correct_spelling
                if options.correct_spelling is not None
                else engine.correct_spelling
            ),
            relax_partial=(
                options.relax_partial
                if options.relax_partial is not None
                else engine.relax_partial
            ),
            ordered_evaluation=(
                options.ordered_evaluation
                if options.ordered_evaluation is not None
                else engine.ordered_evaluation
            ),
            partial_pool_per_query=pool,
            explain=options.explain,
            use_cache=options.use_cache if options.use_cache is not None else True,
            top_k=(
                options.top_k
                if options.top_k is not None
                else engine.ranking_top_k
            ),
            deadline=options.deadline,
        )
