"""The CQAds service-layer API.

This package is the preferred public surface of the reproduction:

* :mod:`repro.api.requests` — frozen :class:`AnswerRequest` /
  :class:`AnswerOptions` value objects carrying per-request overrides;
* :mod:`repro.api.stages` — the five pipeline stages (classify → tag →
  interpret → execute → relax) behind the :class:`PipelineStage`
  protocol, composed by :class:`QueryPipeline` with per-stage timings
  and optional explain traces;
* :mod:`repro.api.service` — :class:`AnswerService` with single,
  batched and paginated answering;
* :mod:`repro.api.pagination` — :class:`AnswerPage` cursors over a
  result's full ranking;
* :mod:`repro.api.builder` — the fluent :class:`SystemBuilder` over
  :func:`repro.system.build_system`.

The legacy surface (``CQAds.answer``, ``build_system``) delegates to
this layer, so both produce bit-identical answers.
"""

from repro.perf.answer_cache import AnswerCache

from repro.api.builder import SystemBuilder
from repro.api.pagination import AnswerPage, page_result
from repro.api.requests import AnswerOptions, AnswerRequest, ResolvedOptions
from repro.api.service import AnswerService
from repro.api.stages import (
    ClassifyStage,
    ExecuteStage,
    InterpretStage,
    PipelineStage,
    QueryPipeline,
    RelaxStage,
    StageContext,
    StageTrace,
    TagStage,
    default_stages,
)

__all__ = [
    "AnswerOptions",
    "AnswerRequest",
    "ResolvedOptions",
    "AnswerCache",
    "AnswerService",
    "AnswerPage",
    "page_result",
    "SystemBuilder",
    "PipelineStage",
    "QueryPipeline",
    "StageContext",
    "StageTrace",
    "ClassifyStage",
    "TagStage",
    "InterpretStage",
    "ExecuteStage",
    "RelaxStage",
    "default_stages",
]
