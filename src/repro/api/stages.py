"""The five CQAds pipeline stages and their composer (Sections 3-4.4).

The seed hard-wired the whole answering flow inside one method; here
each step is a :class:`PipelineStage` and :class:`QueryPipeline`
composes them:

1. :class:`ClassifyStage` — Section 3 domain classification (Naive
   Bayes with JBBSM), a lookup when the request names the domain;
2. :class:`TagStage` — spelling correction, shorthand expansion,
   keyword tagging with context switching (Sections 4.1-4.2);
3. :class:`InterpretStage` — the implicit/explicit Boolean rules of
   Section 4.4 (a contradiction terminates the pipeline with
   "search retrieved no results");
4. :class:`ExecuteStage` — SQL generation plus execution with the
   Section 4.3 evaluation order (Type I → II → III boundaries →
   superlatives);
5. :class:`RelaxStage` — Section 4.3.1 N-1 partial matching and Eq. 5
   Rank_Sim ordering when fewer than ``max_answers`` exact matches
   exist.

The pipeline records wall-clock seconds per stage on
``QuestionResult.timings`` and, when the request sets
``options.explain``, a :class:`StageTrace` entry per stage (including
skipped ones) on ``QuestionResult.trace``.

Stages are deliberately stateless: all working state lives on the
:class:`StageContext`, so one pipeline instance can serve concurrent
requests (``AnswerService.answer_batch`` relies on this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.db.sql.executor import SQLExecutor
from repro.errors import ContradictionError
from repro.obs import observe_stage, span
from repro.qa.boolean_rules import build_interpretation
from repro.qa.conditions import Interpretation
from repro.qa.pipeline import Answer, CQAds, QuestionResult
from repro.qa.sql_generation import evaluate_interpretation, generate_sql
from repro.qa.tagger import TaggedQuestion

from repro.api.requests import AnswerRequest, ResolvedOptions

__all__ = [
    "StageContext",
    "StageTrace",
    "PipelineStage",
    "ClassifyStage",
    "TagStage",
    "InterpretStage",
    "ExecuteStage",
    "RelaxStage",
    "QueryPipeline",
    "default_stages",
]

#: "search retrieved no results" — the paper's termination message.
NO_RESULTS_MESSAGE = "search retrieved no results"


@dataclass
class StageContext:
    """Mutable working state threaded through the stages.

    Stages read what earlier stages wrote and leave their own outputs
    here; :meth:`QueryPipeline.run` turns the final state into a
    :class:`~repro.qa.pipeline.QuestionResult`.
    """

    engine: CQAds
    request: AnswerRequest
    options: ResolvedOptions
    domain: str | None = None
    tagged: TaggedQuestion | None = None
    interpretation: Interpretation | None = None
    sql: str = ""
    exact: list[Answer] = field(default_factory=list)
    partial: list[Answer] = field(default_factory=list)
    message: str | None = None
    finished: bool = False
    timings: dict[str, float] = field(default_factory=dict)

    def finish(self, message: str | None = None) -> None:
        """Terminate the pipeline early (remaining stages are skipped)."""
        self.finished = True
        if message is not None:
            self.message = message


@dataclass(frozen=True)
class StageTrace:
    """One explain-trace entry: what a stage did and how long it took."""

    stage: str
    seconds: float
    detail: str = ""
    skipped: bool = False

    def describe(self) -> str:
        status = "skipped" if self.skipped else f"{self.seconds * 1000:.2f}ms"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"{self.stage}: {status}{suffix}"


@runtime_checkable
class PipelineStage(Protocol):
    """One step of the answering pipeline.

    ``run`` mutates *ctx* and returns an optional human-readable detail
    string for the explain trace.  Raising propagates to the caller
    (e.g. :class:`~repro.errors.ClassificationError` for an unknown
    domain); calling ``ctx.finish(...)`` ends the pipeline gracefully.
    """

    name: str

    def run(self, ctx: StageContext) -> str | None:  # pragma: no cover
        ...


class ClassifyStage:
    """Section 3: route the question to its ads domain."""

    name = "classify"

    def run(self, ctx: StageContext) -> str | None:
        if ctx.request.domain is not None:
            ctx.domain = ctx.request.domain
        else:
            ctx.domain = ctx.engine.classify_question(ctx.request.question)
        # Validates registration even when the caller named the domain
        # (raises ClassificationError otherwise, like the legacy facade).
        ctx.engine.context(ctx.domain)
        source = "given" if ctx.request.domain is not None else "classified"
        return f"domain {ctx.domain!r} ({source})"


class TagStage:
    """Sections 4.1-4.2: correct, expand and tag the question."""

    name = "tag"

    def run(self, ctx: StageContext) -> str | None:
        assert ctx.domain is not None
        context = ctx.engine.context(ctx.domain)
        tagger = context.tagger_for(ctx.options.correct_spelling)
        ctx.tagged = tagger.tag(ctx.request.question)
        detail = f"{len(ctx.tagged.items)} items"
        if ctx.tagged.corrections:
            fixed = ", ".join(
                f"{c.original!r}->{c.corrected!r}" for c in ctx.tagged.corrections
            )
            detail += f", corrected {fixed}"
        return detail


class InterpretStage:
    """Section 4.4: build the Boolean interpretation.

    A contradiction (Rule 1c) terminates the pipeline with the paper's
    "search retrieved no results" message.
    """

    name = "interpret"

    def run(self, ctx: StageContext) -> str | None:
        assert ctx.domain is not None and ctx.tagged is not None
        context = ctx.engine.context(ctx.domain)
        try:
            ctx.interpretation = build_interpretation(ctx.tagged, context.domain)
        except ContradictionError as error:
            ctx.finish(str(error))
            return f"contradiction: {error}"
        return ctx.interpretation.describe()


class ExecuteStage:
    """Section 4.3: generate SQL and retrieve the exact matches.

    Exact matches are retrieved *uncapped* (the evaluation order makes
    the first ``max_answers`` identical to a capped run) so the full
    list can back pagination; the rendered SQL keeps the legacy
    ``LIMIT max_answers`` the paper's interface shows the user.
    """

    name = "execute"

    def run(self, ctx: StageContext) -> str | None:
        assert ctx.domain is not None and ctx.interpretation is not None
        context = ctx.engine.context(ctx.domain)
        ctx.sql = generate_sql(
            context.domain.schema.table_name,
            ctx.interpretation,
            limit=ctx.options.max_answers,
            ordered=ctx.options.ordered_evaluation,
        ).to_sql()
        # One executor for the stage so its access-path decisions
        # (scan vs. index vs. window per range leaf) can be surfaced
        # in the explain trace.
        executor = SQLExecutor(ctx.engine.database)
        with span("executor.evaluate", table=context.domain.schema.table_name) as node:
            records = evaluate_interpretation(
                ctx.engine.database,
                context.domain,
                ctx.interpretation,
                limit=None,
                ordered=ctx.options.ordered_evaluation,
                executor=executor,
            )
            if node is not None:
                node.set_attribute("plan", executor.plan_summary())
                node.set_attribute("rows", len(records))
                # One event per access-path leaf decision, bounded so a
                # pathological plan cannot bloat the trace.
                for decision in executor.plan_trace[:64]:
                    node.add_event(
                        "access",
                        column=decision.column,
                        shape=decision.shape,
                        path=decision.path,
                        rows=decision.rows,
                    )
        ctx.exact = [
            Answer(record=record, exact=True, score=float("inf"), similarity_kind="exact")
            for record in records
        ]
        return (
            f"{len(ctx.exact)} exact matches; "
            f"access paths: {executor.plan_summary()}"
        )


class RelaxStage:
    """Section 4.3.1: N-1 relaxation and Eq. 5 Rank_Sim ordering.

    Runs only when relaxation is enabled and the exact matches do not
    already fill the answer cap; produces the full scored candidate
    list (capping happens when the result is assembled).
    """

    name = "relax"

    def run(self, ctx: StageContext) -> str | None:
        assert ctx.domain is not None
        if not ctx.options.relax_partial:
            return "disabled"
        if ctx.interpretation is None or ctx.interpretation.tree is None:
            return "nothing to relax"
        if len(ctx.exact) >= ctx.options.max_answers:
            return "answer cap already filled by exact matches"
        exclude = {answer.record.record_id for answer in ctx.exact}
        ctx.partial = ctx.engine.partial_answers(
            ctx.domain,
            ctx.interpretation,
            exclude,
            pool_cap=ctx.options.partial_pool_per_query,
            ordered=ctx.options.ordered_evaluation,
            top_k=ctx.options.top_k,
        )
        detail = f"{len(ctx.partial)} ranked partial candidates"
        if ctx.options.top_k is not None:
            detail += f" (top_k={ctx.options.top_k})"
        return detail


def default_stages() -> list[PipelineStage]:
    """The paper's five stages, in order."""
    return [
        ClassifyStage(),
        TagStage(),
        InterpretStage(),
        ExecuteStage(),
        RelaxStage(),
    ]


class QueryPipeline:
    """Composes :class:`PipelineStage` instances into one answer flow.

    The default composition reproduces the seed's ``CQAds.answer``
    bit-for-bit; :meth:`replacing` and :meth:`inserting_after` derive
    customized pipelines without mutating the original (pipelines are
    shared across threads by ``answer_batch``).
    """

    def __init__(self, stages: Sequence[PipelineStage] | None = None) -> None:
        self.stages: list[PipelineStage] = (
            list(stages) if stages is not None else default_stages()
        )

    # -- composition ---------------------------------------------------
    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    def replacing(self, name: str, stage: PipelineStage) -> "QueryPipeline":
        """A new pipeline with the stage called *name* swapped out."""
        if not any(s.name == name for s in self.stages):
            raise KeyError(f"no stage named {name!r} in {self.stage_names()}")
        return QueryPipeline(
            [stage if s.name == name else s for s in self.stages]
        )

    def inserting_after(self, name: str, stage: PipelineStage) -> "QueryPipeline":
        """A new pipeline with *stage* inserted after the stage *name*."""
        stages: list[PipelineStage] = []
        found = False
        for existing in self.stages:
            stages.append(existing)
            if existing.name == name:
                stages.append(stage)
                found = True
        if not found:
            raise KeyError(f"no stage named {name!r} in {self.stage_names()}")
        return QueryPipeline(stages)

    # -- execution -----------------------------------------------------
    def run(self, engine: CQAds, request: AnswerRequest) -> QuestionResult:
        """Run *request* through the stages and assemble the result."""
        options = ResolvedOptions.resolve(request.options, engine)
        ctx = StageContext(engine=engine, request=request, options=options)
        trace: list[StageTrace] = []
        for stage in self.stages:
            if ctx.finished:
                if options.explain:
                    trace.append(
                        StageTrace(stage.name, 0.0, "pipeline terminated", True)
                    )
                continue
            started = time.perf_counter()
            with span(f"stage.{stage.name}") as node:
                detail = stage.run(ctx)
                if node is not None and detail:
                    node.set_attribute("detail", detail)
            elapsed = time.perf_counter() - started
            ctx.timings[stage.name] = ctx.timings.get(stage.name, 0.0) + elapsed
            observe_stage(stage.name, elapsed)
            if options.explain:
                trace.append(StageTrace(stage.name, elapsed, detail or ""))
        return self._assemble(ctx, trace if options.explain else None)

    @staticmethod
    def _assemble(
        ctx: StageContext, trace: list[StageTrace] | None
    ) -> QuestionResult:
        pool: list[Answer] = []
        answers: list[Answer] = []
        if not ctx.finished:
            pool = list(ctx.exact) + list(ctx.partial)
            answers = pool[: ctx.options.max_answers]
        message = ctx.message
        if message is None and not answers:
            message = NO_RESULTS_MESSAGE
        return QuestionResult(
            question=ctx.request.question,
            domain=ctx.domain or "",
            interpretation=ctx.interpretation,
            sql=ctx.sql,
            answers=answers,
            corrections=list(ctx.tagged.corrections) if ctx.tagged else [],
            message=message,
            timings=dict(ctx.timings),
            ranked_pool=pool,
            trace=trace,
        )
