"""Core data structures: the trie used throughout CQAds.

Section 4.1.3 of the paper motivates the trie: string lookup in O(m)
for a word of length m, compact on disk, and better than hash tables
for the small static keyword inventories of an ads domain.  One trie is
built per ads domain (Section 4.1.4) and doubles as the spelling
corrector's search structure (Section 4.2.1).
"""

from repro.structures.trie import Trie, TrieNode

__all__ = ["Trie", "TrieNode"]
