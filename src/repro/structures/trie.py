"""A character trie with payloads, prefix walks and fuzzy completion.

This is the data structure of Section 4.1.3/4.1.4 of the paper.  Each
node stores a single character (its *value*); the concatenation of the
characters from the root is the node's *label*.  A node whose label is
a complete entry carries a payload — in CQAds the payload is the trie
identifier from Table 1 plus the attribute the keyword belongs to.

Beyond plain insert/lookup the trie supports the operations the
question pipeline needs:

* **prefix walking** (:meth:`Trie.walk`): feed characters one at a time
  and observe when entries complete — this is how multi-word keywords
  ("4 wheel drive") and forgotten spaces ("hondaaccord") are detected;
* **fuzzy completion** (:meth:`Trie.closest_entries`): from the node
  where a misspelled word diverged, enumerate the reachable entries so
  the spelling corrector can score them with ``similar_text``
  (Section 4.2.1);
* **iteration** over all stored entries, used when building the
  similarity matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TrieNode", "Trie"]


@dataclass
class TrieNode:
    """One node of a :class:`Trie`.

    Attributes
    ----------
    value:
        The character this node represents ('' for the root).
    label:
        Concatenation of values on the path from the root to here.
    children:
        Mapping character -> child node.
    payload:
        The entry's payload when ``terminal`` is true, else ``None``.
    terminal:
        True when ``label`` is a complete stored entry.
    """

    value: str = ""
    label: str = ""
    children: dict[str, "TrieNode"] = field(default_factory=dict)
    payload: Any = None
    terminal: bool = False

    def child(self, ch: str) -> "TrieNode | None":
        """Return the child for character *ch*, or ``None``."""
        return self.children.get(ch)

    def is_leaf(self) -> bool:
        """True when no entry extends this node's label."""
        return not self.children


class Trie:
    """Character trie mapping string entries to payloads.

    Entries are stored verbatim (callers normalize case before
    inserting).  ``len(trie)`` is the number of entries; membership,
    ``get``, and ``items`` work as for a mapping.
    """

    def __init__(self) -> None:
        self.root = TrieNode()
        self._size = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, entry: str, payload: Any = None) -> None:
        """Insert *entry* with *payload*, overwriting any existing payload."""
        if not entry:
            raise ValueError("cannot insert an empty entry into a Trie")
        node = self.root
        for ch in entry:
            nxt = node.children.get(ch)
            if nxt is None:
                nxt = TrieNode(value=ch, label=node.label + ch)
                node.children[ch] = nxt
            node = nxt
        if not node.terminal:
            self._size += 1
        node.terminal = True
        node.payload = payload

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def find_node(self, prefix: str) -> TrieNode | None:
        """Return the node whose label equals *prefix*, or ``None``."""
        node = self.root
        for ch in prefix:
            node = node.children.get(ch)  # type: ignore[assignment]
            if node is None:
                return None
        return node

    def __contains__(self, entry: str) -> bool:
        node = self.find_node(entry)
        return node is not None and node.terminal

    def get(self, entry: str, default: Any = None) -> Any:
        """Return the payload stored for *entry*, or *default*."""
        node = self.find_node(entry)
        if node is not None and node.terminal:
            return node.payload
        return default

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # walking and enumeration
    # ------------------------------------------------------------------
    def walk(self, text: str, start: int = 0) -> "TrieWalk":
        """Return a :class:`TrieWalk` cursor over *text* from *start*.

        The walk consumes characters of *text* one at a time, tracking
        the deepest node reached and every terminal node passed; the
        tagger uses it for longest-match keyword recognition.
        """
        return TrieWalk(self, text, start)

    def iter_entries(self, node: TrieNode | None = None) -> Iterator[tuple[str, Any]]:
        """Yield ``(entry, payload)`` for all entries below *node*.

        With the default ``node=None`` the whole trie is enumerated, in
        depth-first (therefore lexicographic-by-insertion) order.
        """
        stack = [node or self.root]
        while stack:
            current = stack.pop()
            if current.terminal:
                yield current.label, current.payload
            # reversed so that iteration order is stable and roughly
            # lexicographic for sorted child insertion
            stack.extend(reversed(list(current.children.values())))

    def entries(self) -> list[str]:
        """Return all stored entries as a list."""
        return [entry for entry, _ in self.iter_entries()]

    def closest_entries(
        self, prefix_node: TrieNode, limit: int = 50
    ) -> list[tuple[str, Any]]:
        """Entries reachable from *prefix_node*, nearest-first.

        Used by the spelling corrector: when parsing a word fails at
        some node, the plausible corrections are the entries that share
        the consumed prefix.  Entries are returned shallowest-first
        (breadth-first), truncated to *limit*.
        """
        results: list[tuple[str, Any]] = []
        queue: list[TrieNode] = [prefix_node]
        while queue and len(results) < limit:
            current = queue.pop(0)
            if current.terminal:
                results.append((current.label, current.payload))
            queue.extend(current.children.values())
        return results

    def longest_prefix_entry(self, text: str) -> tuple[str, Any] | None:
        """Return the longest stored entry that is a prefix of *text*.

        This is the primitive behind missing-space recovery: for the
        input ``hondaaccord`` it returns ``("honda", payload)``.
        """
        node = self.root
        best: tuple[str, Any] | None = None
        for ch in text:
            node = node.children.get(ch)  # type: ignore[assignment]
            if node is None:
                break
            if node.terminal:
                best = (node.label, node.payload)
        return best


class TrieWalk:
    """A cursor that consumes characters of a text through a trie.

    Tracks the deepest node reached, the offset of the last terminal
    node seen (for longest-match), and whether the walk is still inside
    the trie.
    """

    def __init__(self, trie: Trie, text: str, start: int) -> None:
        self.trie = trie
        self.text = text
        self.position = start
        self.node: TrieNode = trie.root
        self.last_match: tuple[int, TrieNode] | None = None
        self.alive = True

    def step(self) -> bool:
        """Consume one character; return ``False`` when the walk dies.

        A walk dies when the next character has no child edge, or when
        the text is exhausted.
        """
        if not self.alive or self.position >= len(self.text):
            self.alive = False
            return False
        ch = self.text[self.position]
        nxt = self.node.child(ch)
        if nxt is None:
            self.alive = False
            return False
        self.node = nxt
        self.position += 1
        if nxt.terminal:
            self.last_match = (self.position, nxt)
        return True

    def run(self) -> tuple[int, TrieNode] | None:
        """Consume characters until the walk dies; return the last match.

        The return value is ``(end_offset, node)`` for the longest
        terminal entry consumed, or ``None`` when no entry matched.
        """
        while self.step():
            pass
        return self.last_match
