"""Exception hierarchy for the CQAds reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the most specific
subclass that applies; messages always carry enough context (attribute
names, offending tokens, SQL fragments) to diagnose a failure without a
debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A table schema is malformed or violated.

    Raised when a schema declares duplicate columns, when a record is
    inserted with values that do not fit the declared attribute types,
    or when a query references a column that does not exist.
    """


class UnknownColumnError(SchemaError):
    """A query or record referenced a column absent from the schema."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"table {table!r} has no column {column!r}")
        self.table = table
        self.column = column


class RecordNotFoundError(SchemaError):
    """A mutation addressed a ``record_id`` the table does not hold.

    Subclasses :class:`SchemaError` for backward compatibility (the
    misleading error ``Table.update``/``Table.delete`` used to raise),
    but the condition is about the *record*, not the schema — callers
    that distinguish "bad data" from "gone row" can now catch this.
    """

    def __init__(self, table: str, record_id: int, action: str) -> None:
        super().__init__(
            f"table {table!r} has no record #{record_id} to {action}"
        )
        self.table = table
        self.record_id = record_id
        self.action = action


class UnknownTableError(ReproError):
    """A query referenced a table that the database does not contain."""

    def __init__(self, table: str) -> None:
        super().__init__(f"database has no table {table!r}")
        self.table = table


class SQLError(ReproError):
    """Base class for problems in the SQL subsystem."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed.

    Attributes
    ----------
    position:
        Character offset into the SQL text where the problem was found,
        or ``-1`` when the offset is unknown (e.g. unexpected end of
        input).
    """

    def __init__(self, message: str, position: int = -1) -> None:
        suffix = f" (at offset {position})" if position >= 0 else ""
        super().__init__(message + suffix)
        self.position = position


class SQLExecutionError(SQLError):
    """A syntactically valid statement failed during evaluation."""


class QuestionError(ReproError):
    """Base class for problems while interpreting a user question."""


class EmptyQuestionError(QuestionError):
    """The question contained no essential keywords after cleaning."""


class ContradictionError(QuestionError):
    """The question's constraints can never be satisfied.

    The paper's Rule 1c terminates evaluation with ``search retrieved
    no results`` when two numeric bounds do not overlap (e.g. ``less
    than $2000 and more than $7000``); this exception carries that
    outcome to the caller.
    """


class ClassificationError(ReproError):
    """The domain classifier could not be used (e.g. not trained)."""


class RankingError(ReproError):
    """A ranking component was asked for a similarity it cannot produce."""


class DataGenerationError(ReproError):
    """The synthetic-data substrate was configured inconsistently."""


class StorageError(ReproError):
    """A durable-storage operation failed (`repro.store`).

    Raised when a WAL append exhausts its retry budget, a snapshot
    cannot be written or verified, a recovery directory holds no
    loadable state, or a table's configuration cannot be persisted
    (e.g. a custom partitioner the codec cannot name).  Torn or
    corrupt WAL *tails* do **not** raise — recovery truncates them by
    contract — so hitting this during recovery means the directory is
    damaged beyond the crash-consistency model.
    """


class ServiceError(ReproError):
    """Base class for service-tier failures (`repro.api` / `repro.serve`).

    Everything a *caller of the front door* can hit that is about the
    service's state or load — not about the question itself — derives
    from here, so clients can write one ``except ServiceError`` around
    a request and treat the subclasses as retry hints.
    """


class ServiceClosedError(ServiceError, RuntimeError):
    """A request arrived after the service was closed.

    Also subclasses :class:`RuntimeError` so code written against the
    old untyped ``RuntimeError("AnswerService is closed")`` keeps
    catching it.
    """

    def __init__(self, service: str = "service") -> None:
        super().__init__(f"{service} is closed")
        self.service = service


class ServiceOverloadError(ServiceError):
    """Base class for load-shedding rejections (retry later).

    Raised *before* any engine work happens: a shed request consumed a
    rate-limit token check and a queue-depth check, nothing more, so
    shedding is how the tier stays cheap under overload.
    """


class RateLimitedError(ServiceOverloadError):
    """A tenant exhausted its token bucket (including burst capacity).

    Attributes
    ----------
    tenant:
        The rejected tenant key, or ``None`` for the shared default
        bucket.
    retry_after:
        Seconds until the bucket will hold enough tokens again
        (``inf`` for a zero-rate bucket) — the ``Retry-After`` hint.
    """

    def __init__(self, tenant: object = None, retry_after: float = 0.0) -> None:
        who = "default bucket" if tenant is None else f"tenant {tenant!r}"
        super().__init__(
            f"rate limited ({who}); retry after {retry_after:.3f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class QueueFullError(ServiceOverloadError):
    """The bounded admission queue was full — the request was shed.

    Attributes
    ----------
    capacity:
        The queue bound the service was configured with.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(
            f"admission queue full ({capacity} waiting); request shed"
        )
        self.capacity = capacity


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before a result was produced.

    Attributes
    ----------
    deadline:
        The per-request budget in seconds.
    phase:
        Where the budget ran out: ``"queued"`` (still waiting for a
        worker slot) or ``"awaiting"`` (the flight was running but did
        not finish in time — the engine call itself is not cancelled,
        so a coalesced waiter with a longer budget may still get the
        result).
    """

    def __init__(self, deadline: float, phase: str = "awaiting") -> None:
        super().__init__(
            f"deadline of {deadline:.3f}s exceeded while {phase}"
        )
        self.deadline = deadline
        self.phase = phase
